//! Wide-area federation over real sockets, plus routing-invariant
//! property tests.
//!
//! The integration half peers real `ypd` daemons (the in-process
//! [`PipelineBuilder::serve_federated`] form) on loopback and checks the
//! paper's WAN behaviour end to end: a query the entry domain cannot
//! satisfy settles with an allocation delegated from a peer, a query
//! satisfiable nowhere fails with the proper error instead of hanging,
//! and a peer killed mid-run strands nothing in the survivors.
//!
//! The property half drives whole in-memory topologies through the same
//! [`run_chain`] the TCP implementation uses, checking the
//! [`RoutingState`] invariants the in-process pipeline already proves for
//! itself: the TTL strictly decreases across hops, no domain is ever
//! revisited, and every chain terminates within TTL hops.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;

use actyp_grid::{FleetSpec, SharedDatabase, SyntheticFleet};
use actyp_pipeline::api::QueryOutcome;
use actyp_pipeline::{
    run_chain, AllocationError, BackendKind, FederatedBackend, FederationConfig, PeerDelegator,
    PeerUnavailable, PipelineBuilder, RemoteBackend, ResourceManager, RoutingState, ServerHandle,
    StageAddress,
};

// ---------------------------------------------------------------------------
// Integration: peered daemons on loopback
// ---------------------------------------------------------------------------

fn homogeneous_db(arch: &str, machines: usize, seed: u64) -> SharedDatabase {
    SyntheticFleet::new(FleetSpec::homogeneous(machines, arch, 512), seed)
        .generate()
        .into_shared()
}

/// Starts one federated daemon for `domain` over a homogeneous fleet.
fn spawn_domain(
    domain: &str,
    db: SharedDatabase,
    peers: Vec<StageAddress>,
    ttl: u32,
) -> (ServerHandle, Arc<FederatedBackend>) {
    PipelineBuilder::new()
        .database(db)
        .ttl(ttl)
        .serve_federated(
            &StageAddress::new("127.0.0.1", 0),
            BackendKind::Embedded,
            FederationConfig {
                domain: domain.to_string(),
                ttl,
                peers,
                gossip_interval: std::time::Duration::ZERO,
                ..FederationConfig::default()
            },
        )
        .expect("federated daemon starts")
}

fn active_jobs(db: &SharedDatabase) -> u32 {
    db.read().iter().map(|m| m.dynamic.active_jobs).sum()
}

/// Three peered daemons in a chain (A → B → C): a query only the far
/// domain can satisfy is delegated across two hops, released back across
/// the same hops, and every daemon's counters record its role.
#[test]
fn query_unsatisfiable_at_entry_is_delegated_across_the_federation() {
    let db_a = homogeneous_db("sun", 30, 1);
    let db_b = homogeneous_db("sun", 30, 2);
    let db_c = homogeneous_db("hp", 30, 3);
    let (srv_c, _fed_c) = spawn_domain("upc", db_c.clone(), vec![], 8);
    let (srv_b, fed_b) = spawn_domain("cern", db_b.clone(), vec![srv_c.local_addr()], 8);
    let (srv_a, fed_a) = spawn_domain("purdue", db_a.clone(), vec![srv_b.local_addr()], 8);

    let client = RemoteBackend::connect(&srv_a.local_addr()).unwrap();
    let allocations = client.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
    assert_eq!(allocations.len(), 1);
    assert!(
        allocations[0].machine_name.contains("hp"),
        "the allocation comes from the hp-only far domain"
    );
    assert_eq!(active_jobs(&db_c), 1, "the claim lives in domain upc");
    assert_eq!(active_jobs(&db_a) + active_jobs(&db_b), 0);

    // The entry daemon's stats show the delegation; the intermediates and
    // the server of the query show theirs.
    let stats = client.stats();
    assert!(stats.delegations_out >= 1, "{stats:?}");
    assert!(fed_b.stats().delegations_in >= 1, "B continued the chain");
    assert!(fed_b.stats().delegations_out >= 1, "B forwarded to C");

    // The chain obeyed the routing invariants, observable end to end.
    let chain = fed_a.last_chain().expect("a chain ran");
    assert_eq!(
        chain.visited,
        vec!["purdue".to_string(), "cern".to_string(), "upc".to_string()],
        "every hop visited exactly once, in order"
    );
    assert_eq!(chain.ttl, 8 - 3, "three hops spent three TTL units");

    // Release routes back hop by hop to the domain that made the
    // allocation.
    client.release(&allocations[0]).unwrap();
    assert_eq!(active_jobs(&db_c), 0, "released in domain upc");

    client.halt_daemon().unwrap();
    client.shutdown().unwrap();
    srv_a.join().unwrap();
    srv_b.halt();
    srv_b.join().unwrap();
    srv_c.halt();
    srv_c.join().unwrap();
}

/// A query satisfiable nowhere fails with `TtlExpired` when the TTL runs
/// out mid-federation, and with the delegable local error when the
/// federation is exhausted first — never a hang.
#[test]
fn query_satisfiable_nowhere_fails_with_ttl_exhaustion_not_a_hang() {
    let db_a = homogeneous_db("sun", 20, 4);
    let db_b = homogeneous_db("sun", 20, 5);
    let db_c = homogeneous_db("sun", 20, 6);
    // TTL 2 over a 3-domain chain: the TTL dies before the domains do.
    let (srv_c, _) = spawn_domain("upc", db_c, vec![], 2);
    let (srv_b, _) = spawn_domain("cern", db_b, vec![srv_c.local_addr()], 2);
    let (srv_a, _) = spawn_domain("purdue", db_a, vec![srv_b.local_addr()], 2);

    let client = RemoteBackend::connect(&srv_a.local_addr()).unwrap();
    let err = client
        .submit_text_wait("punch.rsrc.arch = cray\n")
        .unwrap_err();
    assert_eq!(err, AllocationError::TtlExpired);

    client.halt_daemon().unwrap();
    client.shutdown().unwrap();
    srv_a.join().unwrap();
    srv_b.halt();
    srv_b.join().unwrap();
    srv_c.halt();
    srv_c.join().unwrap();
}

/// With TTL to spare, exhausting every domain returns the underlying
/// allocation error (the paper fails the request once every manager has
/// seen it).
#[test]
fn exhausting_every_domain_returns_the_allocation_error() {
    let db_a = homogeneous_db("sun", 20, 7);
    let db_b = homogeneous_db("sun", 20, 8);
    let (srv_b, _) = spawn_domain("cern", db_b, vec![], 8);
    let (srv_a, _) = spawn_domain("purdue", db_a, vec![srv_b.local_addr()], 8);

    let client = RemoteBackend::connect(&srv_a.local_addr()).unwrap();
    let err = client
        .submit_text_wait("punch.rsrc.arch = cray\n")
        .unwrap_err();
    assert_eq!(err, AllocationError::NoSuchResources);

    client.halt_daemon().unwrap();
    client.shutdown().unwrap();
    srv_a.join().unwrap();
    srv_b.halt();
    srv_b.join().unwrap();
}

/// Killing a peer mid-run strands no tickets in the survivors: queries
/// that needed the dead domain settle with errors (not hangs), the dead
/// peer's directory records are pruned, and the survivor keeps serving
/// its own resources.
#[test]
fn killing_a_peer_mid_run_strands_no_tickets() {
    let db_a = homogeneous_db("sun", 30, 9);
    let db_b = homogeneous_db("hp", 30, 10);
    let (srv_b, _fed_b) = spawn_domain("upc", db_b.clone(), vec![], 8);
    let (srv_a, fed_a) = spawn_domain("purdue", db_a.clone(), vec![srv_b.local_addr()], 8);

    let client = RemoteBackend::connect(&srv_a.local_addr()).unwrap();

    // Warm run: the link to B is up, an hp query delegates and succeeds.
    let warm = client.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
    client.release(&warm[0]).unwrap();
    assert!(
        fed_a
            .peer_directory()
            .pool_managers()
            .contains(&"upc".to_string()),
        "the peer is in the entry daemon's peer directory"
    );

    // Kill B, with tickets already in flight on A that need it.
    let tickets: Vec<_> = (0..3)
        .map(|_| client.submit_text("punch.rsrc.arch = hp\n").unwrap())
        .collect();
    srv_b.halt();
    srv_b.join().unwrap();

    // Every in-flight ticket settles — delegation may have won the race
    // with the halt (an allocation) or lost it (an error); either way
    // nothing hangs and nothing is stranded.
    for ticket in tickets {
        if let Ok(allocations) = client.wait(ticket) {
            for allocation in &allocations {
                client.release(&allocation.clone()).unwrap();
            }
        }
    }
    // A fresh query needing the dead peer settles with the local error.
    let err = client
        .submit_text_wait("punch.rsrc.arch = hp\n")
        .unwrap_err();
    assert_eq!(err, AllocationError::NoSuchResources);
    // The dead peer's records were pruned from the peer directory.
    assert!(
        !fed_a
            .peer_directory()
            .pool_managers()
            .contains(&"upc".to_string()),
        "the dead peer was unregistered"
    );

    // The survivor still serves its own domain, and no claim is stranded
    // anywhere.
    let own = client.submit_text_wait("punch.rsrc.arch = sun\n").unwrap();
    client.release(&own[0]).unwrap();
    client.halt_daemon().unwrap();
    client.shutdown().unwrap();
    srv_a.join().unwrap();
    assert_eq!(active_jobs(&db_a), 0);
    assert_eq!(active_jobs(&db_b), 0);
}

/// A client that vanishes holding a *delegated* allocation strands
/// nothing: the entry daemon's session lease hands it back, and the
/// release is routed over the federation to the domain that made it.
#[test]
fn abandoned_delegated_allocations_return_across_the_federation() {
    let db_a = homogeneous_db("sun", 30, 11);
    let db_b = homogeneous_db("hp", 30, 12);
    let (srv_b, _) = spawn_domain("upc", db_b.clone(), vec![], 8);
    let (srv_a, _) = spawn_domain("purdue", db_a.clone(), vec![srv_b.local_addr()], 8);

    {
        let client = RemoteBackend::connect(&srv_a.local_addr()).unwrap();
        let allocations = client.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
        assert_eq!(allocations.len(), 1);
        assert_eq!(active_jobs(&db_b), 1);
        // Dropped without release: the client vanishes.
    }
    srv_a.halt();
    srv_a.join().unwrap();
    assert_eq!(
        active_jobs(&db_b),
        0,
        "the abandoned remote allocation was released in its home domain"
    );
    srv_b.halt();
    srv_b.join().unwrap();
}

/// Peers exchange pool advertisements when a link comes up: after a
/// delegation, the entry daemon's peer directory holds the peer's domain
/// as a pool manager.
#[test]
fn peers_learn_each_others_pools_through_sync() {
    let db_a = homogeneous_db("sun", 30, 13);
    let db_b = homogeneous_db("hp", 30, 14);
    let (srv_b, fed_b) = spawn_domain("upc", db_b, vec![], 8);
    let (srv_a, fed_a) = spawn_domain("purdue", db_a, vec![srv_b.local_addr()], 8);

    let client = RemoteBackend::connect(&srv_a.local_addr()).unwrap();
    // Seed a pool in B's own directory first (so its advertisement is
    // non-empty by the time A connects), then delegate.
    let client_b = RemoteBackend::connect(&srv_b.local_addr()).unwrap();
    let warm = client_b.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
    client_b.release(&warm[0]).unwrap();
    assert!(!fed_b.local_pools().is_empty(), "B hosts a pool now");

    let allocations = client.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
    client.release(&allocations[0]).unwrap();

    let dir = fed_a.peer_directory();
    assert!(dir.pool_managers().contains(&"upc".to_string()));
    assert!(
        dir.instances("arch,==/hp")
            .iter()
            .any(|r| r.manager == "upc"),
        "B's advertised hp pool is recorded against its domain"
    );
    // And the inbound side recorded A's advertisement too.
    assert!(fed_b
        .peer_directory()
        .pool_managers()
        .contains(&"purdue".to_string()));

    client.halt_daemon().unwrap();
    client.shutdown().unwrap();
    client_b.halt_daemon().unwrap();
    client_b.shutdown().unwrap();
    srv_a.join().unwrap();
    srv_b.join().unwrap();
}

/// The peer-link multiplexing regression test: two delegation chains to
/// the *same* peer must proceed in parallel on the one pooled connection,
/// correlated by request id.
///
/// The fake peer enforces it structurally: it reads BOTH `Delegate`
/// frames before answering either, then replies in reverse order with
/// distinct outcomes keyed off the query text.  The old one-request-at-a-
/// time link (which held the connection mutex across the whole WAN round
/// trip) can never send the second frame before the first reply, so under
/// it this test times out instead of passing; out-of-order replies also
/// prove the responses really route by correlation id, not arrival order.
#[test]
fn parallel_delegations_multiplex_on_one_peer_link() {
    use actyp_proto::{read_client_frame, write_frame, ClientFrame, ServerFrame, PROTOCOL_VERSION};
    use std::net::TcpListener;
    use std::time::Duration;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = listener.local_addr().unwrap();
    let fake_peer = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        match read_client_frame(&mut conn).unwrap() {
            Some(ClientFrame::Hello { .. }) => write_frame(
                &mut conn,
                &ServerFrame::HelloAck {
                    version: PROTOCOL_VERSION,
                },
            )
            .unwrap(),
            other => panic!("expected Hello, got {other:?}"),
        }
        match read_client_frame(&mut conn).unwrap() {
            Some(ClientFrame::SyncPools { corr, .. }) => write_frame(
                &mut conn,
                &ServerFrame::PoolsSynced {
                    corr,
                    domain: "upc".to_string(),
                    pools: Vec::new(),
                    deltas: Vec::new(),
                },
            )
            .unwrap(),
            other => panic!("expected SyncPools, got {other:?}"),
        }
        // The regression proper: the second Delegate must arrive while
        // the first is still unanswered.
        let mut delegates = Vec::new();
        for nth in 0..2 {
            match read_client_frame(&mut conn).unwrap() {
                Some(ClientFrame::Delegate {
                    corr,
                    query,
                    ttl,
                    visited,
                }) => delegates.push((corr, query, ttl, visited)),
                other => panic!(
                    "expected pipelined Delegate #{nth} before any reply \
                     (a serialized link never sends it), got {other:?}"
                ),
            }
        }
        for (corr, query, ttl, mut visited) in delegates.into_iter().rev() {
            let error = if query.contains("hp") {
                AllocationError::NoneAvailable
            } else {
                AllocationError::ShadowAccountsExhausted
            };
            visited.push("upc".to_string());
            write_frame(
                &mut conn,
                &ServerFrame::Delegated {
                    corr,
                    outcome: Err(error),
                    ttl: ttl.saturating_sub(1),
                    visited,
                    deltas: Vec::new(),
                },
            )
            .unwrap();
        }
        // Hold the connection until the entry daemon shuts down.
        let _ = read_client_frame(&mut conn);
    });

    let entry = PipelineBuilder::new()
        .database(homogeneous_db("sun", 20, 40))
        .build_federated(
            BackendKind::Embedded,
            FederationConfig {
                domain: "purdue".to_string(),
                ttl: 8,
                peers: vec![StageAddress::new("127.0.0.1", fake_addr.port())],
                gossip_interval: std::time::Duration::ZERO,
                ..FederationConfig::default()
            },
        )
        .unwrap();

    let hp_chain = {
        let entry = entry.clone();
        std::thread::spawn(move || entry.submit_text_wait("punch.rsrc.arch = hp\n"))
    };
    let sgi_chain = {
        let entry = entry.clone();
        std::thread::spawn(move || entry.submit_text_wait("punch.rsrc.arch = sgi\n"))
    };
    // Each chain got ITS peer outcome, not the other's.
    assert_eq!(
        hp_chain.join().unwrap().unwrap_err(),
        AllocationError::NoneAvailable
    );
    assert_eq!(
        sgi_chain.join().unwrap().unwrap_err(),
        AllocationError::ShadowAccountsExhausted
    );
    assert_eq!(entry.stats().delegations_out, 2);

    entry.shutdown().unwrap();
    fake_peer.join().unwrap();
}

/// Satellite regression (ROADMAP "teardown delegation churn"): settling
/// the abandoned tickets of a vanished client must NOT trigger outbound
/// delegations — there is nobody left to use what a peer would allocate.
#[test]
fn abandoned_tickets_settle_locally_without_delegating() {
    let db_a = homogeneous_db("sun", 20, 50);
    let db_b = homogeneous_db("hp", 20, 51);
    let (srv_b, _fed_b) = spawn_domain("upc", db_b.clone(), vec![], 8);
    let (srv_a, fed_a) = spawn_domain("purdue", db_a.clone(), vec![srv_b.local_addr()], 8);

    // Warm the link: a delegation is available and cheap, so only the
    // teardown hint can explain its absence below.
    let client = RemoteBackend::connect(&srv_a.local_addr()).unwrap();
    let warm = client.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
    client.release(&warm[0]).unwrap();
    let delegations_before = fed_a.stats().delegations_out;
    assert!(delegations_before >= 1, "the link is warm");

    // A client submits a query only the peer could satisfy, then
    // vanishes without redeeming the ticket.
    {
        let abandoner = RemoteBackend::connect(&srv_a.local_addr()).unwrap();
        let _ticket = abandoner.submit_text("punch.rsrc.arch = hp\n").unwrap();
        // Dropped with the ticket in flight.
    }
    client.halt_daemon().unwrap();
    client.shutdown().unwrap();
    srv_a.join().unwrap();

    assert_eq!(
        fed_a.stats().delegations_out,
        delegations_before,
        "the abandoned ticket settled locally; no delegation churn"
    );
    assert_eq!(active_jobs(&db_a), 0);
    assert_eq!(active_jobs(&db_b), 0, "no peer allocation was ever made");
    srv_b.halt();
    srv_b.join().unwrap();
}

/// Satellite regression (first slice of ROADMAP "gossip cadence"): a dead
/// peer link redialed after the connection drops re-syncs pool
/// advertisements, so a peer that came back with *different* pools is not
/// routed to from a stale directory.
#[test]
fn redialed_peer_link_resyncs_pool_advertisements() {
    use actyp_proto::{read_client_frame, write_frame, ClientFrame, ServerFrame, PROTOCOL_VERSION};
    use std::net::TcpListener;
    use std::time::Duration;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = listener.local_addr().unwrap();
    let fake_peer = std::thread::spawn(move || {
        let handshake = |conn: &mut std::net::TcpStream, pools: Vec<String>| {
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            match read_client_frame(conn).unwrap() {
                Some(ClientFrame::Hello { .. }) => write_frame(
                    conn,
                    &ServerFrame::HelloAck {
                        version: PROTOCOL_VERSION,
                    },
                )
                .unwrap(),
                other => panic!("expected Hello, got {other:?}"),
            }
            match read_client_frame(conn).unwrap() {
                Some(ClientFrame::SyncPools { corr, .. }) => write_frame(
                    conn,
                    &ServerFrame::PoolsSynced {
                        corr,
                        domain: "upc".to_string(),
                        pools,
                        deltas: Vec::new(),
                    },
                )
                .unwrap(),
                other => panic!("expected SyncPools, got {other:?}"),
            }
        };
        // First life: advertise an hp pool, then die straight away — the
        // stale record must not survive the redial.
        {
            let (mut conn, _) = listener.accept().unwrap();
            handshake(&mut conn, vec!["arch,==/hp".to_string()]);
            // Dropped: the link is now dead.
        }
        // Second life: same domain, DIFFERENT pools; serve delegations
        // until the entry disconnects.
        let (mut conn, _) = listener.accept().unwrap();
        handshake(&mut conn, vec!["arch,==/sgi".to_string()]);
        while let Ok(Some(frame)) = read_client_frame(&mut conn) {
            if let ClientFrame::Delegate {
                corr, ttl, visited, ..
            } = frame
            {
                let mut visited = visited;
                visited.push("upc".to_string());
                write_frame(
                    &mut conn,
                    &ServerFrame::Delegated {
                        corr,
                        outcome: Err(AllocationError::NoneAvailable),
                        ttl: ttl.saturating_sub(1),
                        visited,
                        deltas: Vec::new(),
                    },
                )
                .unwrap();
            }
        }
    });

    let entry = PipelineBuilder::new()
        .database(homogeneous_db("sun", 20, 52))
        .build_federated(
            BackendKind::Embedded,
            FederationConfig {
                domain: "purdue".to_string(),
                ttl: 8,
                peers: vec![StageAddress::new("127.0.0.1", fake_addr.port())],
                gossip_interval: std::time::Duration::ZERO,
                ..FederationConfig::default()
            },
        )
        .unwrap();

    // Drive delegable queries until the redial happened and the directory
    // reflects the peer's SECOND advertisement.  (The first query may
    // burn on the dying first connection; the link redials on the next.)
    let mut resynced = false;
    for _ in 0..20 {
        let _ = entry.submit_text_wait("punch.rsrc.arch = hp\n");
        let dir = entry.peer_directory();
        let has_new = dir
            .instances("arch,==/sgi")
            .iter()
            .any(|r| r.manager == "upc");
        let has_old = dir
            .instances("arch,==/hp")
            .iter()
            .any(|r| r.manager == "upc");
        if has_new && !has_old {
            resynced = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(
        resynced,
        "after the redial the peer directory must hold the restarted peer's new pools \
         and none of its stale ones"
    );

    entry.shutdown().unwrap();
    fake_peer.join().unwrap();
}

/// Concurrency smoke over real daemons: many simultaneous delegations to
/// one peer all settle with that peer's allocations, and the entry's
/// counters account for every one of them.
#[test]
fn concurrent_delegations_to_the_same_peer_all_settle() {
    let db_a = homogeneous_db("sun", 20, 60);
    let db_b = homogeneous_db("hp", 40, 61);
    let (srv_b, fed_b) = spawn_domain("upc", db_b.clone(), vec![], 8);
    let entry = PipelineBuilder::new()
        .database(db_a)
        .build_federated(
            BackendKind::Embedded,
            FederationConfig {
                domain: "purdue".to_string(),
                ttl: 8,
                peers: vec![srv_b.local_addr()],
                gossip_interval: std::time::Duration::ZERO,
                ..FederationConfig::default()
            },
        )
        .unwrap();

    let chains: Vec<_> = (0..8)
        .map(|_| {
            let entry = entry.clone();
            std::thread::spawn(move || entry.submit_text_wait("punch.rsrc.arch = hp\n"))
        })
        .collect();
    let mut allocations = Vec::new();
    for chain in chains {
        let outcome = chain.join().unwrap().unwrap();
        assert!(outcome[0].machine_name.contains("hp"));
        allocations.extend(outcome);
    }
    assert_eq!(active_jobs(&db_b), 8, "all eight claims live in the peer");
    assert_eq!(entry.stats().delegations_out, 8);
    assert!(fed_b.stats().delegations_in >= 8);
    for allocation in &allocations {
        entry.release(allocation).unwrap();
    }
    assert_eq!(active_jobs(&db_b), 0);

    entry.shutdown().unwrap();
    srv_b.halt();
    srv_b.join().unwrap();
}

/// A non-federated daemon answers the federation vocabulary with a
/// protocol error instead of misbehaving.
#[test]
fn non_federated_daemons_refuse_delegation_frames() {
    use actyp_proto::{
        read_server_frame, write_frame, ClientFrame, RequestId, ServerFrame, PROTOCOL_VERSION,
    };
    use std::net::TcpStream;

    let server = PipelineBuilder::new()
        .database(homogeneous_db("sun", 20, 15))
        .serve(&StageAddress::new("127.0.0.1", 0), BackendKind::Embedded)
        .unwrap();
    let addr = server.local_addr();
    let mut raw = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
    write_frame(
        &mut raw,
        &ClientFrame::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        },
    )
    .unwrap();
    assert!(matches!(
        read_server_frame(&mut raw).unwrap(),
        Some(ServerFrame::HelloAck { .. })
    ));
    write_frame(
        &mut raw,
        &ClientFrame::Delegate {
            corr: RequestId(0),
            query: "punch.rsrc.arch = sun\n".to_string(),
            ttl: 4,
            visited: vec![],
        },
    )
    .unwrap();
    match read_server_frame(&mut raw).unwrap() {
        Some(ServerFrame::Error { error, .. }) => {
            assert!(matches!(error, AllocationError::Protocol(_)), "{error}");
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    drop(raw);
    server.halt();
    server.join().unwrap();
}

// ---------------------------------------------------------------------------
// Property tests: routing invariants over in-memory topologies
// ---------------------------------------------------------------------------

/// A whole federation in memory: every domain resolves queries by flag and
/// forwards through [`run_chain`], exactly like the TCP implementation.
struct MemoryNet {
    /// domain → (peer domains, locally satisfiable?)
    domains: BTreeMap<String, (Vec<String>, bool)>,
    dead: BTreeSet<String>,
    /// `(domain, ttl-as-sent)` per delegation hop, for invariant checks.
    hops: RefCell<Vec<(String, u32)>>,
}

/// One domain's view of the in-memory federation.
struct NodeView<'a> {
    net: &'a MemoryNet,
    node: String,
}

impl MemoryNet {
    fn resolve_local(&self, node: &str) -> QueryOutcome {
        if self.domains[node].1 {
            Ok(Vec::new())
        } else {
            Err(AllocationError::NoSuchResources)
        }
    }

    fn run_from(&self, origin: &str, ttl: u32) -> (QueryOutcome, RoutingState) {
        let view = NodeView {
            net: self,
            node: origin.to_string(),
        };
        run_chain(
            origin,
            "q",
            RoutingState::new(ttl),
            |_| self.resolve_local(origin),
            &view,
        )
    }
}

impl PeerDelegator for NodeView<'_> {
    fn candidates(&self, _query: &str, _state: &RoutingState) -> Vec<String> {
        self.net.domains[&self.node]
            .0
            .iter()
            .filter(|d| !self.net.dead.contains(*d))
            .cloned()
            .collect()
    }

    fn delegate(
        &self,
        domain: &str,
        query: &str,
        state: &RoutingState,
    ) -> Result<(QueryOutcome, RoutingState), PeerUnavailable> {
        if self.net.dead.contains(domain) {
            return Err(PeerUnavailable {
                transport: true,
                reason: format!("domain `{domain}` is dead"),
            });
        }
        self.net
            .hops
            .borrow_mut()
            .push((domain.to_string(), state.ttl));
        let view = NodeView {
            net: self.net,
            node: domain.to_string(),
        };
        Ok(run_chain(
            domain,
            query,
            state.clone(),
            |_| self.net.resolve_local(domain),
            &view,
        ))
    }
}

/// Random topology: `n` domains, adjacency and satisfiability and deadness
/// from seed bits.
fn topology_strategy() -> impl Strategy<Value = (MemoryNet, String, u32)> {
    (2usize..6, 0u64..u64::MAX, 0u32..12).prop_map(|(n, seed, ttl)| {
        let names: Vec<String> = (0..n).map(|i| format!("d{i}")).collect();
        let mut domains = BTreeMap::new();
        let mut dead = BTreeSet::new();
        for (i, name) in names.iter().enumerate() {
            let peers: Vec<String> = names
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i && (seed >> ((i * n + j) % 48)) & 1 == 1)
                .map(|(_, p)| p.clone())
                .collect();
            let satisfiable = (seed >> (48 + i % 16)) & 1 == 1;
            domains.insert(name.clone(), (peers, satisfiable));
            if i > 0 && (seed >> (32 + i)) & 3 == 3 {
                dead.insert(name.clone());
            }
        }
        let net = MemoryNet {
            domains,
            dead,
            hops: RefCell::new(Vec::new()),
        };
        (net, names[0].clone(), ttl)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Over any topology (including dead peers) the chain terminates and
    /// upholds the paper's routing invariants: the TTL strictly decreases
    /// across hops, no domain is revisited, the whole search stays within
    /// the TTL, and TTL exhaustion surfaces as `TtlExpired`.
    #[test]
    fn chains_terminate_and_uphold_routing_invariants(
        input in topology_strategy()
    ) {
        let (net, origin, ttl) = input;
        let (outcome, state) = net.run_from(&origin, ttl);
        let hops = net.hops.borrow();

        // TTL strictly decreases across hops (each hop carries the TTL it
        // was sent with; the origin starts the sequence).
        let mut previous = ttl;
        for (_, sent_ttl) in hops.iter() {
            prop_assert!(*sent_ttl < previous || previous == 0,
                "hop sent ttl {sent_ttl} after {previous}");
            previous = *sent_ttl;
        }

        // No domain is ever revisited.
        let mut seen = BTreeSet::new();
        for domain in &state.visited {
            prop_assert!(seen.insert(domain.clone()), "revisited {domain}");
        }

        // The whole search stays within the TTL: one visit per hop.
        prop_assert!(state.visited.len() as u64 <= ttl as u64);
        prop_assert!(hops.len() as u64 <= ttl as u64);
        prop_assert!(state.ttl <= ttl);

        match &outcome {
            Ok(_) => {
                // Success requires a satisfiable domain among the visited.
                prop_assert!(state.visited.iter().any(|d| net.domains[d].1));
            }
            Err(AllocationError::TtlExpired) => {
                // TTL exhaustion is only reported when the TTL is in fact
                // exhausted (zero from the start or consumed by hops).
                prop_assert!(state.ttl == 0 || ttl == 0);
            }
            Err(AllocationError::NoSuchResources) => {
                // Every visited domain really failed.
                prop_assert!(state.visited.iter().all(|d| !net.domains[d].1));
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Dead peers never appear in the visited list: an unreachable domain
    /// consumes no TTL and leaves no trace in the routing state.
    #[test]
    fn dead_peers_consume_no_ttl(
        input in topology_strategy()
    ) {
        let (net, origin, ttl) = input;
        let (_, state) = net.run_from(&origin, ttl);
        for domain in &state.visited {
            prop_assert!(!net.dead.contains(domain),
                "dead domain {domain} in the visited list");
        }
    }
}

#[test]
fn over_window_batches_backpressure_with_a_deadline_on_a_federated_daemon() {
    // The federated daemon used to diverge from the plain one here: its
    // batch path fell through to per-query submission, which blocks in the
    // live window with no bound.  Both modes now share the inner backend's
    // deadline-bounded backpressure (plain-daemon half of this regression
    // pair lives in tests/remote_backend.rs).
    let deadline = std::time::Duration::from_millis(150);
    let (server, _backend) = PipelineBuilder::new()
        .database(homogeneous_db("sun", 300, 42))
        .window(2)
        .batch_deadline(deadline)
        .serve_federated(
            &StageAddress::new("127.0.0.1", 0),
            BackendKind::Live,
            FederationConfig {
                domain: "solo".to_string(),
                ttl: 4,
                peers: Vec::new(),
                gossip_interval: std::time::Duration::ZERO,
                ..FederationConfig::default()
            },
        )
        .expect("federated daemon starts");
    let remote = RemoteBackend::connect(&server.local_addr()).expect("connect");
    let query = actyp_query::parse_query("punch.rsrc.arch = sun\n").unwrap();

    let started = std::time::Instant::now();
    let err = remote.submit_batch(vec![query.clone(); 4]).unwrap_err();
    match &err {
        AllocationError::Internal(message) => {
            assert!(
                message.contains("backpressure"),
                "unexpected error: {message}"
            )
        }
        other => panic!("expected deadline-bounded backpressure failure, got {other:?}"),
    }
    assert!(
        started.elapsed() >= deadline,
        "the federated daemon must backpressure until the deadline, not block unboundedly"
    );

    // The batch path still issues delegable tickets: a fitting batch
    // settles, and nothing leaked in the window.
    let tickets = remote.submit_batch(vec![query; 2]).unwrap();
    for ticket in tickets {
        let allocations = remote.wait(ticket).unwrap();
        remote.release(&allocations[0]).unwrap();
    }

    remote.halt_daemon().unwrap();
    remote.shutdown().unwrap();
    server.join().expect("daemon drains");
}
