//! The anti-entropy gossip plane and the learned routing cache, end to
//! end and by property.
//!
//! The integration half peers real `ypd` daemons on loopback with the
//! periodic gossip tick *enabled* and proves the tentpole claim of the
//! gossip plane: a pool registered mid-session on one daemon becomes
//! delegable from a remote domain over the standing peer links — zero
//! redials — and steers the very next query to the satisfying domain in
//! one hop.  A fake-peer script covers the rename path: a peer that
//! comes back under a new domain name atomically retires everything the
//! old name advertised.
//!
//! The property half drives whole in-memory topologies of
//! [`GossipPlane`]s through the same push–pull exchange the wire
//! implements and checks convergence (every live pool visible at every
//! domain within a diameter's worth of rounds, no dead pool ever
//! resurrected), and runs [`run_chain`] with an adversarially populated
//! [`RouteCache`] to check that a learned route can only ever *reorder*
//! candidates — the TTL and visited-set invariants of the uncached walk
//! survive any cache contents, including stale and dead ones.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use actyp_grid::{FleetSpec, SharedDatabase, SyntheticFleet};
use actyp_pipeline::api::QueryOutcome;
use actyp_pipeline::{
    run_chain, AllocationError, BackendKind, FederatedBackend, FederationConfig, GossipPlane,
    PeerDelegator, PeerUnavailable, PipelineBuilder, RemoteBackend, ResourceManager, RouteCache,
    RoutingState, ServerHandle, StageAddress,
};

// ---------------------------------------------------------------------------
// Integration: gossiping daemons on loopback
// ---------------------------------------------------------------------------

fn homogeneous_db(arch: &str, machines: usize, seed: u64) -> SharedDatabase {
    SyntheticFleet::new(FleetSpec::homogeneous(machines, arch, 512), seed)
        .generate()
        .into_shared()
}

/// One federated daemon with the periodic anti-entropy tick running.
fn spawn_gossiping(
    domain: &str,
    db: SharedDatabase,
    peers: Vec<StageAddress>,
    gossip_interval: Duration,
) -> (ServerHandle, Arc<FederatedBackend>) {
    PipelineBuilder::new()
        .database(db)
        .ttl(8)
        .serve_federated(
            &StageAddress::new("127.0.0.1", 0),
            BackendKind::Embedded,
            FederationConfig {
                domain: domain.to_string(),
                ttl: 8,
                peers,
                gossip_interval,
                ..FederationConfig::default()
            },
        )
        .expect("federated daemon starts")
}

/// Polls `cond` until it holds or a generous deadline passes (the gossip
/// interval in these tests is 100ms; ten seconds is pure CI slack).
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The tentpole, over real sockets: daemon A peers with B and C and its
/// anti-entropy tick establishes both links while C has *no* pools.  A
/// pool then registered mid-session on C (by a client of C) becomes
/// visible at A over the standing links — zero redials — relays
/// transitively to B (which has no link of its own to C), and steers
/// A's next query straight to C in one hop instead of a blind walk
/// through B.  A repeat query hits the learned route cache.
#[test]
fn pool_registered_mid_session_is_delegable_without_redial() {
    let interval = Duration::from_millis(100);
    let db_a = homogeneous_db("sun", 20, 71);
    let db_b = homogeneous_db("sun", 20, 72);
    let db_c = homogeneous_db("hp", 20, 73);
    let (srv_c, fed_c) = spawn_gossiping("upc", db_c, vec![], interval);
    let (srv_b, fed_b) = spawn_gossiping("cern", db_b, vec![], interval);
    let (srv_a, fed_a) = spawn_gossiping(
        "purdue",
        db_a,
        vec![srv_b.local_addr(), srv_c.local_addr()],
        interval,
    );

    // The tick dials both peer links.  Wait until the handshakes landed
    // (each peer records the inbound domain) — at which point C still
    // has nothing to advertise, so A knows no upc pools.
    wait_for("A's peer links to establish", || {
        let knows = |fed: &FederatedBackend| {
            fed.peer_directory()
                .pool_managers()
                .iter()
                .any(|d| d == "purdue")
        };
        knows(&fed_c) && knows(&fed_b)
    });
    assert!(
        fed_a.gossip().live_pools("upc").is_empty(),
        "no pool exists on C yet"
    );
    assert_eq!(fed_a.peer_redials(), 0);

    // Mid-session, long after the links came up: a client of C creates
    // an hp pool there.
    let client_c = RemoteBackend::connect(&srv_c.local_addr()).unwrap();
    let held = client_c.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
    assert!(!fed_c.local_pools().is_empty(), "the pool exists on C");

    // Within a gossip round the pool is visible at A — and no link was
    // redialed to learn it.
    wait_for("the new pool to gossip to A", || {
        !fed_a.gossip().live_pools("upc").is_empty()
    });
    assert_eq!(
        fed_a.peer_redials(),
        0,
        "the advertisement arrived over the standing links"
    );
    assert!(fed_a.gossip().deltas_in() > 0, "deltas actually flowed");

    // Transitive relay: B has no link to C, yet A's pushes carry the upc
    // origin log to it.
    wait_for("the pool to relay transitively to B", || {
        !fed_b.gossip().live_pools("upc").is_empty()
    });

    // The learned advertisement steers the next query to upc in ONE hop
    // — a blind walk would try cern first and burn a hop for nothing.
    let client_a = RemoteBackend::connect(&srv_a.local_addr()).unwrap();
    let first = client_a.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
    assert!(first[0].machine_name.contains("hp"));
    let chain = fed_a.last_chain().expect("a chain ran");
    assert_eq!(
        chain.visited,
        vec!["purdue".to_string(), "upc".to_string()],
        "gossip routed the query straight to the satisfying domain"
    );

    // A repeat query goes through the learned route cache.
    let second = client_a.submit_text_wait("punch.rsrc.arch = hp\n").unwrap();
    assert!(second[0].machine_name.contains("hp"));
    assert!(
        fed_a.route_cache().hits() >= 1,
        "the repeat query hit the learned one-hop route"
    );
    assert_eq!(fed_a.peer_redials(), 0, "still zero redials end to end");

    for allocation in first.iter().chain(second.iter()) {
        client_a.release(allocation).unwrap();
    }
    client_c.release(&held[0]).unwrap();
    client_a.shutdown().unwrap();
    client_c.shutdown().unwrap();
    for srv in [srv_a, srv_b, srv_c] {
        srv.halt();
        srv.join().unwrap();
    }
}

/// The rename satellite: a peer that comes back under a NEW domain name
/// atomically retires the old domain — its directory records are gone,
/// and the route cache no longer steers anything at the dead name.
#[test]
fn peer_renaming_its_domain_retires_the_old_domains_pools() {
    use actyp_proto::{read_client_frame, write_frame, ClientFrame, ServerFrame, PROTOCOL_VERSION};
    use std::net::TcpListener;

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = listener.local_addr().unwrap();
    let fake_peer = std::thread::spawn(move || {
        let handshake = |conn: &mut std::net::TcpStream, domain: &str, pools: Vec<String>| {
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            match read_client_frame(conn).unwrap() {
                Some(ClientFrame::Hello { .. }) => write_frame(
                    conn,
                    &ServerFrame::HelloAck {
                        version: PROTOCOL_VERSION,
                    },
                )
                .unwrap(),
                other => panic!("expected Hello, got {other:?}"),
            }
            match read_client_frame(conn).unwrap() {
                Some(ClientFrame::SyncPools { corr, .. }) => write_frame(
                    conn,
                    &ServerFrame::PoolsSynced {
                        corr,
                        domain: domain.to_string(),
                        pools,
                        deltas: Vec::new(),
                    },
                )
                .unwrap(),
                other => panic!("expected SyncPools, got {other:?}"),
            }
        };
        // First life: domain "upc" advertises an hp pool, then dies.
        {
            let (mut conn, _) = listener.accept().unwrap();
            handshake(&mut conn, "upc", vec!["arch,==/hp".to_string()]);
        }
        // Second life, SAME address, DIFFERENT domain name: "barcelona"
        // advertising a different pool; refuse delegations until the
        // entry disconnects.
        let (mut conn, _) = listener.accept().unwrap();
        handshake(&mut conn, "barcelona", vec!["arch,==/sgi".to_string()]);
        while let Ok(Some(frame)) = read_client_frame(&mut conn) {
            if let ClientFrame::Delegate {
                corr, ttl, visited, ..
            } = frame
            {
                let mut visited = visited;
                visited.push("barcelona".to_string());
                write_frame(
                    &mut conn,
                    &ServerFrame::Delegated {
                        corr,
                        outcome: Err(AllocationError::NoneAvailable),
                        ttl: ttl.saturating_sub(1),
                        visited,
                        deltas: Vec::new(),
                    },
                )
                .unwrap();
            }
        }
    });

    let entry = PipelineBuilder::new()
        .database(homogeneous_db("sun", 20, 81))
        .build_federated(
            BackendKind::Embedded,
            FederationConfig {
                domain: "purdue".to_string(),
                ttl: 8,
                peers: vec![StageAddress::new("127.0.0.1", fake_addr.port())],
                gossip_interval: Duration::ZERO,
                ..FederationConfig::default()
            },
        )
        .unwrap();
    // A route learned while the peer was still "upc" (as a prior
    // delegation would have left behind).
    entry.route_cache().learn("arch,==/hp", "upc");

    // Drive delegable queries until the redial hit the renamed second
    // life and the retirement took: the old domain's directory records
    // are gone, the new domain's are in, and the learned route through
    // the dead name no longer exists.
    let mut retired = false;
    for _ in 0..20 {
        let _ = entry.submit_text_wait("punch.rsrc.arch = hp\n");
        let dir = entry.peer_directory();
        let has_new = dir.pool_managers().iter().any(|d| d == "barcelona");
        let has_old = dir.pool_managers().iter().any(|d| d == "upc")
            || dir
                .instances("arch,==/hp")
                .iter()
                .any(|r| r.manager == "upc");
        if has_new && !has_old {
            retired = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        retired,
        "re-advertising under a new name must retire the old domain's records wholesale"
    );
    assert_eq!(
        entry.route_cache().next_hop("arch,==/hp"),
        None,
        "the route learned through the retired name is gone"
    );
    assert!(
        entry.peer_redials() >= 1,
        "the second life was reached by a redial (and counted as one)"
    );

    entry.shutdown().unwrap();
    fake_peer.join().unwrap();
}

/// The timer-wheel health probe, over real sockets: daemon A peers at B
/// with the *gossip tick disabled*, so after the link is established by
/// one delegation nothing but the probe ever touches it.  B is then
/// halted.  No client delegates through A again — yet A prunes B's
/// directory records within a few probe rounds, so the next delegation
/// would never offer the dead peer as a candidate.
#[test]
fn health_probe_prunes_a_dead_peer_between_delegations() {
    let (srv_b, _fed_b) = PipelineBuilder::new()
        .database(homogeneous_db("hp", 20, 91))
        .ttl(8)
        .serve_federated(
            &StageAddress::new("127.0.0.1", 0),
            BackendKind::Embedded,
            FederationConfig {
                domain: "upc".to_string(),
                ttl: 8,
                peers: vec![],
                gossip_interval: Duration::ZERO,
                ..FederationConfig::default()
            },
        )
        .expect("pool host starts");
    let (srv_a, fed_a) = PipelineBuilder::new()
        .database(homogeneous_db("sun", 20, 92))
        .ttl(8)
        .serve_federated(
            &StageAddress::new("127.0.0.1", 0),
            BackendKind::Embedded,
            FederationConfig {
                domain: "purdue".to_string(),
                ttl: 8,
                peers: vec![srv_b.local_addr()],
                gossip_interval: Duration::ZERO,
                probe_interval: Duration::from_millis(150),
                ..FederationConfig::default()
            },
        )
        .expect("entry daemon starts");

    // One delegation establishes the link and the peer's directory
    // records; releasing the allocation leaves the link healthy and idle.
    let client = RemoteBackend::connect(&srv_a.local_addr()).expect("connect to entry");
    let held = client
        .submit_text_wait("punch.rsrc.arch = hp\n")
        .expect("the hp query delegates to the peer");
    client
        .release(&held[0])
        .expect("release routes to the peer");
    {
        let dir = fed_a.peer_directory();
        assert!(
            dir.pool_managers().iter().any(|d| d == "upc"),
            "the delegation recorded the peer's advertisement"
        );
    }
    let delegations_before = client.stats().delegations_out;

    // Kill the peer.  Nothing queries A from here on: only the probe
    // timer can notice the death.
    srv_b.halt();
    srv_b.join().expect("pool host drains");
    wait_for("the probe to prune the dead peer", || {
        !fed_a
            .peer_directory()
            .pool_managers()
            .iter()
            .any(|d| d == "upc")
    });
    assert_eq!(
        client.stats().delegations_out,
        delegations_before,
        "no delegation was spent discovering the death"
    );

    client.halt_daemon().expect("entry accepts the halt");
    client.shutdown().expect("clean session shutdown");
    srv_a.join().expect("entry drains");
}

// ---------------------------------------------------------------------------
// Property: gossip convergence over in-memory topologies
// ---------------------------------------------------------------------------

/// One push–pull exchange, exactly the wire's shape: `a` pushes its
/// deltas and version vector, `b` applies and replies with what `a`
/// lacks, `a` applies the reply and marks `b` as holding everything it
/// sent.
fn exchange(a: &GossipPlane, b: &GossipPlane) {
    let vector = a.version_vector();
    let deltas = a.deltas_for_peer(b.domain());
    b.note_peer_versions(a.domain(), &vector);
    b.apply(&deltas);
    let reply = b.deltas_since(&vector);
    a.apply(&reply);
    a.note_acked(b.domain(), vector);
}

// ---------------------------------------------------------------------------
// Regression: restart epochs must be strictly monotone
// ---------------------------------------------------------------------------

fn own_epoch(plane: &GossipPlane) -> u64 {
    plane
        .version_vector()
        .into_iter()
        .find(|v| v.origin == plane.domain())
        .expect("own origin always in the vector")
        .epoch
}

/// Epochs come from wall-clock seconds, so two lives created within the
/// same second used to share one — letting a lagging relay of the old
/// life's log (same epoch, higher sequence) resurrect retired pools at
/// every peer.  Every plane built in this process must now open a
/// strictly higher epoch than the one before, clock or no clock.
#[test]
fn restart_epochs_are_strictly_monotone_within_a_process() {
    let mut previous = own_epoch(&GossipPlane::new("ypd.restarts.example"));
    for _ in 0..3 {
        let epoch = own_epoch(&GossipPlane::new("ypd.restarts.example"));
        assert!(
            epoch > previous,
            "restart epoch {epoch} must exceed the previous life's {previous}"
        );
        previous = epoch;
    }
}

/// The defense in depth for epochs that *do* collide (a real restart
/// reusing a wall-clock second, or a clock step backwards): an echo of
/// the own origin at our current epoch proves a previous life shares
/// it, and the plane re-epochs itself strictly above the echo so its
/// next exchange resets every peer in this life's favour.
#[test]
fn own_origin_echo_at_current_epoch_forces_a_re_epoch() {
    // The old life advertised a pool the restart retired.
    let old_life = GossipPlane::with_epoch("ypd.d.example", 7);
    old_life.refresh_local(&["kept-pool".to_string(), "retired-pool".to_string()]);
    let stale_relay = old_life.deltas_since(&[]);

    // The restart reused the epoch: fresh log, same number.
    let new_life = GossipPlane::with_epoch("ypd.d.example", 7);
    new_life.refresh_local(&["kept-pool".to_string()]);

    // A peer learns the new life's state, then a lagging relay replays
    // the old life's log — same epoch, higher sequence, so the retired
    // pool comes back from the dead at the peer.
    let peer = GossipPlane::with_epoch("ypd.peer.example", 1);
    peer.apply(&new_life.deltas_since(&[]));
    peer.apply(&stale_relay);
    assert!(
        peer.live_pools("ypd.d.example")
            .contains(&"retired-pool".to_string()),
        "the stale relay must corrupt the peer for the regression to be meaningful"
    );

    // The echo also reaches the origin, which re-epochs above it...
    new_life.apply(&stale_relay);
    let bumped = own_epoch(&new_life);
    assert!(bumped > 7, "echo at epoch 7 must force an epoch above it");
    assert_eq!(
        new_life.live_pools("ypd.d.example"),
        vec!["kept-pool".to_string()],
        "re-epoching must preserve the current live set"
    );

    // ...and its next exchange resets the corrupted peer outright.
    peer.apply(&new_life.deltas_since(&peer.version_vector()));
    assert_eq!(
        peer.live_pools("ypd.d.example"),
        vec!["kept-pool".to_string()],
        "the new epoch must retire the resurrected pool at the peer"
    );
}

/// A connected topology: a ring over `n` domains plus extra chords from
/// seed bits, each domain's pool set and mid-run death set from more
/// seed bits.
#[derive(Debug)]
struct GossipTopology {
    /// Undirected edges as index pairs (i < j).
    edges: Vec<(usize, usize)>,
    /// Per domain: initial pool names, and the subset that dies mid-run.
    pools: Vec<(Vec<String>, Vec<String>)>,
}

fn gossip_topology_strategy() -> impl Strategy<Value = GossipTopology> {
    (2usize..6, 0u64..u64::MAX).prop_map(|(n, seed)| {
        let mut edges: Vec<(usize, usize)> = (0..n)
            .map(|i| (i.min((i + 1) % n), i.max((i + 1) % n)))
            .collect();
        edges.sort();
        edges.dedup();
        for i in 0..n {
            for j in (i + 2)..n {
                if (seed >> ((i * n + j) % 40)) & 1 == 1 && !edges.contains(&(i, j)) {
                    edges.push((i, j));
                }
            }
        }
        let pools = (0..n)
            .map(|i| {
                let count = ((seed >> (i * 3)) & 3) as usize;
                let all: Vec<String> = (0..count).map(|k| format!("d{i}/pool{k}")).collect();
                let dead: Vec<String> = all
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| (seed >> (40 + (i * 3 + k) % 20)) & 1 == 1)
                    .map(|(_, p)| p.clone())
                    .collect();
                (all, dead)
            })
            .collect();
        GossipTopology { edges, pools }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over any connected topology, anti-entropy converges within a
    /// diameter's worth of rounds: every live pool is visible at every
    /// domain, and after a wave of pool deaths a second convergence
    /// leaves no dead pool resurrected anywhere.
    #[test]
    fn gossip_converges_and_never_resurrects_dead_pools(
        topology in gossip_topology_strategy()
    ) {
        let n = topology.pools.len();
        let planes: Vec<GossipPlane> = (0..n)
            .map(|i| GossipPlane::with_epoch(&format!("d{i}"), 1 + i as u64))
            .collect();
        for (plane, (all, _)) in planes.iter().zip(&topology.pools) {
            plane.refresh_local(all);
        }
        let rounds = n + 1; // ≥ diameter of any connected n-domain graph
        for _ in 0..rounds {
            for &(i, j) in &topology.edges {
                exchange(&planes[i], &planes[j]);
                exchange(&planes[j], &planes[i]);
            }
        }
        // Phase one: everything initially advertised is visible
        // everywhere.
        for (holder, plane) in planes.iter().enumerate() {
            for (origin, (all, _)) in topology.pools.iter().enumerate() {
                if holder == origin {
                    continue;
                }
                let seen: BTreeSet<String> =
                    plane.live_pools(&format!("d{origin}")).into_iter().collect();
                let expected: BTreeSet<String> = all.iter().cloned().collect();
                prop_assert_eq!(&seen, &expected,
                    "domain d{} view of d{} after convergence", holder, origin);
            }
        }
        // Phase two: a wave of deaths, then converge again — the dead
        // must stay dead at every domain (no resurrection by relay).
        for (plane, (all, dead)) in planes.iter().zip(&topology.pools) {
            let survivors: Vec<String> =
                all.iter().filter(|p| !dead.contains(p)).cloned().collect();
            plane.refresh_local(&survivors);
        }
        for _ in 0..rounds {
            for &(i, j) in &topology.edges {
                exchange(&planes[i], &planes[j]);
                exchange(&planes[j], &planes[i]);
            }
        }
        for (holder, plane) in planes.iter().enumerate() {
            for (origin, (all, dead)) in topology.pools.iter().enumerate() {
                if holder == origin {
                    continue;
                }
                let seen: BTreeSet<String> =
                    plane.live_pools(&format!("d{origin}")).into_iter().collect();
                let expected: BTreeSet<String> = all
                    .iter()
                    .filter(|p| !dead.contains(p))
                    .cloned()
                    .collect();
                prop_assert_eq!(&seen, &expected,
                    "domain d{} view of d{} after the death wave", holder, origin);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property: a learned route can only reorder, never bypass
// ---------------------------------------------------------------------------

/// An in-memory federation whose every node consults one (adversarially
/// populated) route cache when ordering candidates — the cached hop is
/// *preferred*, exactly like the TCP implementation, never injected.
struct CachedNet {
    /// domain → (peer domains, locally satisfiable?)
    domains: BTreeMap<String, (Vec<String>, bool)>,
    dead: BTreeSet<String>,
    cache: RouteCache,
    /// `(domain, ttl-as-sent)` per delegation hop, for invariant checks.
    hops: RefCell<Vec<(String, u32)>>,
}

struct CachedView<'a> {
    net: &'a CachedNet,
    node: String,
}

impl CachedNet {
    fn resolve_local(&self, node: &str) -> QueryOutcome {
        if self.domains[node].1 {
            Ok(Vec::new())
        } else {
            Err(AllocationError::NoSuchResources)
        }
    }

    fn run_from(&self, origin: &str, ttl: u32) -> (QueryOutcome, RoutingState) {
        let view = CachedView {
            net: self,
            node: origin.to_string(),
        };
        run_chain(
            origin,
            "q",
            RoutingState::new(ttl),
            |_| self.resolve_local(origin),
            &view,
        )
    }
}

impl PeerDelegator for CachedView<'_> {
    fn candidates(&self, query: &str, _state: &RoutingState) -> Vec<String> {
        let mut list: Vec<String> = self.net.domains[&self.node].0.clone();
        // The cache's whole power: move a learned hop to the front *if*
        // it is a direct peer.  It can never add a candidate.
        if let Some(hop) = self.net.cache.next_hop(query) {
            if let Some(position) = list.iter().position(|d| *d == hop) {
                let preferred = list.remove(position);
                list.insert(0, preferred);
            }
        }
        list
    }

    fn delegate(
        &self,
        domain: &str,
        query: &str,
        state: &RoutingState,
    ) -> Result<(QueryOutcome, RoutingState), PeerUnavailable> {
        if self.net.dead.contains(domain) {
            return Err(PeerUnavailable {
                transport: true,
                reason: format!("domain `{domain}` is dead"),
            });
        }
        self.net
            .hops
            .borrow_mut()
            .push((domain.to_string(), state.ttl));
        let view = CachedView {
            net: self.net,
            node: domain.to_string(),
        };
        Ok(run_chain(
            domain,
            query,
            state.clone(),
            |_| self.net.resolve_local(domain),
            &view,
        ))
    }
}

/// Random topology plus an arbitrary route-cache seeding: the cached hop
/// may be live, dead, unsatisfiable, or not a peer of anybody.
fn cached_topology_strategy() -> impl Strategy<Value = (CachedNet, String, u32)> {
    (2usize..6, 0u64..u64::MAX, 0u32..12, 0usize..8).prop_map(|(n, seed, ttl, cached)| {
        let names: Vec<String> = (0..n).map(|i| format!("d{i}")).collect();
        let mut domains = BTreeMap::new();
        let mut dead = BTreeSet::new();
        for (i, name) in names.iter().enumerate() {
            let peers: Vec<String> = names
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i && (seed >> ((i * n + j) % 48)) & 1 == 1)
                .map(|(_, p)| p.clone())
                .collect();
            let satisfiable = (seed >> (48 + i % 16)) & 1 == 1;
            domains.insert(name.clone(), (peers, satisfiable));
            if i > 0 && (seed >> (32 + i)) & 3 == 3 {
                dead.insert(name.clone());
            }
        }
        let cache = RouteCache::new(true);
        if cached < n {
            // Possibly a dead or unsatisfiable domain: the invariants
            // must hold anyway.
            cache.learn("q", &names[cached]);
        } else if cached == n {
            cache.learn("q", "nowhere"); // not a peer of anybody
        }
        let net = CachedNet {
            domains,
            dead,
            cache,
            hops: RefCell::new(Vec::new()),
        };
        (net, names[0].clone(), ttl)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever the cache holds — a live route, a stale route to a dead
    /// domain, a domain that is no peer at all — the chain's invariants
    /// are untouched: TTL strictly decreases across hops, no domain is
    /// revisited, the walk stays within the TTL, dead domains leave no
    /// trace, and a wrong cache entry degrades to the ordinary walk
    /// (correct outcomes, never a wrong answer).
    #[test]
    fn a_cached_route_never_bypasses_ttl_or_visited_invariants(
        input in cached_topology_strategy()
    ) {
        let (net, origin, ttl) = input;
        let (outcome, state) = net.run_from(&origin, ttl);
        let hops = net.hops.borrow();

        let mut previous = ttl;
        for (_, sent_ttl) in hops.iter() {
            prop_assert!(*sent_ttl < previous || previous == 0,
                "hop sent ttl {} after {}", sent_ttl, previous);
            previous = *sent_ttl;
        }

        let mut seen = BTreeSet::new();
        for domain in &state.visited {
            prop_assert!(seen.insert(domain.clone()), "revisited {}", domain);
            prop_assert!(!net.dead.contains(domain),
                "dead domain {} in the visited list", domain);
        }
        prop_assert!(state.visited.len() as u64 <= ttl as u64);
        prop_assert!(hops.len() as u64 <= ttl as u64);
        prop_assert!(state.ttl <= ttl);

        match &outcome {
            Ok(_) => {
                prop_assert!(state.visited.iter().any(|d| net.domains[d].1));
            }
            Err(AllocationError::TtlExpired) => {
                prop_assert!(state.ttl == 0 || ttl == 0);
            }
            Err(AllocationError::NoSuchResources) => {
                prop_assert!(state.visited.iter().all(|d| !net.domains[d].1));
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

/// Deterministic pin of the fallback: a stale cached route pointing at a
/// dead domain costs nothing — the walk falls back to the remaining
/// peers and still finds the satisfying one, with the dead hop absent
/// from the visited list.
#[test]
fn stale_cached_route_falls_back_to_the_chain_walk() {
    let mut domains = BTreeMap::new();
    domains.insert(
        "d0".to_string(),
        (vec!["dead".to_string(), "good".to_string()], false),
    );
    domains.insert("dead".to_string(), (vec![], true));
    domains.insert("good".to_string(), (vec![], true));
    let cache = RouteCache::new(true);
    cache.learn("q", "dead");
    let net = CachedNet {
        domains,
        dead: BTreeSet::from(["dead".to_string()]),
        cache,
        hops: RefCell::new(Vec::new()),
    };
    let (outcome, state) = net.run_from("d0", 4);
    assert!(outcome.is_ok(), "the walk recovered: {outcome:?}");
    assert_eq!(
        state.visited,
        vec!["d0".to_string(), "good".to_string()],
        "the dead cached hop was tried, failed at transport, and left no trace"
    );
    assert!(net.cache.hits() >= 1, "the stale entry was consulted");
}
