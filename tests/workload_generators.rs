//! Statistical and determinism guarantees of the workload generators.
//!
//! The chaos harness replays traces built from these generators, so their
//! contract is twofold: under a fixed seed they are *bit-reproducible*
//! (the same scenario is the same run), and across samples their
//! statistics match the distributions the paper describes (Figure 9's
//! heavy-tailed CPU times, uniform hot-spot windows, Poisson arrivals).
//! Every assertion here runs against fixed seeds — there are no flaky
//! tolerance checks against a fresh RNG.

use actyp_simnet::{Rng, SimTime};
use actyp_workload::{
    ClassAssignment, ClientPopulation, CpuTimeDistribution, HotspotBurst, Trace, TraceRecord,
};

// --- CPU-time distribution (Figure 9) ----------------------------------

#[test]
fn cputime_sampling_is_deterministic_under_a_fixed_seed() {
    let dist = CpuTimeDistribution::punch();
    let a = dist.sample_many(&mut Rng::new(901), 10_000);
    let b = dist.sample_many(&mut Rng::new(901), 10_000);
    assert_eq!(a, b, "same seed must reproduce the identical sample stream");
    let c = dist.sample_many(&mut Rng::new(902), 10_000);
    assert_ne!(a, c, "a different seed must produce a different stream");
}

#[test]
fn cputime_statistics_match_the_punch_shape() {
    let dist = CpuTimeDistribution::punch();
    let samples = dist.sample_many(&mut Rng::new(0x0f19), 200_000);

    // The tail probability is 1.5%; at 200k samples the observed rate
    // lands well within [1.2%, 1.8%] for this fixed seed.
    let tail = samples.iter().filter(|s| s.from_tail).count() as f64 / samples.len() as f64;
    assert!((0.012..=0.018).contains(&tail), "tail fraction {tail}");

    // Body median: e^1.6 ≈ 5 s.  The tail barely moves the median, so the
    // overall median sits in a few-seconds band — the paper's "large
    // numbers of jobs with run-times in the range of a few seconds".
    let mut cpu: Vec<f64> = samples.iter().map(|s| s.cpu_seconds).collect();
    cpu.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let median = cpu[cpu.len() / 2];
    assert!((3.0..=8.0).contains(&median), "median {median}");

    // Every tail draw is a long batch job (Pareto above the 600 s scale);
    // the cap bounds the extreme tail at 3e6 s.
    assert!(samples
        .iter()
        .filter(|s| s.from_tail)
        .all(|s| s.cpu_seconds >= dist.tail_scale && s.cpu_seconds <= dist.cap_seconds));

    // The tail carries most of the *mass* despite being 1.5% of the runs
    // — the defining property of the Figure 9 shape.
    let total: f64 = cpu.iter().sum();
    let tail_mass: f64 = samples
        .iter()
        .filter(|s| s.from_tail)
        .map(|s| s.cpu_seconds)
        .sum();
    assert!(
        tail_mass / total > 0.5,
        "tail mass fraction {}",
        tail_mass / total
    );
}

// --- Hot-spot bursts ----------------------------------------------------

#[test]
fn hotspot_bursts_are_deterministic_and_fill_the_window_uniformly() {
    let class = ClassAssignment::spice_lab(400);
    let a = HotspotBurst::generate(&class, &mut Rng::new(77));
    let b = HotspotBurst::generate(&class, &mut Rng::new(77));
    assert_eq!(a.len(), 400);
    let times = |burst: &HotspotBurst| -> Vec<SimTime> {
        burst.submissions.iter().map(|(t, _, _)| *t).collect()
    };
    assert_eq!(times(&a), times(&b), "same seed, same burst");

    // Sorted, inside the 600 s window, and roughly uniform: the mean of a
    // uniform draw sits near the window midpoint, and both halves of the
    // window get a substantial share of the class.
    let window = 600.0;
    let ts = times(&a);
    assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    assert!(ts.iter().all(|t| t.as_secs_f64() <= window));
    let mean = ts.iter().map(|t| t.as_secs_f64()).sum::<f64>() / ts.len() as f64;
    assert!(
        (window * 0.4..=window * 0.6).contains(&mean),
        "mean arrival {mean}"
    );
    let first_half = ts.iter().filter(|t| t.as_secs_f64() < window / 2.0).count();
    assert!(
        (120..=280).contains(&first_half),
        "first-half count {first_half}"
    );

    // Every student is distinct; every query is the same tool run — the
    // identical specifications that create the hot spot.
    let logins: std::collections::BTreeSet<&str> = a
        .submissions
        .iter()
        .map(|(_, login, _)| login.as_str())
        .collect();
    assert_eq!(logins.len(), 400);
}

// --- Client populations -------------------------------------------------

#[test]
fn closed_loop_populations_jitter_one_start_per_client() {
    // Closed-loop arrivals depend on response times, so the generator
    // plans only the per-client start jitter — one entry per client,
    // all within the 500 µs jitter window, reproducible under the seed.
    let population = ClientPopulation::closed_loop(12, 7);
    assert_eq!(population.total_requests(), 84);
    let arrivals = population.arrival_times(&mut Rng::new(31));
    assert_eq!(arrivals.len(), 12);
    assert!(arrivals.iter().all(|t| t.as_nanos() < 500_000));
    assert_eq!(arrivals, population.arrival_times(&mut Rng::new(31)));
}

#[test]
fn open_populations_approximate_their_poisson_rate() {
    // 30 clients × 50 requests at an aggregate 25/s: the span of the
    // sorted arrivals should sit near 1500/25 = 60 s for this fixed seed.
    let population = ClientPopulation::open(30, 50, 25.0);
    let arrivals = population.arrival_times(&mut Rng::new(0xa3));
    assert_eq!(arrivals.len(), 1500);
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals are sorted"
    );
    let span = arrivals.last().expect("nonempty").as_secs_f64();
    assert!(
        (48.0..=72.0).contains(&span),
        "span {span}s for 1500 arrivals at 25/s"
    );

    // Inter-arrival mean ≈ 1/rate.
    let mean_gap = span / (arrivals.len() - 1) as f64;
    assert!((0.032..=0.048).contains(&mean_gap), "mean gap {mean_gap}s");
}

// --- Trace round-trips --------------------------------------------------

/// Parses the CSV `Trace::to_csv` renders back into records.
fn parse_trace_csv(csv: &str) -> Vec<TraceRecord> {
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("label,submitted_at,response_seconds,examined,succeeded"),
        "header row"
    );
    lines
        .map(|line| {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 5, "row `{line}`");
            TraceRecord {
                label: fields[0].to_string(),
                submitted_at: fields[1].parse().expect("submitted_at"),
                response_seconds: fields[2].parse().expect("response_seconds"),
                examined: fields[3].parse().expect("examined"),
                succeeded: fields[4].parse().expect("succeeded"),
            }
        })
        .collect()
}

#[test]
fn traces_round_trip_through_csv_deterministically() {
    // Build a trace from seeded generator output, twice; the CSVs must be
    // byte-identical, and parsing one back must reproduce every record to
    // the printed precision.
    let build = || {
        let mut rng = Rng::new(0x7ace);
        let dist = CpuTimeDistribution::punch();
        let mut trace = Trace::new();
        for (i, arrival) in ClientPopulation::open(5, 40, 10.0)
            .arrival_times(&mut rng)
            .into_iter()
            .enumerate()
        {
            let run = dist.sample(&mut rng);
            trace.push(TraceRecord {
                submitted_at: arrival.as_secs_f64(),
                response_seconds: (run.cpu_seconds / 1000.0).min(30.0),
                examined: 1 + i % 7,
                succeeded: i % 11 != 0,
                label: "chaos".to_string(),
            });
        }
        trace
    };
    let a = build();
    let b = build();
    assert_eq!(
        a.to_csv(),
        b.to_csv(),
        "seeded trace generation is reproducible"
    );
    assert_eq!(a.len(), 200);

    let parsed = parse_trace_csv(&a.to_csv());
    assert_eq!(parsed.len(), a.len());
    for (original, parsed) in a.records().iter().zip(&parsed) {
        assert_eq!(original.label, parsed.label);
        assert_eq!(original.examined, parsed.examined);
        assert_eq!(original.succeeded, parsed.succeeded);
        assert!((original.submitted_at - parsed.submitted_at).abs() < 1e-6);
        assert!((original.response_seconds - parsed.response_seconds).abs() < 1e-6);
    }

    // The summary statistics survive the round trip at CSV precision.
    let mut reparsed = Trace::new();
    for record in parsed {
        reparsed.push(record);
    }
    assert!((a.mean_response() - reparsed.mean_response()).abs() < 1e-6);
    assert!((a.success_rate() - reparsed.success_rate()).abs() < f64::EPSILON);
}
