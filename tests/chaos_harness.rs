//! The chaos harness acceptance tests.
//!
//! The tentpole guarantees, pinned end to end:
//!
//! 1. A 100+-domain WAN scenario — partition + heal + hotspot stampede —
//!    runs on the simulator with every federation invariant held, and two
//!    same-seed runs produce byte-for-byte identical event logs.
//! 2. A scenario is *data*: the spec a run executes survives a
//!    render/parse round trip and still produces the identical run.
//! 3. The same spec drives both executors: `trio-flap` passes its
//!    invariants on the simulator *and* against a fleet of real daemons.

use actyp_chaos::{by_name, catalog, run_live, run_sim, LiveOptions, Scenario};

#[test]
fn the_wan_partition_stampede_reproduces_byte_for_byte() {
    let scenario = by_name("wan-partition-stampede").expect("catalog scenario");
    assert!(
        scenario.domains >= 100,
        "the acceptance scenario is WAN-scale"
    );

    let first = run_sim(&scenario).expect("scenario runs");
    assert!(
        first.passed(),
        "invariant violations on the acceptance scenario: {:#?}",
        first.violations
    );
    // The scenario actually exercised the machinery it claims to.
    assert!(first.metrics.submitted >= 100, "{:?}", first.metrics);
    assert!(first.metrics.hops > 0, "delegation chains ran");
    assert!(
        first.metrics.gossip_exchanges > 1000,
        "anti-entropy ran continuously"
    );
    assert!(first.metrics.vanished_clients > 0, "the vanish fault fired");
    assert_eq!(
        first.metrics.leases_granted,
        first.metrics.leases_released + first.metrics.leases_reclaimed,
        "every lease ends released or reclaimed"
    );

    let second = run_sim(&scenario).expect("scenario runs again");
    assert_eq!(
        first.log.render(),
        second.log.render(),
        "same seed must produce the identical event log"
    );
    assert_eq!(first.digest(), second.digest());
    assert_eq!(first.violations, second.violations);
}

#[test]
fn every_catalog_scenario_passes_its_invariants_in_simulation() {
    for scenario in catalog() {
        // The WAN giant has its own dedicated test above; keep this sweep
        // quick.
        if scenario.domains > 40 {
            continue;
        }
        let report = run_sim(&scenario).expect("scenario runs");
        assert!(
            report.passed(),
            "{}: invariant violations: {:#?}",
            scenario.name,
            report.violations
        );
        assert!(
            report.metrics.submitted > 0,
            "{} replayed no workload",
            scenario.name
        );
    }
}

#[test]
fn a_scenario_is_data_not_code() {
    // Render the acceptance spec to text, parse it back, and get the
    // byte-identical run out of the round-tripped spec.
    let scenario = by_name("wan-partition-stampede").expect("catalog scenario");
    let reparsed = Scenario::parse(&scenario.render()).expect("rendered spec parses");
    assert_eq!(scenario, reparsed);

    let small = by_name("trio-flap").expect("catalog scenario");
    let small_reparsed = Scenario::parse(&small.render()).expect("rendered spec parses");
    assert_eq!(
        run_sim(&small).expect("runs").digest(),
        run_sim(&small_reparsed).expect("runs").digest(),
        "the round-tripped spec is the same run"
    );
}

#[test]
fn seeds_select_distinct_deterministic_runs() {
    let mut scenario = by_name("trio-flap").expect("catalog scenario");
    let base = run_sim(&scenario).expect("runs");
    scenario.seed ^= 0x5eed;
    let other = run_sim(&scenario).expect("runs");
    assert_ne!(base.digest(), other.digest(), "the seed picks the run");
    let other_again = run_sim(&scenario).expect("runs");
    assert_eq!(other.digest(), other_again.digest());
}

#[test]
fn the_trio_flap_spec_drives_both_executors() {
    // The exact spec text the simulator ran...
    let scenario = by_name("trio-flap").expect("catalog scenario");
    let spec_text = scenario.render();
    let scenario = Scenario::parse(&spec_text).expect("spec parses");

    let sim = run_sim(&scenario).expect("simulated run");
    assert!(sim.passed(), "sim violations: {:#?}", sim.violations);
    assert!(sim.metrics.settled_ok > 0);

    // ...drives a fleet of real daemons, kill + heal included, under the
    // same invariant vocabulary.
    let live = run_live(&scenario, &LiveOptions::in_process(7721)).expect("live fleet runs");
    assert!(
        live.passed(),
        "live violations: {:#?}\nevents:\n{}",
        live.violations,
        live.events.join("\n")
    );
    assert_eq!(
        live.submitted, sim.metrics.submitted,
        "both executors replay the same plan"
    );
    assert!(live.succeeded > 0, "the live fleet granted allocations");
}
