//! Scale tests for the reactor session engine: a daemon's OS thread count
//! must be *independent of its session count*, every ticket must settle
//! under heavy pipelined load (including clients that vanish mid-flight),
//! and the legacy thread-per-session mode plus the `poll(2)` fallback
//! poller must keep serving the identical protocol.
//!
//! Thread counts are read from `/proc/self/status` (`Threads:`); on
//! platforms without procfs the count assertions are skipped while the
//! functional assertions still run.

use std::net::TcpStream;

use actyp_grid::{FleetSpec, SharedDatabase, SyntheticFleet};
use actyp_pipeline::{
    BackendKind, FederationConfig, PipelineBuilder, PollerKind, RemoteBackend, ResourceManager,
    SessionMode, StageAddress,
};
use actyp_proto::{
    read_server_frame, write_frame, ClientFrame, RequestId, ServerFrame, PROTOCOL_VERSION,
};

fn homogeneous_db(arch: &str, machines: usize, seed: u64) -> SharedDatabase {
    SyntheticFleet::new(FleetSpec::homogeneous(machines, arch, 512), seed)
        .generate()
        .into_shared()
}

fn loopback() -> StageAddress {
    StageAddress::new("127.0.0.1", 0)
}

fn active_jobs(db: &SharedDatabase) -> u32 {
    db.read().iter().map(|m| m.dynamic.active_jobs).sum()
}

/// This process's OS thread count, from procfs; `None` off Linux.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|line| line.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Connects a raw protocol client and completes the hello handshake —
/// deliberately *without* a reader thread, so holding hundreds of these
/// adds no threads client-side and every daemon-side thread the test
/// observes is the daemon's own.
fn raw_hello(addr: &StageAddress) -> TcpStream {
    let mut sock = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
    write_frame(
        &mut sock,
        &ClientFrame::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        },
    )
    .unwrap();
    match read_server_frame(&mut sock).unwrap() {
        Some(ServerFrame::HelloAck { .. }) => sock,
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

fn send(sock: &mut TcpStream, frame: &ClientFrame) {
    write_frame(sock, frame).unwrap();
}

fn recv(sock: &mut TcpStream) -> ServerFrame {
    read_server_frame(sock)
        .unwrap()
        .expect("server closed the connection mid-exchange")
}

const SUN_QUERY: &str = "punch.rsrc.arch = sun\n";

/// The acceptance bar from the issue: a daemon holding 200+ idle client
/// sessions *plus two live peer links* runs on a bounded thread count —
/// I/O pool + worker lanes + constant overhead, independent of sessions —
/// and still serves requests.
#[test]
fn two_hundred_idle_sessions_hold_no_extra_threads() {
    let spawn_peer = |domain: &str, seed: u64| {
        PipelineBuilder::new()
            .database(homogeneous_db("hp", 20, seed))
            .serve_federated(
                &loopback(),
                BackendKind::Embedded,
                FederationConfig {
                    domain: domain.to_string(),
                    ttl: 8,
                    peers: Vec::new(),
                    gossip_interval: std::time::Duration::ZERO,
                    ..FederationConfig::default()
                },
            )
            .unwrap()
    };
    let (peer_a, _) = spawn_peer("upc", 1);
    let (peer_b, _) = spawn_peer("cern", 2);
    let (server, _fed) = PipelineBuilder::new()
        .database(homogeneous_db("sun", 400, 3))
        .serve_federated(
            &loopback(),
            BackendKind::Embedded,
            FederationConfig {
                domain: "purdue".to_string(),
                ttl: 8,
                peers: vec![peer_a.local_addr(), peer_b.local_addr()],
                gossip_interval: std::time::Duration::ZERO,
                ..FederationConfig::default()
            },
        )
        .unwrap();
    let addr = server.local_addr();

    // Establish BOTH peer links: a query satisfiable nowhere walks the
    // whole federation, dialing (and pool-syncing with) every peer.
    let warm = RemoteBackend::connect(&addr).unwrap();
    assert!(warm.submit_text_wait("punch.rsrc.arch = cray\n").is_err());

    let before = thread_count();

    // 210 sessions connect, handshake, and go idle.
    let mut idle: Vec<TcpStream> = (0..210).map(|_| raw_hello(&addr)).collect();

    // Bounded: the I/O pool and worker lanes already exist; new sessions
    // must not bring threads of their own.
    if let (Some(before), Some(during)) = (before, thread_count()) {
        assert!(
            during <= before + 2,
            "thread count must not scale with sessions: {before} before, {during} with 210 idle \
             sessions"
        );
    }

    // The daemon still serves — through an idle session, among the crowd.
    let sock = idle.last_mut().unwrap();
    send(
        sock,
        &ClientFrame::Submit {
            corr: RequestId(0),
            query: SUN_QUERY.to_string(),
        },
    );
    let ticket = match recv(sock) {
        ServerFrame::Submitted { ticket, .. } => ticket,
        other => panic!("expected Submitted, got {other:?}"),
    };
    send(
        sock,
        &ClientFrame::Wait {
            corr: RequestId(1),
            ticket,
            deadline_ms: None,
        },
    );
    match recv(sock) {
        ServerFrame::Outcome { outcome, .. } => {
            let allocations = outcome.unwrap();
            send(
                sock,
                &ClientFrame::Release {
                    corr: RequestId(2),
                    allocation: allocations[0].clone(),
                },
            );
        }
        other => panic!("expected Outcome, got {other:?}"),
    }
    match recv(sock) {
        ServerFrame::Released { .. } => {}
        other => panic!("expected Released, got {other:?}"),
    }

    drop(idle);
    warm.halt_daemon().unwrap();
    warm.shutdown().unwrap();
    server.join().unwrap();
    for peer in [peer_a, peer_b] {
        peer.halt();
        peer.join().unwrap();
    }
}

/// 200 clients pipeline two submissions each before redeeming anything,
/// 40 more vanish with tickets in flight, half the redeemed allocations
/// are abandoned unreleased — and after the drain, *every* machine claim
/// is back, with the daemon's thread count never having scaled with load.
#[test]
fn every_ticket_settles_under_two_hundred_pipelined_clients() {
    let db = homogeneous_db("sun", 1500, 4);
    let server = PipelineBuilder::new()
        .database(db.clone())
        .serve(&loopback(), BackendKind::Embedded)
        .unwrap();
    let addr = server.local_addr();
    let before = thread_count();

    // Phase 1: every client pipelines two submissions, nobody redeems yet.
    let mut clients: Vec<TcpStream> = (0..200).map(|_| raw_hello(&addr)).collect();
    for sock in clients.iter_mut() {
        for corr in 0..2u64 {
            send(
                sock,
                &ClientFrame::Submit {
                    corr: RequestId(corr),
                    query: SUN_QUERY.to_string(),
                },
            );
        }
    }

    // 400 submissions in flight across 200 sessions: still no per-session
    // threads.
    if let (Some(before), Some(during)) = (before, thread_count()) {
        assert!(
            during <= before + 4,
            "thread count must not scale with in-flight load: {before} -> {during}"
        );
    }

    // Phase 2: redeem both tickets per client; release the first
    // allocation properly, abandon the second on the session lease.
    for sock in clients.iter_mut() {
        let mut tickets = Vec::new();
        for _ in 0..2 {
            match recv(sock) {
                ServerFrame::Submitted { ticket, .. } => tickets.push(ticket),
                other => panic!("expected Submitted, got {other:?}"),
            }
        }
        for (i, ticket) in tickets.iter().enumerate() {
            send(
                sock,
                &ClientFrame::Wait {
                    corr: RequestId(10 + i as u64),
                    ticket: *ticket,
                    deadline_ms: None,
                },
            );
        }
        let mut allocations = Vec::new();
        for _ in 0..2 {
            match recv(sock) {
                ServerFrame::Outcome { outcome, .. } => allocations.push(outcome.unwrap()),
                other => panic!("expected Outcome, got {other:?}"),
            }
        }
        send(
            sock,
            &ClientFrame::Release {
                corr: RequestId(20),
                allocation: allocations[0][0].clone(),
            },
        );
        match recv(sock) {
            ServerFrame::Released { .. } => {}
            other => panic!("expected Released, got {other:?}"),
        }
    }

    // Phase 3: 40 clients submit and vanish without reading a byte back.
    for _ in 0..40 {
        let mut sock = raw_hello(&addr);
        send(
            &mut sock,
            &ClientFrame::Submit {
                corr: RequestId(0),
                query: SUN_QUERY.to_string(),
            },
        );
        // Dropped unread: the session teardown must settle the ticket.
    }

    drop(clients);
    server.halt();
    server.join().unwrap();
    assert_eq!(
        active_jobs(&db),
        0,
        "every claim from 440 submissions (including the abandoned ones) was handed back"
    );
}

/// A frame larger than one read burst must still cross the reactor: the
/// per-event read cap bounds fairness between sessions, never a frame's
/// size (the protocol allows bodies up to 16 MiB).  A session stuck
/// forever mid-frame — and a hot-looping I/O thread — is the regression.
#[test]
fn frames_larger_than_one_read_burst_complete() {
    let db = homogeneous_db("sun", 100, 6);
    let server = PipelineBuilder::new()
        .database(db)
        .serve(&loopback(), BackendKind::Embedded)
        .unwrap();
    let mut sock = raw_hello(&server.local_addr());
    // ~600 KiB of query text: parse-rejected by the backend, but the
    // frame itself must be received whole and answered.
    let huge = "x".repeat(600 * 1024);
    send(
        &mut sock,
        &ClientFrame::Submit {
            corr: RequestId(0),
            query: huge,
        },
    );
    sock.set_read_timeout(Some(std::time::Duration::from_secs(20)))
        .unwrap();
    match recv(&mut sock) {
        ServerFrame::Error { corr, .. } => assert_eq!(corr, RequestId(0)),
        other => panic!("expected a parse error for the oversized query, got {other:?}"),
    }
    // The session (and the daemon) still serve normally afterwards.
    send(
        &mut sock,
        &ClientFrame::Submit {
            corr: RequestId(1),
            query: SUN_QUERY.to_string(),
        },
    );
    assert!(matches!(recv(&mut sock), ServerFrame::Submitted { .. }));
    drop(sock);
    server.halt();
    server.join().unwrap();
}

/// A connected client that stops reading its replies cannot wedge the
/// drain: once the teardown seals the write queue, the flush grace
/// deadline cuts the stalled session and `join` returns.
#[test]
fn a_client_that_never_reads_cannot_wedge_the_drain() {
    let db = homogeneous_db("sun", 100, 7);
    let server = PipelineBuilder::new()
        .database(db)
        .serve(&loopback(), BackendKind::Embedded)
        .unwrap();
    // Pump enough Stats requests that the replies overflow both socket
    // buffers; never read a byte back.
    let mut sock = raw_hello(&server.local_addr());
    for corr in 0..12_000u64 {
        send(
            &mut sock,
            &ClientFrame::Stats {
                corr: RequestId(corr),
            },
        );
    }
    std::thread::sleep(std::time::Duration::from_millis(200));
    server.halt();
    let start = std::time::Instant::now();
    server.join().unwrap();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "the drain must cut the non-reading client instead of waiting on it forever"
    );
    drop(sock);
}

/// The legacy thread-per-session mode and the portable `poll(2)` poller
/// both keep serving the identical protocol end to end — they are the
/// same server behind different I/O engines.
#[test]
fn legacy_mode_and_poll_fallback_serve_the_same_protocol() {
    for (mode, poller) in [
        (SessionMode::ThreadPerSession, PollerKind::Auto),
        (SessionMode::Reactor, PollerKind::Poll),
    ] {
        let db = homogeneous_db("sun", 100, 5);
        let server = PipelineBuilder::new()
            .database(db.clone())
            .session_mode(mode)
            .poller(poller)
            .serve(&loopback(), BackendKind::Embedded)
            .unwrap();
        let remote = RemoteBackend::connect(&server.local_addr()).unwrap();
        let allocations = remote.submit_text_wait(SUN_QUERY).unwrap();
        assert_eq!(allocations.len(), 1, "{mode}/{poller}");
        remote.release(&allocations[0]).unwrap();
        // An abandoned ticket settles in every mode.
        let _abandoned = remote.submit_text(SUN_QUERY).unwrap();
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
        assert_eq!(active_jobs(&db), 0, "{mode}/{poller}");
    }
}
