//! The benchmark-artifact layer end to end: a quick-scale figure harness
//! run emits a well-formed `BENCH_*.json`, the JSON survives the full
//! write→parse round trip, and the tolerance-band comparison that gates CI
//! passes on a faithful rerun and fails on an injected regression.

use actyp_bench::harness::{
    artifact_from_runs, compare, load_artifact, run_topic, write_artifact, ArtifactKind,
    BenchArtifact, DEFAULT_TOLERANCE, TOPICS,
};
use actyp_bench::{json, Scale};

fn tiny() -> Scale {
    Scale {
        machines: 200,
        requests_per_client: 3,
        client_counts: vec![2, 8],
        pool_counts: vec![2, 8],
        figure9_runs: 5_000,
        seed: 7,
    }
}

#[test]
fn fig4_harness_emits_a_well_formed_artifact() {
    let artifact = run_topic("fig4_pools_lan", &tiny()).expect("fig4 runs");
    assert_eq!(artifact.topic, "fig4_pools_lan");
    assert_eq!(artifact.kind, ArtifactKind::Simulated);
    assert_eq!(artifact.scale, "quick");
    assert_eq!(artifact.x_name, "pools");
    assert_eq!(artifact.file_name(), "BENCH_fig4_pools_lan.json");
    // 2 pool counts × 2 client columns.
    assert_eq!(artifact.points.len(), 4);
    for point in &artifact.points {
        assert!(point.throughput > 0.0, "{point:?}");
        assert!(point.mean > 0.0, "{point:?}");
        assert!(
            point.p50 <= point.p95 && point.p95 <= point.p99,
            "{point:?}"
        );
    }

    // The emitted text is valid JSON with the documented schema fields.
    let text = artifact.to_pretty();
    let value = json::parse(&text).expect("emitted artifact parses as JSON");
    assert_eq!(
        value.get("schema_version").and_then(json::Json::as_f64),
        Some(1.0)
    );
    assert_eq!(
        value.get("topic").and_then(json::Json::as_str),
        Some("fig4_pools_lan")
    );
    assert!(value.get("git_rev").and_then(json::Json::as_str).is_some());
    assert_eq!(
        value
            .get("points")
            .and_then(json::Json::as_arr)
            .map(<[json::Json]>::len),
        Some(4)
    );
}

#[test]
fn artifacts_round_trip_through_disk() {
    let artifact = run_topic("fig9_cputime_dist", &tiny()).expect("fig9 runs");
    let dir = std::env::temp_dir().join(format!("actyp_bench_rt_{}", std::process::id()));
    let path = write_artifact(&dir, &artifact).expect("writes");
    assert!(path.ends_with("BENCH_fig9_cputime_dist.json"));
    let loaded = load_artifact(&dir, "fig9_cputime_dist").expect("loads");
    assert_eq!(loaded, artifact);
    std::fs::remove_dir_all(&dir).ok();

    // A missing topic is a loud error, not an empty artifact.
    let missing = load_artifact(std::path::Path::new("benchmarks"), "fig42");
    assert!(missing.is_err());
}

#[test]
fn rerunning_the_same_simulated_topic_passes_the_gate() {
    let scale = tiny();
    let committed = run_topic("fig7_splitting", &scale).expect("first run");
    let fresh = run_topic("fig7_splitting", &scale).expect("second run");
    let verdict = compare(&committed, &fresh, DEFAULT_TOLERANCE);
    assert!(verdict.passed(), "{:?}", verdict.failures);
    assert_eq!(verdict.compared_points, committed.points.len());

    // The deterministic simulation reproduces the numbers exactly, so even
    // a zero-width band passes.
    let exact = compare(&committed, &fresh, 0.0);
    assert!(exact.passed(), "{:?}", exact.failures);
}

#[test]
fn an_injected_regression_fails_the_gate() {
    let committed = run_topic("fig6_pool_size", &tiny()).expect("runs");
    let mut regressed = committed.clone();
    regressed.points[0].p99 *= 2.0;
    regressed.points[1].throughput *= 0.1;
    let verdict = compare(&committed, &regressed, DEFAULT_TOLERANCE);
    assert_eq!(verdict.failures.len(), 2, "{:?}", verdict.failures);
    assert!(verdict.failures.iter().any(|f| f.contains("p99")));
    assert!(verdict.failures.iter().any(|f| f.contains("throughput")));
}

#[test]
fn figure_runs_and_artifacts_agree_on_the_means() {
    // The CSV series the paper's figures plot and the JSON artifact must
    // come from the same measurements: compare cell by cell.
    let scale = tiny();
    let runs = actyp_bench::fig8_runs(&scale);
    let series = runs.series();
    let artifact = artifact_from_runs("fig8_replication", &scale, actyp_bench::fig8_runs(&scale));
    for point in &artifact.points {
        let from_series = series
            .value(point.x, &point.series)
            .expect("series has the cell");
        assert!(
            (from_series - point.mean).abs() < 1e-12,
            "series {} vs artifact {} at {}={}",
            from_series,
            point.mean,
            series.x_name,
            point.x
        );
    }
}

#[test]
fn committed_artifacts_parse_and_cover_every_topic() {
    // The repo commits one artifact per topic at quick scale; this is the
    // schema gate that keeps them honest without rerunning the sweeps.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks");
    for topic in TOPICS {
        let artifact = load_artifact(&dir, topic)
            .unwrap_or_else(|e| panic!("committed artifact for {topic}: {e}"));
        assert_eq!(artifact.topic, *topic);
        assert_eq!(
            artifact.scale, "quick",
            "{topic} must be committed at quick scale"
        );
        assert!(!artifact.points.is_empty(), "{topic} has no points");
        // Figure topics replay the simulator; everything else times a
        // real daemon over loopback (saturation sweeps, routing).
        let expected_kind = if topic.starts_with("fig") {
            ArtifactKind::Simulated
        } else {
            ArtifactKind::Measured
        };
        assert_eq!(artifact.kind, expected_kind, "{topic}");
    }
}

#[test]
fn corrupted_artifacts_are_rejected_with_context() {
    assert!(BenchArtifact::parse("not json").is_err());
    assert!(BenchArtifact::parse("{}").is_err());
    let err =
        BenchArtifact::parse(r#"{"schema_version": 1, "points": [], "topic": 42}"#).unwrap_err();
    assert!(err.contains("topic"), "{err}");
}
