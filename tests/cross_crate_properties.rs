//! Property-based tests over cross-crate invariants: query round-tripping,
//! pool-name stability, decomposition/reintegration, scheduling validity,
//! allocation/release conservation, and the delegation routing-state
//! invariants (TTL monotonicity, visited-list, termination).

use proptest::prelude::*;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{PipelineBuilder, ResourceManager, RoutingState};
use actyp_query::{parse_query, Constraint, PoolName, Query, QueryKey};

/// Strategy for a valid `rsrc` constraint set.
fn arch_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["sun", "hp", "linux"])
}

fn memory_strategy() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![16u64, 64, 128, 256, 512, 1024])
}

fn manager_names_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::sample::select(vec![0usize, 1, 2, 3, 4, 5, 6, 7]),
        1..8,
    )
    .prop_map(|indices| {
        let mut names: Vec<String> = indices.iter().map(|i| format!("pm-{i}")).collect();
        names.sort();
        names.dedup();
        names
    })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        arch_strategy(),
        memory_strategy(),
        prop::option::of(prop::sample::select(vec!["purdue", "upc", "ufl"])),
        prop::bool::ANY,
    )
        .prop_map(|(arch, memory, domain, add_user)| {
            let mut q = Query::new()
                .with(QueryKey::rsrc("arch"), Constraint::eq(arch))
                .with(QueryKey::rsrc("memory"), Constraint::ge(memory));
            if let Some(domain) = domain {
                q = q.with(QueryKey::rsrc("domain"), Constraint::eq(domain));
            }
            if add_user {
                q = q
                    .with(QueryKey::user("login"), Constraint::eq("prop"))
                    .with(QueryKey::user("accessgroup"), Constraint::eq("ece"));
            }
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rendering a query and re-parsing it yields the same query.
    #[test]
    fn query_display_parse_round_trip(query in query_strategy()) {
        let text = query.to_string();
        let reparsed = parse_query(&text).unwrap();
        prop_assert_eq!(query, reparsed);
    }

    /// Pool names do not depend on the order in which clauses were written.
    #[test]
    fn pool_names_are_order_insensitive(query in query_strategy()) {
        let basic = query.decompose(4).remove(0);
        let mut reversed = basic.clone();
        reversed.clauses.reverse();
        prop_assert_eq!(
            PoolName::from_query(&basic).full(),
            PoolName::from_query(&reversed).full()
        );
    }

    /// Decomposition produces exactly the advertised number of basic queries
    /// and each one is non-composite.
    #[test]
    fn decomposition_size_matches(
        archs in prop::collection::vec(arch_strategy(), 1..4),
        memory in memory_strategy()
    ) {
        let query = Query::new()
            .with_alternatives(
                QueryKey::rsrc("arch"),
                archs.iter().map(|a| Constraint::eq(*a)).collect(),
            )
            .with(QueryKey::rsrc("memory"), Constraint::ge(memory));
        let basics = query.decompose(64);
        prop_assert_eq!(basics.len(), archs.len());
        prop_assert_eq!(basics.len(), query.decomposition_size());
    }

    /// Whatever machine the pipeline selects satisfies every constraint of
    /// the query, and releasing restores the database to its prior state.
    #[test]
    fn allocations_satisfy_constraints_and_release_conserves_state(
        query in query_strategy(),
        seed in 0u64..50
    ) {
        let db = SyntheticFleet::new(FleetSpec::with_machines(150), seed)
            .generate()
            .into_shared();
        let jobs_before: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        let manager = PipelineBuilder::new()
            .database(db.clone())
            .build_embedded()
            .unwrap();
        match manager.submit_wait(&query) {
            Ok(allocations) => {
                {
                    let guard = db.read();
                    for a in &allocations {
                        let machine = guard.get(a.machine).unwrap();
                        let basic = query.decompose(8).remove(0);
                        // The arch constraint may have matched a different
                        // alternative, so only check the numeric bound here.
                        if let Some(min_memory) = basic
                            .value(actyp_query::Section::Rsrc, "memory")
                            .and_then(|v| v.as_num())
                        {
                            let memory = machine
                                .attribute("memory")
                                .and_then(|v| v.as_num())
                                .unwrap_or(0.0);
                            prop_assert!(memory >= min_memory);
                        }
                        prop_assert!(machine.accepting_work());
                    }
                }
                for a in &allocations {
                    prop_assert!(manager.release(a).is_ok());
                }
                let jobs_after: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
                prop_assert_eq!(jobs_before, jobs_after);
            }
            Err(_) => {
                // Failure must not leave partial state behind.
                let jobs_after: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
                prop_assert_eq!(jobs_before, jobs_after);
            }
        }
    }

    /// The signature/identifier split is stable: queries with the same keys
    /// and operators but different values share a signature and differ only
    /// in the identifier.
    #[test]
    fn signature_identifier_split(a in arch_strategy(), b in arch_strategy(), memory in memory_strategy()) {
        let make = |arch: &str| {
            PoolName::from_query(
                &Query::new()
                    .with(QueryKey::rsrc("arch"), Constraint::eq(arch))
                    .with(QueryKey::rsrc("memory"), Constraint::ge(memory))
                    .decompose(1)
                    .remove(0),
            )
        };
        let pa = make(a);
        let pb = make(b);
        prop_assert_eq!(&pa.signature, &pb.signature);
        if a == b {
            prop_assert_eq!(&pa.identifier, &pb.identifier);
        } else {
            prop_assert_ne!(&pa.identifier, &pb.identifier);
        }
    }

    /// The TTL carried with a query strictly decreases on every visit, so a
    /// delegated query can never live longer than its initial TTL.
    #[test]
    fn routing_ttl_strictly_decreases(
        ttl in 1u32..32,
        managers in manager_names_strategy()
    ) {
        let mut routing = RoutingState::new(ttl);
        let mut previous = routing.ttl;
        for manager in &managers {
            if !routing.visit(manager) {
                prop_assert_eq!(routing.ttl, 0, "visit only fails when the TTL is spent");
                break;
            }
            prop_assert!(routing.ttl < previous, "TTL must strictly decrease");
            previous = routing.ttl;
        }
    }

    /// The visited list never records the same pool manager twice, however
    /// often the query returns to it.
    #[test]
    fn routing_visited_list_never_revisits(
        ttl in 1u32..32,
        managers in prop::collection::vec(prop::sample::select(vec!["pm-a", "pm-b", "pm-c"]), 1..16)
    ) {
        let mut routing = RoutingState::new(ttl);
        for manager in &managers {
            if !routing.visit(manager) {
                break;
            }
            prop_assert!(routing.has_visited(manager));
        }
        let mut unique = routing.visited.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(unique.len(), routing.visited.len(), "no duplicates");
    }

    /// Delegation as the pool managers perform it — always pick a manager
    /// that has not yet seen the query, while the routing state stays alive
    /// — terminates within `ttl` hops and visits every manager at most
    /// once.
    #[test]
    fn routing_delegation_terminates_within_ttl(
        ttl in 1u32..16,
        managers in manager_names_strategy()
    ) {
        let mut routing = RoutingState::new(ttl);
        let mut hops = 0u32;
        let mut current = managers[0].clone();
        loop {
            if !routing.visit(&current) {
                break; // TTL expired
            }
            hops += 1;
            prop_assert!(hops <= ttl, "a query cannot outlive its TTL");
            // The delegation rule of the pool-manager stage: next unvisited.
            let next = managers.iter().find(|name| !routing.has_visited(name));
            match next {
                Some(name) if routing.alive() => current = name.clone(),
                _ => break, // every manager seen, or TTL exhausted
            }
        }
        prop_assert!(hops <= ttl);
        prop_assert!(
            routing.visited.len() as u32 <= ttl.min(managers.len() as u32),
            "at most one visit per manager, bounded by the TTL"
        );
    }
}
