//! Integration test: reduced-scale versions of every figure sweep, checking
//! the qualitative shapes the paper reports (the full-scale sweeps live in
//! the `actyp-bench` binaries).

use actyp_bench::{
    ablation_pm_selection, ablation_scheduler, baseline_comparison, fig4_pools_lan, fig5_pools_wan,
    fig6_pool_size, fig7_splitting, fig8_replication, fig9_cputime_dist, Scale,
};

fn scale() -> Scale {
    Scale {
        machines: 320,
        requests_per_client: 4,
        client_counts: vec![4, 16],
        pool_counts: vec![2, 4, 8],
        figure9_runs: 20_000,
        seed: 0xE5,
    }
}

#[test]
fn figure4_response_time_falls_as_pools_increase() {
    let series = fig4_pools_lan(&scale());
    let heavy = "clients=16";
    let at_2 = series.value(2.0, heavy).unwrap();
    let at_8 = series.value(8.0, heavy).unwrap();
    assert!(
        at_8 < at_2,
        "LAN: 8 pools ({at_8:.4}s) must respond faster than 2 pools ({at_2:.4}s)"
    );
}

#[test]
fn figure5_wan_limits_the_benefit_of_more_pools() {
    let s = scale();
    let lan = fig4_pools_lan(&s);
    let wan = fig5_pools_wan(&s);
    let light = "clients=4";
    // The WAN configuration is dominated by link latency…
    assert!(wan.value(8.0, light).unwrap() > lan.value(8.0, light).unwrap());
    // …so the relative improvement from 2 → 8 pools is smaller than on the LAN.
    let lan_gain = lan.value(2.0, light).unwrap() / lan.value(8.0, light).unwrap();
    let wan_gain = wan.value(2.0, light).unwrap() / wan.value(8.0, light).unwrap();
    assert!(
        lan_gain > wan_gain,
        "LAN speedup {lan_gain:.2}x should exceed WAN speedup {wan_gain:.2}x"
    );
}

#[test]
fn figure6_response_time_grows_with_clients_and_pool_size() {
    let series = fig6_pool_size(&scale());
    let columns = series.columns.clone();
    let small = &columns[0];
    let large = &columns[2];
    assert!(series.value(16.0, large).unwrap() > series.value(4.0, large).unwrap());
    assert!(series.value(16.0, large).unwrap() > series.value(16.0, small).unwrap());
}

#[test]
fn figure7_splitting_improves_response_time() {
    let series = fig7_splitting(&scale());
    let whole = series.value(16.0, "1x whole").unwrap();
    let halves = series.value(16.0, "2x halves").unwrap();
    let quarters = series.value(16.0, "4x quarters").unwrap();
    assert!(halves < whole);
    assert!(quarters < halves);
}

#[test]
fn figure8_replication_improves_response_time_under_load() {
    let series = fig8_replication(&scale());
    let one = series.value(16.0, "processes=1").unwrap();
    let two = series.value(16.0, "processes=2").unwrap();
    let four = series.value(16.0, "processes=4").unwrap();
    assert!(two < one);
    assert!(four < two);
}

#[test]
fn figure9_distribution_is_dominated_by_short_runs_with_a_long_tail() {
    let series = fig9_cputime_dist(&scale());
    let short: f64 = series
        .rows
        .iter()
        .filter(|(x, _)| (0.0..100.0).contains(x))
        .map(|(_, ys)| ys[0])
        .sum();
    let overflow = series.rows.iter().find(|(x, _)| *x < 0.0).unwrap().1[0];
    let total: f64 = series.rows.iter().map(|(_, ys)| ys[0]).sum();
    assert!(short / total > 0.8, "short-run mass {short}/{total}");
    assert!(overflow > 0.0, "some runs exceed the plotted range");
}

#[test]
fn ablations_and_baseline_comparison_run_at_reduced_scale() {
    let s = scale();
    let sched = ablation_scheduler(&s);
    assert_eq!(sched.rows[0].1.len(), 5);
    // First-fit examines less of the cache, so under identical load it must
    // not be slower than the full-scan objectives.
    let least_loaded = sched.rows[0].1[0];
    let first_fit = sched.rows[0].1[4];
    assert!(first_fit <= least_loaded * 1.1);

    let pm = ablation_pm_selection(&s);
    assert_eq!(pm.rows[0].1[0], 0.0, "by-key routing never forwards");

    let baseline = baseline_comparison(&s);
    let row = &baseline.rows[0].1;
    assert!(
        row[0] < row[1] && row[0] < row[2],
        "the pipeline must examine fewer machine records than the centralized baselines: {row:?}"
    );
}
