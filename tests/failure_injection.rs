//! Integration test: failure injection — machines going down mid-operation,
//! pool destruction with outstanding allocations, TTL exhaustion, shadow
//! account exhaustion, and monitor-driven recovery.  Backends are driven
//! through the unified [`ResourceManager`] trait; the concrete
//! [`EmbeddedBackend`] handle is kept where a scenario must reach inside
//! the engine (pool destruction).

use actyp_grid::{FleetSpec, MachineState, MonitorConfig, ResourceMonitor, SyntheticFleet};
use actyp_pipeline::api::EmbeddedBackend;
use actyp_pipeline::{AllocationError, PipelineBuilder, ResourceManager};
use actyp_simnet::SimTime;

fn homogeneous(machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::homogeneous(machines, "sun", 256), seed)
        .generate()
        .into_shared()
}

fn embedded(db: actyp_grid::SharedDatabase) -> EmbeddedBackend {
    PipelineBuilder::new()
        .database(db)
        .build_embedded()
        .unwrap()
}

fn sun_text() -> String {
    // A query matching the homogeneous test fleets: the paper's example adds
    // a license constraint that only a subset of machines satisfies, which
    // would conflate "tool not installed" with the failures injected here.
    "punch.rsrc.arch = sun\npunch.user.login = tester\npunch.user.accessgroup = ece\n".to_string()
}

#[test]
fn down_machines_are_never_allocated() {
    let db = homogeneous(30, 1);
    // Take two-thirds of the fleet down before any pool exists.
    {
        let mut guard = db.write();
        let ids: Vec<_> = guard.iter().map(|m| m.id).collect();
        for id in ids.iter().take(20) {
            guard.set_state(*id, MachineState::Down);
        }
    }
    let manager = embedded(db.clone());
    let mut allocations = Vec::new();
    for _ in 0..10 {
        let a = manager
            .submit_text_wait(&sun_text())
            .expect("up machines remain");
        allocations.extend(a);
    }
    let guard = db.read();
    for a in &allocations {
        assert_eq!(guard.get(a.machine).unwrap().state, MachineState::Up);
    }
}

#[test]
fn failures_after_pool_creation_shrink_the_usable_set_gracefully() {
    let db = homogeneous(10, 2);
    let manager = embedded(db.clone());
    // Create the pool with every machine healthy.
    let first = manager.submit_text_wait(&sun_text()).unwrap();
    manager.release(&first[0]).unwrap();

    // Now everything fails.
    {
        let mut guard = db.write();
        let ids: Vec<_> = guard.iter().map(|m| m.id).collect();
        for id in ids {
            guard.set_state(id, MachineState::Down);
        }
    }
    let err = manager.submit_text_wait(&sun_text()).unwrap_err();
    assert_eq!(err, AllocationError::NoneAvailable);

    // Recovery restores service without rebuilding the pool.
    {
        let mut guard = db.write();
        let ids: Vec<_> = guard.iter().map(|m| m.id).collect();
        for id in ids {
            guard.set_state(id, MachineState::Up);
        }
    }
    assert!(manager.submit_text_wait(&sun_text()).is_ok());
    assert_eq!(
        manager.engine().pool_instances(),
        1,
        "the original pool keeps serving"
    );
}

#[test]
fn monitor_driven_failures_and_recoveries_are_respected() {
    let db = homogeneous(40, 3);
    let manager = embedded(db.clone());
    let mut monitor = ResourceMonitor::new(
        MonitorConfig {
            failure_probability: 0.4,
            recovery_probability: 0.0,
            ..MonitorConfig::default()
        },
        7,
    );
    for step in 0..6 {
        let mut guard = db.write();
        monitor.sweep(&mut guard, SimTime::from_nanos(step));
    }
    let (up, down, _) = db.read().state_counts();
    assert!(down > 0, "the monitor must have taken machines down");

    // Allocations keep landing on the surviving machines only.
    if up > 0 {
        for _ in 0..up.min(5) {
            let a = manager
                .submit_text_wait(&sun_text())
                .expect("survivors can serve");
            assert_eq!(db.read().get(a[0].machine).unwrap().state, MachineState::Up);
        }
    }
}

#[test]
fn shadow_account_exhaustion_is_reported() {
    let db = homogeneous(1, 4);
    {
        let mut guard = db.write();
        let id = guard.iter().next().unwrap().id;
        let machine = guard.get_mut(id).unwrap();
        machine.shadow_accounts = actyp_grid::ShadowAccountPool::with_accounts(6000, 1);
        machine.max_allowed_load = 100.0; // only shadow accounts limit us
        machine.num_cpus = 64;
    }
    let manager = embedded(db);
    let first = manager
        .submit_text_wait(&sun_text())
        .expect("one account available");
    let err = manager.submit_text_wait(&sun_text()).unwrap_err();
    assert_eq!(err, AllocationError::ShadowAccountsExhausted);
    manager.release(&first[0]).unwrap();
    assert!(
        manager.submit_text_wait(&sun_text()).is_ok(),
        "release frees the account"
    );
}

#[test]
fn destroying_a_pool_with_outstanding_allocations_still_allows_release() {
    let db = homogeneous(20, 5);
    let manager = embedded(db);
    let allocation = manager.submit_text_wait(&sun_text()).unwrap().remove(0);
    let engine = manager.engine();
    let pm_names = engine.pool_manager_names();
    let destroyed = engine
        .with_pool_manager(&pm_names[0], |pm| {
            pm.destroy_pool(&allocation.pool, allocation.pool_instance)
        })
        .unwrap();
    assert!(destroyed);
    // The directory entry is gone, but the fallback release path (scanning
    // the hosting managers) must not leak the machine… in this case the pool
    // itself is gone, so release reports the allocation as unknown rather
    // than corrupting state.
    let result = manager.release(&allocation);
    assert!(matches!(result, Err(AllocationError::UnknownAllocation)));
    // New queries recreate the pool on demand.
    assert!(manager.submit_text_wait(&sun_text()).is_ok());
}

#[test]
fn ttl_exhaustion_is_reported_when_no_domain_can_serve() {
    // Two domains, neither of which has hp machines.
    let manager = PipelineBuilder::new()
        .federated(vec![
            ("purdue".to_string(), homogeneous(10, 6)),
            ("upc".to_string(), homogeneous(10, 7)),
        ])
        .ttl(1)
        .build_embedded()
        .unwrap();
    let err = manager
        .submit_text_wait("punch.rsrc.arch = hp\n")
        .unwrap_err();
    // With TTL 1 the query dies after the first manager; with a larger TTL
    // it would exhaust the visited list and report NoSuchResources.
    assert!(
        matches!(
            err,
            AllocationError::NoSuchResources | AllocationError::TtlExpired
        ),
        "got {err:?}"
    );
    let err2 = PipelineBuilder::new()
        .federated(vec![
            ("purdue".to_string(), homogeneous(10, 8)),
            ("upc".to_string(), homogeneous(10, 9)),
        ])
        .build_embedded()
        .unwrap()
        .submit_text_wait("punch.rsrc.arch = hp\n")
        .unwrap_err();
    assert_eq!(err2, AllocationError::NoSuchResources);
}
