//! Integration tests for the wire deployment: one client-code body runs
//! unchanged against all **five** backends — embedded, live, the two
//! centralized baselines, and the remote backend speaking the `actyp-proto`
//! protocol to a loopback `ypd` — and the remote backend demonstrably
//! pipelines tickets across the network hop.

use std::sync::Arc;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{
    AllocationError, BackendKind, PipelineBuilder, ResourceManager, ServerHandle, StageAddress,
};
use actyp_query::Query;

fn fleet(machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
        .generate()
        .into_shared()
}

fn builder(machines: usize, seed: u64) -> PipelineBuilder {
    PipelineBuilder::new().database(fleet(machines, seed))
}

fn loopback() -> StageAddress {
    StageAddress::new("127.0.0.1", 0)
}

/// Starts a loopback `ypd` hosting the live pipeline and connects a remote
/// manager to it.
fn remote_pair(machines: usize, seed: u64) -> (ServerHandle, Box<dyn ResourceManager>) {
    let server = builder(machines, seed)
        .query_managers(2)
        .serve(&loopback(), BackendKind::Live)
        .expect("loopback ypd starts");
    let remote = PipelineBuilder::remote(&server.local_addr()).expect("connect");
    (server, Box::new(remote))
}

/// THE single test body: a full client lifecycle — single submit, batch
/// submit with tickets held concurrently, poll-until-ready, release,
/// stats and error handling — written once against the trait and reused
/// verbatim for every architecture.
fn exercise_manager(manager: &dyn ResourceManager, label: &str) {
    let query = Query::paper_example();

    // Single submit → wait → release.
    let ticket = manager.submit(query.clone()).expect(label);
    let allocations = manager.wait(ticket).expect(label);
    assert_eq!(allocations.len(), 1, "{label}");
    assert!(allocations[0].machine_name.contains("sun"), "{label}");
    manager.release(&allocations[0]).expect(label);

    // A batch of tickets, all issued before any redemption.
    let tickets = manager.submit_batch(vec![query.clone(); 4]).expect(label);
    assert_eq!(tickets.len(), 4, "{label}");
    for ticket in tickets {
        let allocations = manager.wait(ticket).expect(label);
        manager.release(&allocations[0]).expect(label);
    }

    // Poll until resolved (eager backends resolve instantly, pipelined ones
    // eventually).
    let ticket = manager.submit(query).expect(label);
    let outcome = loop {
        if let Some(outcome) = manager.try_poll(ticket) {
            break outcome;
        }
        std::thread::yield_now();
    };
    let allocations = outcome.expect(label);
    manager.release(&allocations[0]).expect(label);

    // Tickets redeem exactly once.
    assert_eq!(
        manager.wait(ticket).unwrap_err(),
        AllocationError::UnknownTicket,
        "{label}"
    );

    // Impossible queries fail with a typed error, not a hang.
    let err = manager
        .submit_text_wait("punch.rsrc.arch = cray\n")
        .unwrap_err();
    assert!(
        matches!(
            err,
            AllocationError::NoSuchResources | AllocationError::NoneAvailable
        ),
        "{label}: {err:?}"
    );

    // The unified counters agree with what the body just did.
    let stats = manager.stats();
    assert_eq!(stats.requests, 7, "{label}");
    assert_eq!(stats.allocations, 6, "{label}");
    assert_eq!(stats.releases, 6, "{label}");
    assert_eq!(stats.failures, 1, "{label}");
    assert_eq!(stats.in_flight, 0, "{label}");
    assert!(stats.records_examined > 0, "{label}");
}

#[test]
fn one_test_body_passes_on_all_five_backends() {
    // The four in-process architectures...
    for kind in BackendKind::ALL {
        let manager = builder(400, 11).build(kind).expect("build");
        exercise_manager(manager.as_ref(), &kind.to_string());
        manager.shutdown().expect("shutdown");
    }
    // ...and the fifth: the same body across a real TCP hop.
    let (server, remote) = remote_pair(400, 11);
    exercise_manager(remote.as_ref(), "remote");
    server.halt();
    remote.shutdown().expect("session shutdown");
    server.join().expect("daemon drains");
}

#[test]
fn remote_backend_pipelines_tickets_across_the_wire() {
    // N tickets submitted on ONE connection before the first wait; the
    // server-side stats must show them simultaneously in flight across the
    // live pipeline's stages — the paper's pipelining spanning a real
    // network hop.
    const N: usize = 6;
    let (server, remote) = remote_pair(600, 12);
    let query = Query::paper_example();

    let tickets: Vec<_> = (0..N)
        .map(|_| remote.submit(query.clone()).unwrap())
        .collect();
    let in_flight = remote.stats().in_flight;
    assert!(
        in_flight >= 2,
        "expected overlapped occupancy server-side, saw {in_flight}"
    );

    for ticket in tickets {
        let allocations = remote.wait(ticket).unwrap();
        remote.release(&allocations[0]).unwrap();
    }
    let stats = remote.stats();
    assert_eq!(stats.allocations, N as u64);
    assert_eq!(stats.releases, N as u64);
    assert_eq!(stats.in_flight, 0);

    server.halt();
    remote.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn concurrent_client_threads_share_one_remote_connection() {
    let (server, remote) = remote_pair(600, 13);
    let remote: Arc<dyn ResourceManager> = Arc::from(remote);
    let mut joins = Vec::new();
    for _ in 0..4 {
        let remote = remote.clone();
        joins.push(std::thread::spawn(move || {
            for _ in 0..5 {
                let allocations = remote.submit_wait(&Query::paper_example()).unwrap();
                remote.release(&allocations[0]).unwrap();
            }
        }));
    }
    for join in joins {
        join.join().unwrap();
    }
    let stats = remote.stats();
    assert_eq!(stats.allocations, 20);
    assert_eq!(stats.releases, 20);

    server.halt();
    remote.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn two_remote_clients_hit_the_same_daemon() {
    let server = builder(500, 14)
        .serve(&loopback(), BackendKind::Live)
        .unwrap();
    let addr = server.local_addr();
    let first = PipelineBuilder::remote(&addr).unwrap();
    let second = PipelineBuilder::remote(&addr).unwrap();

    let t1 = first.submit(Query::paper_example()).unwrap();
    let t2 = second.submit(Query::paper_example()).unwrap();
    // The client-side brand check rejects a foreign ticket without a round
    // trip; server-side session scoping is covered separately by a raw
    // protocol probe in actyp_pipeline::remote's unit tests.
    assert_eq!(second.wait(t1).unwrap_err(), AllocationError::UnknownTicket);
    let a1 = first.wait(t1).unwrap();
    let a2 = second.wait(t2).unwrap();
    first.release(&a1[0]).unwrap();
    second.release(&a2[0]).unwrap();
    // Both sessions observe the same backend counters.
    assert_eq!(first.stats().allocations, 2);
    assert_eq!(second.stats().releases, 2);

    first.halt_daemon().unwrap();
    first.shutdown().unwrap();
    second.shutdown().unwrap();
    server.join().unwrap();
}

#[test]
fn over_window_batches_backpressure_with_a_deadline_on_a_plain_daemon() {
    // Both daemon modes (plain here, federated in tests/federation.rs)
    // must apply the same deadline-bounded backpressure to an over-window
    // SubmitBatch instead of rejecting it outright.
    let deadline = std::time::Duration::from_millis(150);
    let server = builder(300, 41)
        .window(2)
        .batch_deadline(deadline)
        .serve(&loopback(), BackendKind::Live)
        .expect("loopback ypd starts");
    let remote = PipelineBuilder::remote(&server.local_addr()).expect("connect");

    // Over-window batch, no concurrent redeemer: the daemon holds the
    // batch until the deadline, settles what it issued, and reports the
    // window state instead of rejecting up front or deadlocking.
    let started = std::time::Instant::now();
    let err = remote
        .submit_batch(vec![Query::paper_example(); 4])
        .unwrap_err();
    match &err {
        AllocationError::Internal(message) => {
            assert!(
                message.contains("backpressure"),
                "unexpected error: {message}"
            )
        }
        other => panic!("expected deadline-bounded backpressure failure, got {other:?}"),
    }
    assert!(
        started.elapsed() >= deadline,
        "the daemon must backpressure until the deadline, not reject outright"
    );

    // Nothing leaked server-side: a batch that fits still settles.
    let tickets = remote
        .submit_batch(vec![Query::paper_example(); 2])
        .unwrap();
    for ticket in tickets {
        let allocations = remote.wait(ticket).unwrap();
        remote.release(&allocations[0]).unwrap();
    }

    server.halt();
    remote.shutdown().unwrap();
    server.join().expect("daemon drains");
}
