//! Integration test: the ActYP pipeline and the centralized baselines make
//! equivalent *placement* decisions on the same fleet and query language,
//! while differing in the amount of work per decision — the architectural
//! contrast Section 8 of the paper draws qualitatively.  All three
//! architectures are driven through the unified [`ResourceManager`] trait.

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{BackendKind, PipelineBuilder};
use actyp_query::{Constraint, Query, QueryKey};

fn fleet(machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
        .generate()
        .into_shared()
}

fn sun_query() -> Query {
    Query::new()
        .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
        .with(QueryKey::rsrc("memory"), Constraint::ge(128u64))
        .with(QueryKey::user("accessgroup"), Constraint::eq("ece"))
}

const COMPARED: [BackendKind; 3] = [
    BackendKind::Embedded,
    BackendKind::CentralQueue,
    BackendKind::Matchmaker,
];

#[test]
fn all_three_architectures_satisfy_the_same_constraints() {
    let db = fleet(300, 1);
    let query = sun_query();

    for kind in COMPARED {
        let manager = PipelineBuilder::new()
            .database(db.clone())
            .build(kind)
            .unwrap();
        let machine = manager.submit_wait(&query).unwrap().remove(0).machine;
        let guard = db.read();
        let record = guard.get(machine).unwrap();
        assert!(record.attribute("arch").unwrap().contains("sun"), "{kind}");
        assert!(
            record.attribute("memory").unwrap().as_num().unwrap() >= 128.0,
            "{kind}"
        );
    }
}

#[test]
fn pipeline_amortises_matching_work_through_pools() {
    let queries = 50;
    let mut examined = std::collections::HashMap::new();

    for kind in COMPARED {
        // A fresh fleet per backend so load states are identical.
        let manager = PipelineBuilder::new()
            .database(fleet(1_000, 2))
            .build(kind)
            .unwrap();
        for _ in 0..queries {
            let allocations = manager.submit_wait(&sun_query()).unwrap();
            for a in &allocations {
                manager.release(a).unwrap();
            }
        }
        examined.insert(kind, manager.stats().records_examined);
        manager.shutdown().unwrap();
    }

    // Pools only scan the machines that satisfy the aggregation criteria;
    // the centralized designs scan the full table for every decision.
    let pipeline = examined[&BackendKind::Embedded];
    let central = examined[&BackendKind::CentralQueue];
    let matchmaker = examined[&BackendKind::Matchmaker];
    assert!(
        pipeline < central,
        "pipeline examined {pipeline}, central scanned {central}"
    );
    assert!(pipeline < matchmaker);
    assert_eq!(central, matchmaker);
}

#[test]
fn baselines_and_pipeline_agree_when_nothing_matches() {
    let db = fleet(100, 3);
    let impossible = Query::new().with(QueryKey::rsrc("arch"), Constraint::eq("cray"));

    for kind in COMPARED {
        let manager = PipelineBuilder::new()
            .database(db.clone())
            .build(kind)
            .unwrap();
        assert!(manager.submit_wait(&impossible).is_err(), "{kind}");
        let stats = manager.stats();
        assert_eq!(stats.failures, 1, "{kind}");
        assert_eq!(stats.allocations, 0, "{kind}");
    }
}
