//! Integration test: the ActYP pipeline and the centralized baselines make
//! equivalent *placement* decisions on the same fleet and query language,
//! while differing in the amount of work per decision — the architectural
//! contrast Section 8 of the paper draws qualitatively.

use actyp_baselines::{CentralScheduler, Matchmaker, SubmitOutcome};
use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{Engine, PipelineConfig};
use actyp_query::{Constraint, Query, QueryKey};

fn fleet(machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
        .generate()
        .into_shared()
}

fn sun_query() -> Query {
    Query::new()
        .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
        .with(QueryKey::rsrc("memory"), Constraint::ge(128u64))
        .with(QueryKey::user("accessgroup"), Constraint::eq("ece"))
}

#[test]
fn all_three_architectures_satisfy_the_same_constraints() {
    let db = fleet(300, 1);
    let query = sun_query();
    let basic = query.decompose(1).remove(0);

    let mut engine = Engine::new(PipelineConfig::default(), db.clone());
    let pipeline_machine = engine.submit(&query).unwrap().remove(0).machine;

    let mut central = CentralScheduler::new(db.clone());
    let central_machine = match central.submit(basic.clone()) {
        SubmitOutcome::Dispatched { machine, .. } => machine,
        other => panic!("expected dispatch, got {other:?}"),
    };

    let mut matchmaker = Matchmaker::new(db.clone());
    let mm_machine = matchmaker.negotiate(&basic).machine.unwrap();

    let guard = db.read();
    for machine in [pipeline_machine, central_machine, mm_machine] {
        let record = guard.get(machine).unwrap();
        assert!(record.attribute("arch").unwrap().contains("sun"));
        assert!(record.attribute("memory").unwrap().as_num().unwrap() >= 128.0);
    }
}

#[test]
fn pipeline_amortises_matching_work_through_pools() {
    let db = fleet(1_000, 2);
    let query = sun_query();
    let basic = query.decompose(1).remove(0);
    let queries = 50;

    let mut engine = Engine::new(PipelineConfig::default(), db.clone());
    let mut pipeline_examined = 0usize;
    for _ in 0..queries {
        let allocations = engine.submit(&query).unwrap();
        pipeline_examined += allocations[0].examined;
        engine.release(&allocations[0]).unwrap();
    }

    let mut central = CentralScheduler::new(db.clone());
    for _ in 0..queries {
        if let SubmitOutcome::Dispatched { machine, .. } = central.submit(basic.clone()) {
            central.finish(machine);
        }
    }

    let mut matchmaker = Matchmaker::new(db);
    for _ in 0..queries {
        if let Some(machine) = matchmaker.negotiate(&basic).machine {
            matchmaker.release(machine);
        }
    }

    // Pools only scan the machines that satisfy the aggregation criteria;
    // the centralized designs scan the full table for every decision.
    assert!(
        (pipeline_examined as u64) < central.scanned_total(),
        "pipeline examined {pipeline_examined}, central scanned {}",
        central.scanned_total()
    );
    assert!((pipeline_examined as u64) < matchmaker.evaluated_total());
    assert_eq!(central.scanned_total(), matchmaker.evaluated_total());
}

#[test]
fn baselines_and_pipeline_agree_when_nothing_matches() {
    let db = fleet(100, 3);
    let impossible = Query::new().with(QueryKey::rsrc("arch"), Constraint::eq("cray"));
    let basic = impossible.decompose(1).remove(0);

    let mut engine = Engine::new(PipelineConfig::default(), db.clone());
    assert!(engine.submit(&impossible).is_err());

    let mut central = CentralScheduler::new(db.clone());
    assert!(matches!(
        central.submit(basic.clone()),
        SubmitOutcome::Queued(_)
    ));

    let mut matchmaker = Matchmaker::new(db);
    assert!(matchmaker.negotiate(&basic).machine.is_none());
}
