//! Integration test: the full PUNCH flow (desktop → application management →
//! ActYP pipeline → allocation → release) and the live threaded deployment,
//! exercised across crates exactly as the examples do.

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{LivePipeline, PipelineConfig, PoolManagerSelection};
use actyp_punch::{NetworkDesktop, RunError};
use actyp_query::Query;

fn fleet(machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
        .generate()
        .into_shared()
}

#[test]
fn desktop_runs_complete_through_the_whole_stack() {
    let mut desktop = NetworkDesktop::new(fleet(400, 1), PipelineConfig::default());
    let mut handles = Vec::new();
    for command in [
        "tsuprem4 gridpoints=2500 steps=400 domain=purdue",
        "spice nodes=800 timesteps=5000",
        "minimos devicesize=2 accuracy=0.8",
    ] {
        handles.push(desktop.start_run("kapadia", command).expect("run starts"));
    }
    assert_eq!(desktop.active_runs(), 3);
    // Each run holds an application mount and a data mount.
    assert_eq!(desktop.mounts().active(), 6);

    for handle in handles {
        let outcome = desktop.complete_run(handle, 100.0).expect("run completes");
        assert!(!outcome.machine_name.is_empty());
    }
    assert_eq!(desktop.active_runs(), 0);
    assert_eq!(desktop.mounts().active(), 0);
    // Every allocation was released back to the pipeline.
    assert_eq!(
        desktop.engine().stats().allocations,
        desktop.engine().stats().releases
    );
}

#[test]
fn authorization_is_enforced_before_any_resources_are_touched() {
    let mut desktop = NetworkDesktop::new(fleet(100, 2), PipelineConfig::default());
    let err = desktop
        .start_run("guest", "minimos devicesize=1")
        .unwrap_err();
    assert!(matches!(err, RunError::Authorization(_)));
    assert_eq!(desktop.engine().stats().requests, 0);
    assert_eq!(desktop.mounts().active(), 0);
}

#[test]
fn live_pipeline_handles_a_burst_of_concurrent_clients() {
    let config = PipelineConfig {
        query_managers: 2,
        pool_managers: 2,
        pool_manager_selection: PoolManagerSelection::RoundRobin,
        ..PipelineConfig::default()
    };
    let pipeline = std::sync::Arc::new(LivePipeline::start(config, fleet(600, 3)));
    let text = Query::paper_example().to_string();

    let mut joins = Vec::new();
    for _ in 0..8 {
        let pipeline = pipeline.clone();
        let text = text.clone();
        joins.push(std::thread::spawn(move || {
            let mut count = 0;
            for _ in 0..10 {
                let allocations = pipeline.submit_text(&text).expect("allocation succeeds");
                assert_eq!(allocations.len(), 1);
                assert!(allocations[0].machine_name.contains("sun"));
                pipeline.release(&allocations[0]).expect("release succeeds");
                count += 1;
            }
            count
        }));
    }
    let total: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert_eq!(total, 80);

    // Temporal locality: the 80 identical queries created exactly one pool.
    assert_eq!(pipeline.directory().read().instance_count(), 1);
}

#[test]
fn live_and_embedded_deployments_agree_on_semantics() {
    let db = fleet(300, 4);
    let mut engine = actyp_pipeline::Engine::new(PipelineConfig::default(), db.clone());
    let live = LivePipeline::start(PipelineConfig::default(), db);

    let text = "punch.rsrc.arch = hp\npunch.rsrc.memory = >=256\n";
    let from_engine = engine.submit_text(text).expect("embedded allocation");
    let from_live = live.submit_text(text).expect("live allocation");

    // Same pool name (aggregation criteria), both hp machines with >=256 MB.
    assert_eq!(from_engine[0].pool, from_live[0].pool);
    for allocation in [&from_engine[0], &from_live[0]] {
        assert!(allocation.machine_name.contains("hp"));
    }
    engine.release(&from_engine[0]).unwrap();
    live.release(&from_live[0]).unwrap();
    live.shutdown();
}
