//! Integration test: the full PUNCH flow (desktop → application management →
//! ActYP pipeline → allocation → release) and the live threaded deployment.
//! Every backend is driven through the unified [`ResourceManager`] surface,
//! exactly as the examples do.

use std::sync::Arc;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{
    BackendKind, PipelineBuilder, PipelineConfig, PoolManagerSelection, ResourceManager,
};
use actyp_punch::{NetworkDesktop, RunError};
use actyp_query::Query;

fn fleet(machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
        .generate()
        .into_shared()
}

#[test]
fn desktop_runs_complete_through_the_whole_stack() {
    let mut desktop = NetworkDesktop::new(fleet(400, 1), PipelineConfig::default());
    let mut handles = Vec::new();
    for command in [
        "tsuprem4 gridpoints=2500 steps=400 domain=purdue",
        "spice nodes=800 timesteps=5000",
        "minimos devicesize=2 accuracy=0.8",
    ] {
        handles.push(desktop.start_run("kapadia", command).expect("run starts"));
    }
    assert_eq!(desktop.active_runs(), 3);
    // Each run holds an application mount and a data mount.
    assert_eq!(desktop.mounts().active(), 6);

    for handle in handles {
        let outcome = desktop.complete_run(handle, 100.0).expect("run completes");
        assert!(!outcome.machine_name.is_empty());
    }
    assert_eq!(desktop.active_runs(), 0);
    assert_eq!(desktop.mounts().active(), 0);
    // Every allocation was released back to the pipeline.
    assert_eq!(
        desktop.manager().stats().allocations,
        desktop.manager().stats().releases
    );
}

#[test]
fn authorization_is_enforced_before_any_resources_are_touched() {
    let mut desktop = NetworkDesktop::new(fleet(100, 2), PipelineConfig::default());
    let err = desktop
        .start_run("guest", "minimos devicesize=1")
        .unwrap_err();
    assert!(matches!(err, RunError::Authorization(_)));
    assert_eq!(desktop.manager().stats().requests, 0);
    assert_eq!(desktop.mounts().active(), 0);
}

#[test]
fn live_pipeline_handles_a_burst_of_concurrent_clients() {
    let pipeline = Arc::new(
        PipelineBuilder::new()
            .database(fleet(600, 3))
            .query_managers(2)
            .pool_managers(2)
            .pool_manager_selection(PoolManagerSelection::RoundRobin)
            .build_live()
            .unwrap(),
    );
    let text = Query::paper_example().to_string();

    let mut joins = Vec::new();
    for _ in 0..8 {
        let pipeline = pipeline.clone();
        let text = text.clone();
        joins.push(std::thread::spawn(move || {
            let mut count = 0;
            for _ in 0..10 {
                let allocations = pipeline
                    .submit_text_wait(&text)
                    .expect("allocation succeeds");
                assert_eq!(allocations.len(), 1);
                assert!(allocations[0].machine_name.contains("sun"));
                pipeline.release(&allocations[0]).expect("release succeeds");
                count += 1;
            }
            count
        }));
    }
    let total: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert_eq!(total, 80);
    assert_eq!(pipeline.stats().allocations, 80);

    // Temporal locality: the 80 identical queries created exactly one pool.
    assert_eq!(pipeline.pipeline().directory().instance_count(), 1);
    pipeline.shutdown().unwrap();
}

#[test]
fn single_client_keeps_several_tickets_in_flight() {
    // The pipelining the paper measures, from one client thread: tickets
    // are submitted before any earlier ticket is waited on, so the queries
    // overlap across the query-manager, pool-manager and pool stages.
    let pipeline = PipelineBuilder::new()
        .database(fleet(400, 5))
        .query_managers(2)
        .window(8)
        .build_live()
        .unwrap();
    let query = Query::paper_example();

    let first = pipeline.submit(query.clone()).unwrap();
    let second = pipeline.submit(query.clone()).unwrap();
    let third = pipeline.submit(query).unwrap();
    // Three tickets submitted, none redeemed: all three are in flight.
    assert!(pipeline.stats().in_flight >= 2);

    for ticket in [first, second, third] {
        let allocations = pipeline.wait(ticket).unwrap();
        assert_eq!(allocations.len(), 1);
        pipeline.release(&allocations[0]).unwrap();
    }
    let stats = pipeline.stats();
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.allocations, 3);
    assert_eq!(stats.releases, 3);
    pipeline.shutdown().unwrap();
}

#[test]
fn live_and_embedded_deployments_agree_on_semantics() {
    let db = fleet(300, 4);
    let text = "punch.rsrc.arch = hp\npunch.rsrc.memory = >=256\n";
    let mut pools = Vec::new();
    for kind in [BackendKind::Embedded, BackendKind::Live] {
        let manager = PipelineBuilder::new()
            .database(db.clone())
            .build(kind)
            .unwrap();
        let allocations = manager.submit_text_wait(text).expect("allocation succeeds");
        // Both deployments aggregate by the same criteria (same pool name)
        // and select an hp machine with >=256 MB.
        assert!(allocations[0].machine_name.contains("hp"));
        pools.push(allocations[0].pool.clone());
        manager.release(&allocations[0]).unwrap();
        manager.shutdown().unwrap();
    }
    assert_eq!(pools[0], pools[1]);
}
