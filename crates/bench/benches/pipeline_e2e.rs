//! End-to-end benchmarks: one embedded-pipeline scheduling decision, one
//! live (threaded) pipeline round trip, and one small simulated experiment
//! of each figure family.  These are the "does the whole system stay fast"
//! guards; the figure binaries in `src/bin/` are the full sweeps.  The
//! deployments are driven through the unified `ResourceManager` surface.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use actyp_bench::{baseline_comparison, fig4_pools_lan, fig7_splitting, fig8_replication, Scale};
use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{BackendKind, PipelineBuilder};
use actyp_query::Query;

fn bench_engine_round_trip(c: &mut Criterion) {
    let db = SyntheticFleet::new(FleetSpec::with_machines(800), 5)
        .generate()
        .into_shared();
    let manager = PipelineBuilder::new()
        .database(db)
        .build(BackendKind::Embedded)
        .unwrap();
    let query = Query::paper_example();
    // Warm up so the pool exists (the steady-state cost is what matters).
    let warm = manager.submit_wait(&query).unwrap();
    for a in &warm {
        manager.release(a).unwrap();
    }
    c.bench_function("e2e/engine_submit_release_800", |b| {
        b.iter(|| {
            let allocations = manager.submit_wait(black_box(&query)).unwrap();
            for a in &allocations {
                manager.release(a).unwrap();
            }
        })
    });
}

fn bench_live_round_trip(c: &mut Criterion) {
    let db = SyntheticFleet::new(FleetSpec::with_machines(800), 6)
        .generate()
        .into_shared();
    let pipeline = PipelineBuilder::new()
        .database(db)
        .query_managers(2)
        .pool_managers(2)
        .build(BackendKind::Live)
        .unwrap();
    let query = Query::paper_example();
    let warm = pipeline.submit_wait(&query).unwrap();
    for a in &warm {
        pipeline.release(a).unwrap();
    }
    c.bench_function("e2e/live_submit_release_800", |b| {
        b.iter(|| {
            let allocations = pipeline.submit_wait(black_box(&query)).unwrap();
            for a in &allocations {
                pipeline.release(a).unwrap();
            }
        })
    });
    pipeline.shutdown().unwrap();
}

fn bench_figure_sweeps_quick(c: &mut Criterion) {
    let scale = Scale {
        machines: 400,
        requests_per_client: 4,
        client_counts: vec![8],
        pool_counts: vec![2, 8],
        figure9_runs: 5_000,
        seed: 9,
    };
    c.bench_function("figures/fig4_quick_sweep", |b| {
        b.iter(|| fig4_pools_lan(black_box(&scale)))
    });
    c.bench_function("figures/fig7_quick_sweep", |b| {
        b.iter(|| fig7_splitting(black_box(&scale)))
    });
    c.bench_function("figures/fig8_quick_sweep", |b| {
        b.iter(|| fig8_replication(black_box(&scale)))
    });
    c.bench_function("figures/baseline_comparison_quick", |b| {
        b.iter(|| baseline_comparison(black_box(&scale)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = e2e;
    config = config();
    targets = bench_engine_round_trip, bench_live_round_trip, bench_figure_sweeps_quick
}
criterion_main!(e2e);
