//! `backend_submit`: the same submit → wait → release workload swept across
//! all five backends — embedded engine, threaded live pipeline, centralized
//! multi-queue scheduler, centralized matchmaker, and the remote backend
//! talking to a loopback `ypd` daemon — through the unified
//! `ResourceManager` API.  Because the client code is identical, the
//! numbers isolate the architectural cost of each deployment (for the
//! remote backend: the wire hop, framing and correlation); pipelined
//! variants show what ticket-based pipelining buys over blocking round
//! trips, in-process and across the socket.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{BackendKind, PipelineBuilder, ResourceManager, StageAddress};
use actyp_query::Query;

fn fleet(machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
        .generate()
        .into_shared()
}

/// One blocking round trip per iteration, identical client code on every
/// backend.
fn bench_backend_round_trip(c: &mut Criterion) {
    let query = Query::paper_example();
    for kind in BackendKind::ALL {
        let manager = PipelineBuilder::new()
            .database(fleet(800, 7))
            .build(kind)
            .unwrap();
        // Warm up so the pipeline's pool exists (steady state is what the
        // comparison is about; pool creation is a one-time cost).
        let warm = manager.submit_wait(&query).unwrap();
        for a in &warm {
            manager.release(a).unwrap();
        }
        c.bench_function(&format!("backend_submit/{kind}"), |b| {
            b.iter(|| {
                let allocations = manager.submit_wait(black_box(&query)).unwrap();
                for a in &allocations {
                    manager.release(a).unwrap();
                }
            })
        });
        manager.shutdown().unwrap();
    }
}

/// A batch of tickets in flight at once versus one-at-a-time blocking
/// submission, on the live backend: the pipelining win the paper measures.
fn bench_live_pipelining(c: &mut Criterion) {
    const BATCH: usize = 8;
    let query = Query::paper_example();
    let pipeline = PipelineBuilder::new()
        .database(fleet(800, 8))
        .query_managers(2)
        .pool_managers(2)
        .window(BATCH)
        .build_live()
        .unwrap();
    let warm = pipeline.submit_wait(&query).unwrap();
    for a in &warm {
        pipeline.release(a).unwrap();
    }

    c.bench_function("backend_submit/live_blocking_x8", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let allocations = pipeline.submit_wait(black_box(&query)).unwrap();
                for a in &allocations {
                    pipeline.release(a).unwrap();
                }
            }
        })
    });

    c.bench_function("backend_submit/live_pipelined_x8", |b| {
        b.iter(|| {
            let queries = vec![query.clone(); BATCH];
            let tickets = pipeline.submit_batch(black_box(queries)).unwrap();
            for ticket in tickets {
                let allocations = pipeline.wait(ticket).unwrap();
                for a in &allocations {
                    pipeline.release(a).unwrap();
                }
            }
        })
    });
    pipeline.shutdown().unwrap();
}

/// The fifth configuration: the identical round-trip workload against a
/// loopback `ypd` daemon hosting the live pipeline, so the wire-hop
/// overhead (framing, correlation, TCP) is tracked right next to the
/// in-process numbers — plus the pipelined-vs-blocking comparison across
/// the socket.
fn bench_remote_round_trip(c: &mut Criterion) {
    const BATCH: usize = 8;
    let query = Query::paper_example();
    let server = PipelineBuilder::new()
        .database(fleet(800, 9))
        .query_managers(2)
        .window(BATCH)
        .serve(&StageAddress::new("127.0.0.1", 0), BackendKind::Live)
        .expect("loopback ypd starts");
    let remote = PipelineBuilder::remote(&server.local_addr()).expect("connect to loopback ypd");
    let warm = remote.submit_wait(&query).unwrap();
    for a in &warm {
        remote.release(a).unwrap();
    }

    c.bench_function("backend_submit/remote", |b| {
        b.iter(|| {
            let allocations = remote.submit_wait(black_box(&query)).unwrap();
            for a in &allocations {
                remote.release(a).unwrap();
            }
        })
    });

    c.bench_function("backend_submit/remote_pipelined_x8", |b| {
        b.iter(|| {
            let queries = vec![query.clone(); BATCH];
            let tickets = remote.submit_batch(black_box(queries)).unwrap();
            for ticket in tickets {
                let allocations = remote.wait(ticket).unwrap();
                for a in &allocations {
                    remote.release(a).unwrap();
                }
            }
        })
    });

    remote.halt_daemon().unwrap();
    remote.shutdown().unwrap();
    server.join().unwrap();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = backend_submit;
    config = config();
    targets = bench_backend_round_trip, bench_live_pipelining, bench_remote_round_trip
}
criterion_main!(backend_submit);
