//! `backend_submit`: the same submit → wait → release workload swept across
//! all five backends — embedded engine, threaded live pipeline, centralized
//! multi-queue scheduler, centralized matchmaker, and the remote backend
//! talking to a loopback `ypd` daemon — through the unified
//! `ResourceManager` API.  Because the client code is identical, the
//! numbers isolate the architectural cost of each deployment (for the
//! remote backend: the wire hop, framing and correlation); pipelined
//! variants show what ticket-based pipelining buys over blocking round
//! trips, in-process and across the socket.  The federated pair measures
//! the wide-area topology: a query delegated between two peered daemons
//! versus one the entry domain satisfies itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{BackendKind, PipelineBuilder, ResourceManager, StageAddress};
use actyp_query::Query;

fn fleet(machines: usize, seed: u64) -> actyp_grid::SharedDatabase {
    SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
        .generate()
        .into_shared()
}

/// One blocking round trip per iteration, identical client code on every
/// backend.
fn bench_backend_round_trip(c: &mut Criterion) {
    let query = Query::paper_example();
    for kind in BackendKind::ALL {
        let manager = PipelineBuilder::new()
            .database(fleet(800, 7))
            .build(kind)
            .unwrap();
        // Warm up so the pipeline's pool exists (steady state is what the
        // comparison is about; pool creation is a one-time cost).
        let warm = manager.submit_wait(&query).unwrap();
        for a in &warm {
            manager.release(a).unwrap();
        }
        c.bench_function(&format!("backend_submit/{kind}"), |b| {
            b.iter(|| {
                let allocations = manager.submit_wait(black_box(&query)).unwrap();
                for a in &allocations {
                    manager.release(a).unwrap();
                }
            })
        });
        manager.shutdown().unwrap();
    }
}

/// A batch of tickets in flight at once versus one-at-a-time blocking
/// submission, on the live backend: the pipelining win the paper measures.
fn bench_live_pipelining(c: &mut Criterion) {
    const BATCH: usize = 8;
    let query = Query::paper_example();
    let pipeline = PipelineBuilder::new()
        .database(fleet(800, 8))
        .query_managers(2)
        .pool_managers(2)
        .window(BATCH)
        .build_live()
        .unwrap();
    let warm = pipeline.submit_wait(&query).unwrap();
    for a in &warm {
        pipeline.release(a).unwrap();
    }

    c.bench_function("backend_submit/live_blocking_x8", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                let allocations = pipeline.submit_wait(black_box(&query)).unwrap();
                for a in &allocations {
                    pipeline.release(a).unwrap();
                }
            }
        })
    });

    c.bench_function("backend_submit/live_pipelined_x8", |b| {
        b.iter(|| {
            let queries = vec![query.clone(); BATCH];
            let tickets = pipeline.submit_batch(black_box(queries)).unwrap();
            for ticket in tickets {
                let allocations = pipeline.wait(ticket).unwrap();
                for a in &allocations {
                    pipeline.release(a).unwrap();
                }
            }
        })
    });
    pipeline.shutdown().unwrap();
}

/// The fifth configuration: the identical round-trip workload against a
/// loopback `ypd` daemon hosting the live pipeline, so the wire-hop
/// overhead (framing, correlation, TCP) is tracked right next to the
/// in-process numbers — plus the pipelined-vs-blocking comparison across
/// the socket.
fn bench_remote_round_trip(c: &mut Criterion) {
    const BATCH: usize = 8;
    let query = Query::paper_example();
    let server = PipelineBuilder::new()
        .database(fleet(800, 9))
        .query_managers(2)
        .window(BATCH)
        .serve(&StageAddress::new("127.0.0.1", 0), BackendKind::Live)
        .expect("loopback ypd starts");
    let remote = PipelineBuilder::remote(&server.local_addr()).expect("connect to loopback ypd");
    let warm = remote.submit_wait(&query).unwrap();
    for a in &warm {
        remote.release(a).unwrap();
    }

    c.bench_function("backend_submit/remote", |b| {
        b.iter(|| {
            let allocations = remote.submit_wait(black_box(&query)).unwrap();
            for a in &allocations {
                remote.release(a).unwrap();
            }
        })
    });

    c.bench_function("backend_submit/remote_pipelined_x8", |b| {
        b.iter(|| {
            let queries = vec![query.clone(); BATCH];
            let tickets = remote.submit_batch(black_box(queries)).unwrap();
            for ticket in tickets {
                let allocations = remote.wait(ticket).unwrap();
                for a in &allocations {
                    remote.release(a).unwrap();
                }
            }
        })
    });

    remote.halt_daemon().unwrap();
    remote.shutdown().unwrap();
    server.join().unwrap();
}

/// The reactor's headline win, measured: submit latency on one active
/// connection while N *idle* sessions sit connected to the same daemon.
/// Under the event-driven engine the idle sessions cost a poller
/// registration each — no threads — so latency should hold flat as the
/// sweep climbs; the legacy thread-per-session numbers are the contrast.
fn bench_remote_idle_connections(c: &mut Criterion) {
    use actyp_proto::{write_frame, ClientFrame, PROTOCOL_VERSION};
    use std::net::TcpStream;

    let query = Query::paper_example();
    for idle_count in [0usize, 64, 256] {
        let server = PipelineBuilder::new()
            .database(fleet(800, 12))
            .serve(&StageAddress::new("127.0.0.1", 0), BackendKind::Embedded)
            .expect("loopback ypd starts");
        let addr = server.local_addr();
        // Idle sessions: hello-handshaken raw sockets (no client threads),
        // held open for the duration of the measurement.
        let idle: Vec<TcpStream> = (0..idle_count)
            .map(|_| {
                let mut sock = TcpStream::connect((addr.host.as_str(), addr.port)).unwrap();
                write_frame(
                    &mut sock,
                    &ClientFrame::Hello {
                        min_version: PROTOCOL_VERSION,
                        max_version: PROTOCOL_VERSION,
                    },
                )
                .unwrap();
                sock
            })
            .collect();
        let remote = PipelineBuilder::remote(&addr).expect("connect to loopback ypd");
        let warm = remote.submit_wait(&query).unwrap();
        for a in &warm {
            remote.release(a).unwrap();
        }
        c.bench_function(&format!("backend_submit/remote_idle_x{idle_count}"), |b| {
            b.iter(|| {
                let allocations = remote.submit_wait(black_box(&query)).unwrap();
                for a in &allocations {
                    remote.release(a).unwrap();
                }
            })
        });
        drop(idle);
        remote.halt_daemon().unwrap();
        remote.shutdown().unwrap();
        server.join().unwrap();
    }
}

/// How deep pipelining pays across the socket: one connection, a batch of
/// D tickets in flight at once, swept over D.  The per-ticket cost should
/// fall as D grows — the paper's pipelining claim, measured against the
/// reactor server.
fn bench_remote_pipelining_depth(c: &mut Criterion) {
    let query = Query::paper_example();
    let server = PipelineBuilder::new()
        .database(fleet(800, 13))
        .query_managers(2)
        .window(64)
        .serve(&StageAddress::new("127.0.0.1", 0), BackendKind::Live)
        .expect("loopback ypd starts");
    let remote = PipelineBuilder::remote(&server.local_addr()).expect("connect to loopback ypd");
    let warm = remote.submit_wait(&query).unwrap();
    for a in &warm {
        remote.release(a).unwrap();
    }
    for depth in [1usize, 2, 4, 8, 16, 32] {
        c.bench_function(
            &format!("backend_submit/remote_pipelined_depth_{depth}"),
            |b| {
                b.iter(|| {
                    let queries = vec![query.clone(); depth];
                    let tickets = remote.submit_batch(black_box(queries)).unwrap();
                    for ticket in tickets {
                        let allocations = remote.wait(ticket).unwrap();
                        for a in &allocations {
                            remote.release(a).unwrap();
                        }
                    }
                })
            },
        );
    }
    remote.halt_daemon().unwrap();
    remote.shutdown().unwrap();
    server.join().unwrap();
}

/// Wide-area delegation cost: two federated loopback daemons, a query the
/// entry domain cannot satisfy, so every iteration crosses client → entry
/// daemon → peer daemon and back — the paper's WAN hop, measured right
/// next to the single-daemon remote numbers.  A locally satisfiable query
/// on the same topology isolates the federation layer's bookkeeping
/// overhead from the extra hop.
fn bench_federated_delegation(c: &mut Criterion) {
    use actyp_pipeline::FederationConfig;

    fn homogeneous(arch: &str, seed: u64) -> actyp_grid::SharedDatabase {
        SyntheticFleet::new(FleetSpec::homogeneous(200, arch, 512), seed)
            .generate()
            .into_shared()
    }
    let federated = |domain: &str, arch: &str, seed: u64, peers: Vec<StageAddress>| {
        PipelineBuilder::new()
            .database(homogeneous(arch, seed))
            .ttl(8)
            .serve_federated(
                &StageAddress::new("127.0.0.1", 0),
                BackendKind::Embedded,
                FederationConfig {
                    domain: domain.to_string(),
                    ttl: 8,
                    peers,
                    ..FederationConfig::default()
                },
            )
            .expect("federated loopback ypd starts")
    };
    let (peer, _) = federated("upc", "hp", 11, Vec::new());
    let (entry, _) = federated("purdue", "sun", 10, vec![peer.local_addr()]);
    let remote = PipelineBuilder::remote(&entry.local_addr()).expect("connect to entry daemon");

    let local = actyp_query::parse_query("punch.rsrc.arch = sun\n").unwrap();
    let delegated = actyp_query::parse_query("punch.rsrc.arch = hp\n").unwrap();
    for query in [&local, &delegated] {
        let warm = remote.submit_wait(query).unwrap();
        for a in &warm {
            remote.release(a).unwrap();
        }
    }

    c.bench_function("backend_submit/federated_local", |b| {
        b.iter(|| {
            let allocations = remote.submit_wait(black_box(&local)).unwrap();
            for a in &allocations {
                remote.release(a).unwrap();
            }
        })
    });

    c.bench_function("backend_submit/federated_delegated", |b| {
        b.iter(|| {
            let allocations = remote.submit_wait(black_box(&delegated)).unwrap();
            for a in &allocations {
                remote.release(a).unwrap();
            }
        })
    });

    remote.halt_daemon().unwrap();
    remote.shutdown().unwrap();
    entry.join().unwrap();
    peer.halt();
    peer.join().unwrap();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = backend_submit;
    config = config();
    targets = bench_backend_round_trip, bench_live_pipelining, bench_remote_round_trip,
        bench_remote_idle_connections, bench_remote_pipelining_depth,
        bench_federated_delegation
}
criterion_main!(backend_submit);
