//! Criterion micro-benchmarks for the pipeline's hot operations: query
//! parsing, pool-name construction, machine matching, the white-pages walk a
//! pool performs at creation, and a pool allocation (the linear scan whose
//! cost dominates the paper's response-time figures).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{ReplicaBias, RequestId, ResourcePool, SchedulingObjective};
use actyp_query::{matches_machine, parse_query, PoolName, Query};

fn bench_query_language(c: &mut Criterion) {
    let text = Query::paper_example().to_string();
    c.bench_function("query/parse_paper_example", |b| {
        b.iter(|| parse_query(black_box(&text)).unwrap())
    });

    let basic = Query::paper_example().decompose(1).remove(0);
    c.bench_function("query/pool_name_signature", |b| {
        b.iter(|| PoolName::from_query(black_box(&basic)))
    });

    let composite =
        parse_query("punch.rsrc.arch = sun | hp | linux\npunch.rsrc.memory = >=128 | >=512\n")
            .unwrap();
    c.bench_function("query/decompose_composite", |b| {
        b.iter(|| black_box(&composite).decompose(16))
    });
}

fn bench_matching_and_walk(c: &mut Criterion) {
    let db = SyntheticFleet::new(FleetSpec::with_machines(3_200), 1).generate();
    let basic = Query::paper_example().decompose(1).remove(0);
    let machine = db.iter().next().unwrap().clone();

    c.bench_function("match/single_machine", |b| {
        b.iter(|| matches_machine(black_box(&basic), black_box(&machine)))
    });

    c.bench_function("database/walk_3200_machines", |b| {
        b.iter(|| db.walk(|m| matches_machine(&basic, m).is_match()).len())
    });
}

fn bench_pool_allocation(c: &mut Criterion) {
    let shared = SyntheticFleet::new(FleetSpec::homogeneous(3_200, "sun", 256), 2)
        .generate()
        .into_shared();
    let basic = parse_query("punch.rsrc.arch = sun\npunch.user.accessgroup = ece\n")
        .unwrap()
        .decompose(1)
        .remove(0);
    let name = PoolName::from_query(&basic);
    let pool = ResourcePool::create(
        name,
        0,
        ReplicaBias::none(),
        shared,
        SchedulingObjective::LeastLoaded,
        3,
    )
    .unwrap();
    let pool = std::cell::RefCell::new(pool);
    let mut counter = 0u64;

    c.bench_function("pool/allocate_release_3200", |b| {
        b.iter_batched(
            || {
                counter += 1;
                RequestId(counter)
            },
            |request| {
                let mut p = pool.borrow_mut();
                let a = p.allocate(request, &basic, 12).unwrap();
                p.release(&a).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = micro;
    config = config();
    targets = bench_query_language, bench_matching_and_walk, bench_pool_allocation
}
criterion_main!(micro);
