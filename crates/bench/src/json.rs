//! Minimal JSON reader/writer for the benchmark artifacts.
//!
//! The workspace builds without registry access, so there is no serde in
//! tree; the `BENCH_*.json` artifacts instead go through this hand-rolled
//! value model.  The writer emits deterministic, human-diffable output
//! (object keys keep insertion order, two-space indentation); the parser is
//! a total recursive-descent reader with a depth cap, so a corrupted
//! artifact yields an error, never a panic.

use std::fmt::Write as _;

/// Nesting depth beyond which the parser refuses to recurse (a committed
/// artifact is three levels deep; anything deeper is corruption).
const MAX_DEPTH: usize = 16;

/// A JSON value.  Objects preserve insertion order so regenerated
/// artifacts diff cleanly against committed ones.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`, as JSON itself does).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving their order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object member by key (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation and a trailing newline — the
    /// format of the committed artifacts.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, inner_pad, colon) = match indent {
            Some(width) => (
                "\n",
                " ".repeat(width * level),
                " ".repeat(width * (level + 1)),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&inner_pad);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&inner_pad);
                    write_string(out, key);
                    out.push_str(colon);
                    value.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's shortest round-trip float formatting is valid JSON for
        // every finite value (integers print without a fraction).
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Infinity; artifacts never contain them, but the
        // writer must stay total.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed to parse, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (surrounding whitespace allowed, nothing else
/// may follow it).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogates decode to the replacement character;
                            // artifacts are ASCII, this path is for totality.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII span");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_artifact_shapes() {
        let doc = Json::Obj(vec![
            ("topic".to_string(), Json::Str("fig4_pools_lan".to_string())),
            ("schema_version".to_string(), Json::Num(1.0)),
            (
                "points".to_string(),
                Json::Arr(vec![Json::Obj(vec![
                    ("x".to_string(), Json::Num(2.0)),
                    ("throughput".to_string(), Json::Num(123.456)),
                    ("p99".to_string(), Json::Num(0.001_25)),
                ])]),
            ),
            ("empty".to_string(), Json::Arr(Vec::new())),
            ("flag".to_string(), Json::Bool(true)),
            ("nothing".to_string(), Json::Null),
        ]);
        for rendered in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&rendered).unwrap(), doc, "{rendered}");
        }
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, -1.5, 1e-9, 236_222.0, 0.123_456_789_012_345, 1e20] {
            let rendered = Json::Num(n).to_compact();
            assert_eq!(parse(&rendered).unwrap().as_f64().unwrap(), n, "{rendered}");
        }
        // Non-finite values degrade to null rather than emitting bad JSON.
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "tab\there \"quoted\" back\\slash\nnewline \u{1} unicode é";
        let rendered = Json::Str(s.to_string()).to_compact();
        assert_eq!(parse(&rendered).unwrap().as_str().unwrap(), s);
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap().as_str().unwrap(), "Aé");
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse(r#"{"a": {"b": [1, 2, 3]}, "s": "x"}"#).unwrap();
        let items = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].as_f64(), Some(3.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("s").unwrap().get("nope").is_none());
    }

    #[test]
    fn garbage_is_an_error_never_a_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\": }",
            "nul",
            "truthy",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"bad \\uZZZZ\"",
            "12..5",
            "[1] trailing",
            "--3",
            "{]",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
        // The depth cap stops unbounded recursion.
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Errors render with their position.
        assert!(parse("[1,]").unwrap_err().to_string().contains("byte"));
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let doc = parse("  {\n \"a\" :\t[ 1 , 2 ]\r\n, \"b\": { } }  ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b"), Some(&Json::Obj(Vec::new())));
    }
}
