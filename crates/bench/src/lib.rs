//! # actyp-bench — figure regeneration and micro-benchmarks
//!
//! One function per figure of the paper's evaluation section (plus the
//! ablations called out in DESIGN.md).  Each function runs a parameter sweep
//! on the simulated deployment and returns a [`FigureSeries`]; the `fig*`
//! binaries in `src/bin/` print those series as CSV, and EXPERIMENTS.md
//! records a reference run.
//!
//! The sweeps use the paper's parameters by default (3,200 machines,
//! closed-loop clients).  [`Scale::quick`] shrinks everything so the same
//! code can run in CI and in unit tests.

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::sim::{ExperimentConfig, ExperimentResult, PoolTopology, SimulatedPipeline};
use actyp_pipeline::{BackendKind, PipelineBuilder, ResourceManager, SchedulingObjective};
use actyp_query::{Constraint, Query, QueryKey};
use actyp_simnet::{LinkProfile, NetworkModel, Rng};
use actyp_workload::CpuTimeDistribution;

pub mod harness;
pub mod json;

/// A figure series: an x axis and one or more named y columns.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    /// Name of the x axis (e.g. `pools`, `clients`, `cpu_seconds`).
    pub x_name: String,
    /// Names of the y columns (one per curve in the paper's figure).
    pub columns: Vec<String>,
    /// Rows: `(x, y per column)`.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl FigureSeries {
    /// Renders the series as CSV (the format the binaries print).
    pub fn to_csv(&self) -> String {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        actyp_workload::trace::series_csv(&self.x_name, &cols, &self.rows)
    }

    /// The y value at a given x for a given column, if present.
    pub fn value(&self, x: f64, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(rx, _)| (*rx - x).abs() < 1e-9)
            .map(|(_, ys)| ys[col])
    }
}

/// Sweep sizes.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Machines in the resource database.
    pub machines: usize,
    /// Requests per closed-loop client.
    pub requests_per_client: usize,
    /// Client counts swept on the x axis of Figures 6–8 (and used as curves
    /// in Figures 4–5).
    pub client_counts: Vec<usize>,
    /// Pool counts swept in Figures 4–5.
    pub pool_counts: Vec<usize>,
    /// Runs sampled for the Figure 9 histogram.
    pub figure9_runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            machines: 3_200,
            requests_per_client: 15,
            client_counts: vec![8, 16, 32, 64],
            pool_counts: vec![2, 4, 6, 8, 10, 12, 14, 16],
            figure9_runs: 236_222,
            seed: 0x2001,
        }
    }
}

impl Scale {
    /// A reduced sweep for CI and unit tests.
    pub fn quick() -> Self {
        Scale {
            machines: 640,
            requests_per_client: 5,
            client_counts: vec![4, 16],
            pool_counts: vec![2, 8],
            figure9_runs: 20_000,
            seed: 0x2001,
        }
    }

    /// Scale selected from the `ACTYP_QUICK` environment variable (any
    /// non-empty value other than `0` selects the quick sweep).
    pub fn from_env() -> Self {
        match std::env::var("ACTYP_QUICK") {
            Ok(v) if !v.is_empty() && v != "0" => Scale::quick(),
            _ => Scale::default(),
        }
    }
}

fn experiment(
    scale: &Scale,
    topology: PoolTopology,
    clients: usize,
    network: NetworkModel,
    client_link: LinkProfile,
) -> ExperimentConfig {
    ExperimentConfig {
        machines: scale.machines,
        topology,
        clients,
        requests_per_client: scale.requests_per_client,
        network,
        client_link,
        seed: scale.seed,
        ..ExperimentConfig::paper_baseline()
    }
}

/// Full measurements of a figure sweep: one [`ExperimentResult`] per
/// `(x, column)` cell.  The CSV series of the figure binaries (means, via
/// [`FigureRuns::series`]) and the tracked `BENCH_*.json` artifacts
/// (throughput plus latency percentiles, via [`harness`]) both derive from
/// the same runs, so the two outputs can never disagree.
#[derive(Debug)]
pub struct FigureRuns {
    /// Name of the x axis.
    pub x_name: String,
    /// Names of the columns (one per curve).
    pub columns: Vec<String>,
    /// Rows: `(x, one result per column)`.
    pub cells: Vec<(f64, Vec<ExperimentResult>)>,
}

impl FigureRuns {
    /// The mean-response series the paper's figures plot.
    pub fn series(&self) -> FigureSeries {
        FigureSeries {
            x_name: self.x_name.clone(),
            columns: self.columns.clone(),
            rows: self
                .cells
                .iter()
                .map(|(x, results)| (*x, results.iter().map(|r| r.mean_response()).collect()))
                .collect(),
        }
    }
}

fn pools_runs(scale: &Scale, network: NetworkModel, link: LinkProfile) -> FigureRuns {
    let columns: Vec<String> = scale
        .client_counts
        .iter()
        .map(|c| format!("clients={c}"))
        .collect();
    let cells = scale
        .pool_counts
        .iter()
        .map(|&pools| {
            let results = scale
                .client_counts
                .iter()
                .map(|&clients| {
                    SimulatedPipeline::new(experiment(
                        scale,
                        PoolTopology::Striped { pools },
                        clients,
                        network.clone(),
                        link,
                    ))
                    .run()
                })
                .collect();
            (pools as f64, results)
        })
        .collect();
    FigureRuns {
        x_name: "pools".to_string(),
        columns,
        cells,
    }
}

/// Figure 4 (full measurements): effect of the number of pools, LAN.
pub fn fig4_runs(scale: &Scale) -> FigureRuns {
    pools_runs(scale, NetworkModel::lan(), LinkProfile::Lan)
}

/// Figure 5 (full measurements): the same sweep, WAN configuration.
pub fn fig5_runs(scale: &Scale) -> FigureRuns {
    pools_runs(scale, NetworkModel::wan(), LinkProfile::Wan)
}

/// Figure 4: effect of the number of pools on response time, LAN
/// configuration.  3,200 machines uniformly distributed across pools,
/// queries striped randomly across pools, closed-loop clients.
pub fn fig4_pools_lan(scale: &Scale) -> FigureSeries {
    fig4_runs(scale).series()
}

/// Figure 5: the same sweep in the WAN configuration (clients reach the
/// service over a trans-Atlantic link).
pub fn fig5_pools_wan(scale: &Scale) -> FigureSeries {
    fig5_runs(scale).series()
}

/// Figure 6 (full measurements): clients versus pool size.
pub fn fig6_runs(scale: &Scale) -> FigureRuns {
    let sizes = [scale.machines / 4, scale.machines / 2, scale.machines];
    let columns: Vec<String> = sizes.iter().map(|s| format!("machines={s}")).collect();
    let cells = scale
        .client_counts
        .iter()
        .map(|&clients| {
            let results = sizes
                .iter()
                .map(|&machines| {
                    let mut cfg = experiment(
                        scale,
                        PoolTopology::SinglePool,
                        clients,
                        NetworkModel::lan(),
                        LinkProfile::Lan,
                    );
                    cfg.machines = machines.max(1);
                    SimulatedPipeline::new(cfg).run()
                })
                .collect();
            (clients as f64, results)
        })
        .collect();
    FigureRuns {
        x_name: "clients".to_string(),
        columns,
        cells,
    }
}

/// Figure 6: response time as a function of the number of clients for
/// growing pool sizes (single pool, linear-search scheduler).
pub fn fig6_pool_size(scale: &Scale) -> FigureSeries {
    fig6_runs(scale).series()
}

/// Figure 7 (full measurements): splitting one pool into parts.
pub fn fig7_runs(scale: &Scale) -> FigureRuns {
    let variants: [(usize, &str); 3] = [(1, "1x whole"), (2, "2x halves"), (4, "4x quarters")];
    let columns: Vec<String> = variants
        .iter()
        .map(|(_, label)| label.to_string())
        .collect();
    let cells = scale
        .client_counts
        .iter()
        .map(|&clients| {
            let results = variants
                .iter()
                .map(|&(parts, _)| {
                    let topology = if parts == 1 {
                        PoolTopology::SinglePool
                    } else {
                        PoolTopology::Split { parts }
                    };
                    SimulatedPipeline::new(experiment(
                        scale,
                        topology,
                        clients,
                        NetworkModel::lan(),
                        LinkProfile::Lan,
                    ))
                    .run()
                })
                .collect();
            (clients as f64, results)
        })
        .collect();
    FigureRuns {
        x_name: "clients".to_string(),
        columns,
        cells,
    }
}

/// Figure 7: effect of splitting a 3,200-machine pool into two pools of
/// 1,600 and four pools of 800, searched concurrently.
pub fn fig7_splitting(scale: &Scale) -> FigureSeries {
    fig7_runs(scale).series()
}

/// Figure 8 (full measurements): replicated scheduling processes.
pub fn fig8_runs(scale: &Scale) -> FigureRuns {
    let replica_counts = [1usize, 2, 4];
    let columns: Vec<String> = replica_counts
        .iter()
        .map(|r| format!("processes={r}"))
        .collect();
    let cells = scale
        .client_counts
        .iter()
        .map(|&clients| {
            let results = replica_counts
                .iter()
                .map(|&replicas| {
                    SimulatedPipeline::new(experiment(
                        scale,
                        PoolTopology::Replicated { replicas },
                        clients,
                        NetworkModel::lan(),
                        LinkProfile::Lan,
                    ))
                    .run()
                })
                .collect();
            (clients as f64, results)
        })
        .collect();
    FigureRuns {
        x_name: "clients".to_string(),
        columns,
        cells,
    }
}

/// Figure 8: effect of replicating the pool (1, 2 and 4 concurrent
/// scheduling processes over the same machine set, instance-specific bias).
pub fn fig8_replication(scale: &Scale) -> FigureSeries {
    fig8_runs(scale).series()
}

/// Figure 9: distribution of CPU times of PUNCH runs — one-second bins over
/// the first 1,000 seconds, as the paper plots (axes truncated; the counts
/// beyond the range appear in the final `overflow` row with x = -1).
pub fn fig9_cputime_dist(scale: &Scale) -> FigureSeries {
    let mut rng = Rng::new(scale.seed ^ 0xF19);
    let histogram = CpuTimeDistribution::punch().histogram(&mut rng, scale.figure9_runs, 1_000);
    let mut rows: Vec<(f64, Vec<f64>)> = histogram
        .iter()
        .map(|(x, count)| (x, vec![count as f64]))
        .collect();
    rows.push((-1.0, vec![histogram.overflow() as f64]));
    FigureSeries {
        x_name: "cpu_seconds".to_string(),
        columns: vec!["runs".to_string()],
        rows,
    }
}

/// Ablation A2: scheduling objective of the pool's scheduling process under
/// a fixed load.
pub fn ablation_scheduler(scale: &Scale) -> FigureSeries {
    let objectives = [
        (SchedulingObjective::LeastLoaded, "least-loaded"),
        (SchedulingObjective::MostFreeMemory, "most-memory"),
        (SchedulingObjective::RoundRobin, "round-robin"),
        (SchedulingObjective::Random, "random"),
        (SchedulingObjective::FirstFit, "first-fit"),
    ];
    let columns: Vec<String> = objectives.iter().map(|(_, l)| l.to_string()).collect();
    let clients = *scale.client_counts.last().unwrap_or(&16);
    let ys: Vec<f64> = objectives
        .iter()
        .map(|&(objective, _)| {
            let mut cfg = experiment(
                scale,
                PoolTopology::SinglePool,
                clients,
                NetworkModel::lan(),
                LinkProfile::Lan,
            );
            cfg.objective = objective;
            SimulatedPipeline::new(cfg).run().mean_response()
        })
        .collect();
    FigureSeries {
        x_name: "clients".to_string(),
        columns,
        rows: vec![(clients as f64, ys)],
    }
}

/// Ablation A3 / baseline comparison: total machine-record evaluations per
/// 1,000 scheduling decisions for the pipeline (pool caches) versus the
/// centralized baselines (full-table scans), on the same heterogeneous
/// fleet.  Lower is better; this is the quantity that limits a centralized
/// scheduler's throughput.
pub fn baseline_comparison(scale: &Scale) -> FigureSeries {
    let queries = 1_000.min(scale.machines);
    let db = SyntheticFleet::new(FleetSpec::with_machines(scale.machines), scale.seed)
        .generate()
        .into_shared();
    let query = Query::new()
        .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
        .with(QueryKey::rsrc("memory"), Constraint::ge(128u64));

    // All three architectures run the same workload over the same fleet
    // through the unified `ResourceManager` surface; the pipeline's queries
    // hit the dynamically created sun pool, the centralized designs scan
    // the full table per decision.
    let kinds = [
        (BackendKind::Embedded, "actyp-pipeline"),
        (BackendKind::CentralQueue, "central-queue"),
        (BackendKind::Matchmaker, "matchmaker"),
    ];
    let mut examined = Vec::with_capacity(kinds.len());
    for (kind, _) in kinds {
        let manager = PipelineBuilder::new()
            .database(db.clone())
            .build(kind)
            .expect("database configured");
        for _ in 0..queries {
            if let Ok(allocations) = manager.submit_wait(&query) {
                for a in &allocations {
                    let _ = manager.release(a);
                }
            }
        }
        examined.push(manager.stats().records_examined as f64);
    }

    FigureSeries {
        x_name: "queries".to_string(),
        columns: kinds.iter().map(|(_, label)| label.to_string()).collect(),
        rows: vec![(queries as f64, examined)],
    }
}

/// Ablation A1: pool-manager selection policy (by key value vs. random vs.
/// round-robin) measured as the number of pool instances created and the
/// forwards incurred for a fixed query mix over several pool managers.
pub fn ablation_pm_selection(scale: &Scale) -> FigureSeries {
    use actyp_pipeline::PoolManagerSelection;
    let policies = [
        (
            PoolManagerSelection::ByKeyValue("arch".to_string()),
            "by-arch",
        ),
        (PoolManagerSelection::Random, "random"),
        (PoolManagerSelection::RoundRobin, "round-robin"),
    ];
    let columns: Vec<String> = policies.iter().map(|(_, l)| l.to_string()).collect();
    let queries = 200;
    let ys: Vec<f64> = policies
        .iter()
        .map(|(policy, _)| {
            let db = SyntheticFleet::new(
                FleetSpec::with_machines(scale.machines.min(800)),
                scale.seed,
            )
            .generate()
            .into_shared();
            let manager = PipelineBuilder::new()
                .database(db)
                .pool_managers(4)
                .pool_manager_selection(policy.clone())
                .build_embedded()
                .expect("database configured");
            for i in 0..queries {
                let arch = if i % 2 == 0 { "sun" } else { "hp" };
                let q = Query::new().with(QueryKey::rsrc("arch"), Constraint::eq(arch));
                if let Ok(allocations) = manager.submit_wait(&q) {
                    for a in &allocations {
                        let _ = manager.release(a);
                    }
                }
            }
            manager.stats().forwards as f64
        })
        .collect();
    FigureSeries {
        x_name: "queries".to_string(),
        columns,
        rows: vec![(queries as f64, ys)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            machines: 200,
            requests_per_client: 3,
            client_counts: vec![2, 8],
            pool_counts: vec![2, 8],
            figure9_runs: 5_000,
            seed: 7,
        }
    }

    #[test]
    fn fig4_more_pools_do_not_hurt_under_load() {
        let series = fig4_pools_lan(&tiny());
        assert_eq!(series.rows.len(), 2);
        let two = series.value(2.0, "clients=8").unwrap();
        let eight = series.value(8.0, "clients=8").unwrap();
        assert!(
            eight <= two,
            "8 pools ({eight}) must not be slower than 2 ({two})"
        );
        assert!(!series.to_csv().is_empty());
    }

    #[test]
    fn fig5_wan_is_slower_than_lan() {
        let scale = tiny();
        let lan = fig4_pools_lan(&scale);
        let wan = fig5_pools_wan(&scale);
        let l = lan.value(2.0, "clients=2").unwrap();
        let w = wan.value(2.0, "clients=2").unwrap();
        assert!(w > l, "wan {w} must exceed lan {l}");
    }

    #[test]
    fn fig6_response_grows_with_clients_and_pool_size() {
        let series = fig6_pool_size(&tiny());
        let cols = series.columns.clone();
        let few = series.value(2.0, &cols[2]).unwrap();
        let many = series.value(8.0, &cols[2]).unwrap();
        assert!(many > few);
        let small_pool = series.value(8.0, &cols[0]).unwrap();
        let large_pool = series.value(8.0, &cols[2]).unwrap();
        assert!(large_pool > small_pool);
    }

    #[test]
    fn fig7_and_fig8_show_improvement_under_load() {
        let scale = tiny();
        let split = fig7_splitting(&scale);
        assert!(split.value(8.0, "4x quarters").unwrap() < split.value(8.0, "1x whole").unwrap());
        let repl = fig8_replication(&scale);
        assert!(repl.value(8.0, "processes=4").unwrap() < repl.value(8.0, "processes=1").unwrap());
    }

    #[test]
    fn fig9_histogram_shape() {
        let series = fig9_cputime_dist(&tiny());
        assert_eq!(series.rows.len(), 1_001);
        // The mode is within the first ten seconds.
        let mode_x = series
            .rows
            .iter()
            .filter(|(x, _)| *x >= 0.0)
            .max_by(|a, b| a.1[0].total_cmp(&b.1[0]))
            .unwrap()
            .0;
        assert!(mode_x < 10.0);
    }

    #[test]
    fn baseline_comparison_shows_pipeline_examining_fewer_records() {
        let series = baseline_comparison(&tiny());
        let row = &series.rows[0].1;
        let (pipeline, central, matchmaker) = (row[0], row[1], row[2]);
        assert!(
            pipeline < central,
            "pipeline {pipeline} vs central {central}"
        );
        assert!(pipeline < matchmaker);
    }

    #[test]
    fn ablation_series_have_expected_shape() {
        let scale = tiny();
        let sched = ablation_scheduler(&scale);
        assert_eq!(sched.columns.len(), 5);
        assert!(sched.rows[0].1.iter().all(|y| *y > 0.0));
        let pm = ablation_pm_selection(&scale);
        assert_eq!(pm.columns.len(), 3);
        // Routing by the key value never forwards; the others may.
        assert_eq!(pm.rows[0].1[0], 0.0);
    }

    #[test]
    fn scale_from_env_defaults_to_full() {
        // Not setting the variable in tests: the default is the paper scale.
        let scale = Scale::default();
        assert_eq!(scale.machines, 3_200);
        assert_eq!(Scale::quick().machines, 640);
    }
}
