//! # Benchmark artifacts — `BENCH_<topic>.json`
//!
//! The tracked-artifact layer over the figure sweeps in the crate root and
//! over a live-daemon load generator: every *topic* (one per paper figure,
//! plus the daemon-saturation sweeps) runs to a [`BenchArtifact`] —
//! per-point throughput and latency percentiles — that serializes to
//! `BENCH_<topic>.json` via the hand-rolled [`crate::json`] writer and is
//! committed under `benchmarks/` at quick scale.
//!
//! Two kinds of topic with different regression semantics:
//!
//! * [`ArtifactKind::Simulated`] — deterministic virtual-time simulations
//!   (`fig4`..`fig9`).  The same seed reproduces the same numbers on any
//!   machine, so [`compare`] enforces tolerance bands: fresh latency may
//!   not exceed the committed value by more than the tolerance, fresh
//!   throughput may not fall below it by more than the tolerance.
//! * [`ArtifactKind::Measured`] — wall-clock runs of a real `ypd` over
//!   loopback (the `saturation_*` topics).  Absolute numbers depend on the
//!   host, so [`compare`] checks structure instead: the same point set,
//!   ordered percentiles, nonzero throughput.
//!
//! Regenerate everything at quick scale with
//! `ACTYP_QUICK=1 cargo run --release -p actyp-bench --bin bench_artifacts -- emit`
//! and gate a change with `… -- check` (exits nonzero on regression).
//! EXPERIMENTS.md walks through each topic.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{
    BackendKind, FederatedBackend, FederationConfig, PipelineBuilder, RemoteBackend,
    ResourceManager, ServerConfig, ServerHandle, SessionMode, StageAddress,
};
use actyp_simnet::{Rng, SampleSet};
use actyp_workload::CpuTimeDistribution;

use crate::json::{self, Json};
use crate::{FigureRuns, FigureSeries, Scale};

/// Artifact schema version; bump when the JSON layout changes shape.
pub const SCHEMA_VERSION: u64 = 1;

/// Every topic the harness knows, in emission order: the six paper
/// figures, then the daemon-saturation sweeps.
pub const TOPICS: &[&str] = &[
    "fig4_pools_lan",
    "fig5_pools_wan",
    "fig6_pool_size",
    "fig7_splitting",
    "fig8_replication",
    "fig9_cputime_dist",
    "saturation_pipelining",
    "saturation_idle",
    "saturation_backends",
    "saturation_cores",
    "routing",
];

/// How a topic's numbers were obtained, which decides how [`compare`]
/// judges a fresh run against the committed artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Deterministic virtual-time simulation: same seed, same numbers —
    /// compared within tolerance bands.
    Simulated,
    /// Wall-clock measurement of a real daemon: host-dependent — compared
    /// structurally.
    Measured,
}

impl ArtifactKind {
    fn as_str(self) -> &'static str {
        match self {
            ArtifactKind::Simulated => "simulated",
            ArtifactKind::Measured => "measured",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "simulated" => Ok(ArtifactKind::Simulated),
            "measured" => Ok(ArtifactKind::Measured),
            other => Err(format!("unknown artifact kind `{other}`")),
        }
    }
}

/// One measured point of a sweep: a `(series, x)` cell with its throughput
/// and latency percentiles.  For the simulated figures `throughput` is
/// completed queries per virtual second and the latency fields are response
/// times; for `fig9_cputime_dist` the latency fields are quantiles of the
/// CPU-time distribution itself; for the saturation topics everything is
/// wall-clock as observed by the load-generator clients.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Curve this point belongs to (a column of the figure).
    pub series: String,
    /// Position on the x axis.
    pub x: f64,
    /// Completed requests per second.
    pub throughput: f64,
    /// Mean latency, seconds.
    pub mean: f64,
    /// Median latency, seconds.
    pub p50: f64,
    /// 95th-percentile latency, seconds.
    pub p95: f64,
    /// 99th-percentile latency, seconds.
    pub p99: f64,
}

/// A full benchmark artifact: the unit serialized as `BENCH_<topic>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Topic name (one of [`TOPICS`]).
    pub topic: String,
    /// Regression-comparison semantics.
    pub kind: ArtifactKind,
    /// Sweep scale the numbers were taken at (`quick` or `paper`).
    pub scale: String,
    /// Git revision the run was taken from (informational only; never
    /// compared).
    pub git_rev: String,
    /// Name of the x axis shared by all points.
    pub x_name: String,
    /// The measurements.
    pub points: Vec<BenchPoint>,
}

impl BenchArtifact {
    /// The canonical file name, `BENCH_<topic>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.topic)
    }

    /// The artifact as a JSON value.
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("series", Json::Str(p.series.clone())),
                    ("x", Json::Num(p.x)),
                    ("throughput", Json::Num(p.throughput)),
                    ("mean", Json::Num(p.mean)),
                    ("p50", Json::Num(p.p50)),
                    ("p95", Json::Num(p.p95)),
                    ("p99", Json::Num(p.p99)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::Num(SCHEMA_VERSION as f64)),
            ("topic", Json::Str(self.topic.clone())),
            ("kind", Json::Str(self.kind.as_str().to_string())),
            ("scale", Json::Str(self.scale.clone())),
            ("git_rev", Json::Str(self.git_rev.clone())),
            ("x_name", Json::Str(self.x_name.clone())),
            ("points", Json::Arr(points)),
        ])
    }

    /// The artifact rendered as the pretty JSON committed to the repo.
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Parses an artifact back from JSON text, validating the schema.
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&value)
    }

    /// Reconstructs an artifact from a JSON value, validating the schema.
    pub fn from_json(value: &Json) -> Result<BenchArtifact, String> {
        fn str_field(value: &Json, key: &str) -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{key}`"))
        }
        fn num_field(value: &Json, key: &str) -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
        }

        let version = num_field(value, "schema_version")?;
        if version != SCHEMA_VERSION as f64 {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let points = value
            .get("points")
            .and_then(Json::as_arr)
            .ok_or("missing or non-array field `points`")?
            .iter()
            .map(|p| {
                Ok(BenchPoint {
                    series: str_field(p, "series")?,
                    x: num_field(p, "x")?,
                    throughput: num_field(p, "throughput")?,
                    mean: num_field(p, "mean")?,
                    p50: num_field(p, "p50")?,
                    p95: num_field(p, "p95")?,
                    p99: num_field(p, "p99")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchArtifact {
            topic: str_field(value, "topic")?,
            kind: ArtifactKind::parse(&str_field(value, "kind")?)?,
            scale: str_field(value, "scale")?,
            git_rev: str_field(value, "git_rev")?,
            x_name: str_field(value, "x_name")?,
            points,
        })
    }
}

/// The label recorded in an artifact's `scale` field: sweeps at or below
/// the quick machine count are `quick`, everything else `paper`.
pub fn scale_label(scale: &Scale) -> &'static str {
    if scale.machines <= Scale::quick().machines {
        "quick"
    } else {
        "paper"
    }
}

/// The [`Scale`] an artifact's `scale` field names, so `check` can rerun a
/// committed artifact at the scale it was taken at.
pub fn scale_for_label(label: &str) -> Result<Scale, String> {
    match label {
        "quick" => Ok(Scale::quick()),
        "paper" => Ok(Scale::default()),
        other => Err(format!("unknown scale label `{other}`")),
    }
}

/// The git revision stamped into emitted artifacts: `ACTYP_GIT_REV` if
/// set, else `git rev-parse --short HEAD`, else `unknown`.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("ACTYP_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Converts a figure sweep's full measurements into an artifact: one
/// [`BenchPoint`] per `(x, column)` cell, with exact quantiles over the
/// cell's response-time samples.
pub fn artifact_from_runs(topic: &str, scale: &Scale, runs: FigureRuns) -> BenchArtifact {
    let mut points = Vec::new();
    let columns = runs.columns;
    for (x, results) in runs.cells {
        for (column, mut result) in columns.iter().zip(results) {
            points.push(BenchPoint {
                series: column.clone(),
                x,
                throughput: result.throughput(),
                mean: result.mean_response(),
                p50: result.response_quantile(0.50),
                p95: result.response_quantile(0.95),
                p99: result.response_quantile(0.99),
            });
        }
    }
    BenchArtifact {
        topic: topic.to_string(),
        kind: ArtifactKind::Simulated,
        scale: scale_label(scale).to_string(),
        git_rev: git_rev(),
        x_name: runs.x_name,
        points,
    }
}

/// The `fig9_cputime_dist` artifact: the figure is a histogram, not a
/// latency sweep, so the latency fields carry quantiles of the CPU-time
/// distribution itself and `throughput` is sampled runs per second of
/// total consumed CPU time — both exactly reproducible from the seed.
fn fig9_artifact(scale: &Scale) -> BenchArtifact {
    let mut rng = Rng::new(scale.seed ^ 0xF19);
    let samples = CpuTimeDistribution::punch().sample_many(&mut rng, scale.figure9_runs);
    let mut set = actyp_simnet::SampleSet::new();
    let mut total = 0.0;
    for s in &samples {
        set.record(s.cpu_seconds);
        total += s.cpu_seconds;
    }
    let throughput = if total > 0.0 {
        samples.len() as f64 / total
    } else {
        0.0
    };
    BenchArtifact {
        topic: "fig9_cputime_dist".to_string(),
        kind: ArtifactKind::Simulated,
        scale: scale_label(scale).to_string(),
        git_rev: git_rev(),
        x_name: "runs".to_string(),
        points: vec![BenchPoint {
            series: "punch".to_string(),
            x: samples.len() as f64,
            throughput,
            mean: set.mean(),
            p50: set.quantile(0.50),
            p95: set.quantile(0.95),
            p99: set.quantile(0.99),
        }],
    }
}

// ---------------------------------------------------------------------------
// The load generator: a real `ypd` over loopback, pushed by closed-loop
// pipelined clients.  `ypload` is a CLI veneer over this; the saturation
// topics sweep it.
// ---------------------------------------------------------------------------

/// One load-generator run: `clients` concurrent connections, each keeping
/// `depth` tickets in flight, against a daemon self-hosted on loopback (or
/// an external one via [`run_load_against`]).
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Concurrent client connections.
    pub clients: usize,
    /// Tickets each client keeps in flight (pipelining depth).
    pub depth: usize,
    /// Requests each client submits in total.
    pub requests_per_client: usize,
    /// Machines in the self-hosted daemon's database.
    pub machines: usize,
    /// The daemon's in-flight window (live backend).
    pub window: usize,
    /// Extra connections that connect and then sit silent for the whole
    /// run — the load the reactor is built to absorb for free.
    pub idle_sessions: usize,
    /// Backend hosted behind the daemon.
    pub backend: BackendKind,
    /// Session I/O architecture of the daemon.
    pub mode: SessionMode,
    /// Fleet seed.
    pub seed: u64,
    /// Shard count for the self-hosted daemon's hot state (directory
    /// shards, admission-window lanes).  `0` keeps the daemon's default;
    /// `1` restores the old single-lock behaviour — the pre-shard series
    /// of the `saturation_cores` sweep.
    pub shards: usize,
    /// When set, the run is time-bounded: each client submits until the
    /// deadline instead of counting `requests_per_client` (which then
    /// only sizes buffers).
    pub duration: Option<Duration>,
    /// Distinct resource pools the load stripes across: the fleet is
    /// split over this many architectures and client `i` queries
    /// architecture `i % pools`, so the daemon runs one scheduling
    /// process per pool (the paper's decomposed-pool shape) instead of
    /// funnelling every request through a single pool's scheduler.
    /// `0`/`1` keep the homogeneous single-pool fleet.
    pub pools: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            clients: 4,
            depth: 4,
            requests_per_client: 50,
            machines: 256,
            window: 0, // 0: sized automatically to clients × depth + slack
            idle_sessions: 0,
            backend: BackendKind::Live,
            mode: SessionMode::Reactor,
            seed: 0x42,
            shards: 0,
            duration: None,
            pools: 1,
        }
    }
}

impl LoadSpec {
    fn effective_window(&self) -> usize {
        if self.window > 0 {
            self.window
        } else {
            self.clients * self.depth + self.clients.max(4)
        }
    }

    /// The query architecture client `index` stripes onto.
    fn arch_for_client(&self, index: usize) -> String {
        if self.pools > 1 {
            format!("arch{}", index % self.pools)
        } else {
            "sun".to_string()
        }
    }
}

/// What one load run measured, from the clients' side of the wire.
#[derive(Debug)]
pub struct LoadResult {
    /// Requests that settled with an allocation (released afterwards).
    pub completed: u64,
    /// Requests that settled with an error.
    pub failed: u64,
    /// Wall-clock duration of the measurement.
    pub elapsed: Duration,
    /// Client-observed submit→outcome latencies, seconds.
    pub latencies: actyp_simnet::SampleSet,
}

impl LoadResult {
    /// Completed requests per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    fn point(mut self, series: &str, x: f64) -> BenchPoint {
        BenchPoint {
            series: series.to_string(),
            x,
            throughput: self.throughput(),
            mean: self.latencies.mean(),
            p50: self.latencies.quantile(0.50),
            p95: self.latencies.quantile(0.95),
            p99: self.latencies.quantile(0.99),
        }
    }
}

/// Self-hosts a daemon for `spec` on an ephemeral loopback port, runs the
/// load against it, and drains the daemon afterwards.
pub fn run_load(spec: &LoadSpec) -> Result<LoadResult, String> {
    let fleet_spec = if spec.pools > 1 {
        let mut fleet_spec = FleetSpec::homogeneous(spec.machines, "sun", 512);
        fleet_spec.architectures = (0..spec.pools)
            .map(|i| actyp_grid::Weighted::new(format!("arch{i}"), 1.0))
            .collect();
        fleet_spec
    } else {
        FleetSpec::homogeneous(spec.machines, "sun", 512)
    };
    let db = SyntheticFleet::new(fleet_spec, spec.seed)
        .generate()
        .into_shared();
    let mut builder = PipelineBuilder::new()
        .database(db)
        .window(spec.effective_window())
        .server_config(ServerConfig {
            mode: spec.mode,
            ..ServerConfig::default()
        });
    if spec.shards > 0 {
        builder = builder.shards(spec.shards);
    }
    let handle: ServerHandle = builder
        .serve(&StageAddress::new("127.0.0.1", 0), spec.backend)
        .map_err(|e| format!("serve: {e}"))?;
    let result = run_load_against(&handle.local_addr(), spec);
    handle.halt();
    handle.join().map_err(|e| format!("daemon drain: {e}"))?;
    result
}

/// Runs the load against an already-listening daemon at `addr`.
pub fn run_load_against(addr: &StageAddress, spec: &LoadSpec) -> Result<LoadResult, String> {
    // Idle sessions first: connections that handshake and then sit silent
    // until the measurement is over.
    let idle: Vec<RemoteBackend> = (0..spec.idle_sessions)
        .map(|_| RemoteBackend::connect(addr).map_err(|e| format!("idle connect: {e}")))
        .collect::<Result<_, _>>()?;

    let addr = Arc::new(addr.clone());
    let started = Instant::now();
    let workers: Vec<_> = (0..spec.clients)
        .map(|index| {
            let addr = addr.clone();
            let depth = spec.depth.max(1);
            let requests = spec.requests_per_client;
            let deadline = spec.duration.map(|d| started + d);
            let arch = spec.arch_for_client(index);
            std::thread::spawn(move || -> Result<(u64, u64, Vec<f64>), String> {
                let manager =
                    RemoteBackend::connect(&addr).map_err(|e| format!("client connect: {e}"))?;
                let query = actyp_query::parse_query(&format!("punch.rsrc.arch = {arch}\n"))
                    .map_err(|e| format!("query: {e}"))?;
                let mut completed = 0u64;
                let mut failed = 0u64;
                let mut latencies = Vec::with_capacity(requests);
                let mut in_flight: VecDeque<(Instant, actyp_pipeline::Ticket)> =
                    VecDeque::with_capacity(depth);
                let settle = |entry: (Instant, actyp_pipeline::Ticket),
                              latencies: &mut Vec<f64>,
                              completed: &mut u64,
                              failed: &mut u64|
                 -> Result<(), String> {
                    let (sent, ticket) = entry;
                    match manager.wait(ticket) {
                        Ok(allocations) => {
                            latencies.push(sent.elapsed().as_secs_f64());
                            *completed += 1;
                            for a in &allocations {
                                manager.release(a).map_err(|e| format!("release: {e}"))?;
                            }
                        }
                        Err(_) => *failed += 1,
                    }
                    Ok(())
                };
                // Count-bounded by default; `--duration` switches to a
                // time-bounded run (the deadline is checked per submit,
                // and in-flight tickets still drain fully afterwards).
                let mut submitted = 0usize;
                loop {
                    let done = match deadline {
                        Some(deadline) => Instant::now() >= deadline,
                        None => submitted >= requests,
                    };
                    if done {
                        break;
                    }
                    if in_flight.len() == depth {
                        let entry = in_flight.pop_front().expect("nonempty at capacity");
                        settle(entry, &mut latencies, &mut completed, &mut failed)?;
                    }
                    let ticket = manager
                        .submit(query.clone())
                        .map_err(|e| format!("submit: {e}"))?;
                    in_flight.push_back((Instant::now(), ticket));
                    submitted += 1;
                }
                while let Some(entry) = in_flight.pop_front() {
                    settle(entry, &mut latencies, &mut completed, &mut failed)?;
                }
                manager.shutdown().map_err(|e| format!("shutdown: {e}"))?;
                Ok((completed, failed, latencies))
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut latencies = actyp_simnet::SampleSet::new();
    for worker in workers {
        let (c, f, lat) = worker.join().map_err(|_| "client thread panicked")??;
        completed += c;
        failed += f;
        for l in lat {
            latencies.record(l);
        }
    }
    let elapsed = started.elapsed();
    for session in idle {
        let _ = session.shutdown();
    }
    Ok(LoadResult {
        completed,
        failed,
        elapsed,
        latencies,
    })
}

/// Saturation-sweep parameters, two sizes like [`Scale`]: the quick rows
/// keep CI fast; the paper rows push one daemon toward saturation.
struct SaturationParams {
    clients: usize,
    requests_per_client: usize,
    machines: usize,
    depths: Vec<usize>,
    idle_counts: Vec<usize>,
    client_counts: Vec<usize>,
}

fn saturation_params(scale: &Scale) -> SaturationParams {
    if scale_label(scale) == "quick" {
        SaturationParams {
            clients: 4,
            requests_per_client: 40,
            machines: 256,
            depths: vec![1, 4, 16],
            idle_counts: vec![0, 16, 64],
            client_counts: vec![2, 8],
        }
    } else {
        SaturationParams {
            clients: 16,
            requests_per_client: 200,
            machines: 1_024,
            depths: vec![1, 2, 4, 8, 16, 32],
            idle_counts: vec![0, 128, 512],
            client_counts: vec![4, 16, 64],
        }
    }
}

fn measured_artifact(
    topic: &str,
    scale: &Scale,
    x_name: &str,
    points: Vec<BenchPoint>,
) -> BenchArtifact {
    BenchArtifact {
        topic: topic.to_string(),
        kind: ArtifactKind::Measured,
        scale: scale_label(scale).to_string(),
        git_rev: git_rev(),
        x_name: x_name.to_string(),
        points,
    }
}

/// Pipelining-depth sweep: one reactor daemon, fixed clients, depth 1..N.
/// The paper's pipelined-submission claim as a throughput curve.
fn saturation_pipelining(scale: &Scale) -> Result<BenchArtifact, String> {
    let p = saturation_params(scale);
    let mut points = Vec::new();
    for &depth in &p.depths {
        let spec = LoadSpec {
            clients: p.clients,
            depth,
            requests_per_client: p.requests_per_client,
            machines: p.machines,
            ..LoadSpec::default()
        };
        points.push(run_load(&spec)?.point("reactor", depth as f64));
    }
    Ok(measured_artifact(
        "saturation_pipelining",
        scale,
        "depth",
        points,
    ))
}

/// Idle-session sweep: the same active load with a growing population of
/// silent connections, under both session architectures.  The reactor's
/// win is a flat curve where thread-per-session degrades.
fn saturation_idle(scale: &Scale) -> Result<BenchArtifact, String> {
    let p = saturation_params(scale);
    let modes = [
        (SessionMode::Reactor, "reactor"),
        (SessionMode::ThreadPerSession, "thread-per-session"),
    ];
    let mut points = Vec::new();
    for &idle_sessions in &p.idle_counts {
        for (mode, series) in modes {
            let spec = LoadSpec {
                clients: p.clients,
                requests_per_client: p.requests_per_client,
                machines: p.machines,
                idle_sessions,
                mode,
                ..LoadSpec::default()
            };
            points.push(run_load(&spec)?.point(series, idle_sessions as f64));
        }
    }
    Ok(measured_artifact(
        "saturation_idle",
        scale,
        "idle_sessions",
        points,
    ))
}

/// Backend matrix: every [`BackendKind`] behind the same daemon, swept
/// over client count.
fn saturation_backends(scale: &Scale) -> Result<BenchArtifact, String> {
    let p = saturation_params(scale);
    let kinds = [
        (BackendKind::Embedded, "embedded"),
        (BackendKind::Live, "live"),
        (BackendKind::CentralQueue, "central-queue"),
        (BackendKind::Matchmaker, "matchmaker"),
    ];
    let mut points = Vec::new();
    for &clients in &p.client_counts {
        for (backend, series) in kinds {
            let spec = LoadSpec {
                clients,
                requests_per_client: p.requests_per_client,
                machines: p.machines,
                backend,
                ..LoadSpec::default()
            };
            points.push(run_load(&spec)?.point(series, clients as f64));
        }
    }
    Ok(measured_artifact(
        "saturation_backends",
        scale,
        "clients",
        points,
    ))
}

/// Clients-times-cores sweep for the sharding work: the same closed-loop
/// load swept over client count, once with the daemon's hot state sharded
/// (the default shard count) and once clamped to a single shard — the
/// pre-shard daemon's global-lock behaviour, reproduced exactly since one
/// shard degenerates to one lock.  The sharded series bending above the
/// single-lock series as clients grow is the saturation-curve claim this
/// sweep exists to prove.
fn saturation_cores(scale: &Scale) -> Result<BenchArtifact, String> {
    let p = saturation_params(scale);
    let series = [(0usize, "sharded"), (1usize, "single-lock")];
    // The single lock only convoys once client threads oversubscribe the
    // box, so this sweep reaches higher than the shared client_counts do
    // at quick scale — 16 threads is where the curves separate even on a
    // small CI runner.
    let client_counts: Vec<usize> = if scale_label(scale) == "quick" {
        vec![2, 8, 16]
    } else {
        p.client_counts.clone()
    };
    let mut points = Vec::new();
    for &clients in &client_counts {
        // Contention is the measurand here, and its signal-to-noise is
        // poor on short runs (especially on small CI boxes), so this
        // topic stripes the load over 8 pools (one scheduling process
        // each — otherwise a single pool's scheduler thread is the
        // bottleneck and masks the lock behaviour entirely), runs 4x more
        // requests per cell than the other saturation sweeps,
        // *interleaves* the two series (machine-load drift would bias
        // whichever series ran last in a block), and keeps each series'
        // median-throughput run of five.
        let mut runs: [Vec<LoadResult>; 2] = [Vec::new(), Vec::new()];
        for _round in 0..5 {
            for (slot, (shards, _)) in series.iter().enumerate() {
                let spec = LoadSpec {
                    clients,
                    depth: 4,
                    requests_per_client: p.requests_per_client * 4,
                    machines: p.machines,
                    shards: *shards,
                    pools: 8,
                    ..LoadSpec::default()
                };
                runs[slot].push(run_load(&spec)?);
            }
        }
        for (slot, (_, label)) in series.iter().enumerate() {
            let mut series_runs = std::mem::take(&mut runs[slot]);
            series_runs.sort_by(|a, b| a.throughput().total_cmp(&b.throughput()));
            let median = series_runs.swap_remove(2);
            points.push(median.point(label, clients as f64));
        }
    }
    Ok(measured_artifact(
        "saturation_cores",
        scale,
        "clients",
        points,
    ))
}

/// WAN routing sweep: hops-to-first-allocation and delegation latency
/// for a query only one of the entry daemon's three peers can satisfy,
/// under three regimes of the learned routing plane.
///
/// * `cache-off` — the route cache is disabled and everything the entry
///   learned about the satisfying domain is forgotten between queries
///   (via [`FederatedBackend::retire_domain`]): every query is the
///   paper's baseline TTL-bounded chain walk through both decoys.
/// * `cache-on-cold` — the cache is enabled but the learned state is
///   likewise dropped between queries: the walk pays the same hops,
///   measuring that the learning itself costs nothing.
/// * `cache-on-warm` — state is kept: every repeat query rides the
///   learned route straight to the satisfying domain in one hop.
///
/// The peers are real daemons on loopback; the periodic gossip tick is
/// off so the regimes differ only in the learned state under test.
fn routing(scale: &Scale) -> Result<BenchArtifact, String> {
    let iterations = if scale_label(scale) == "quick" {
        30
    } else {
        200
    };
    const QUERY: &str = "punch.rsrc.arch = hp\n";
    const TARGET: &str = "upc";

    let spawn_peer = |domain: &str, arch: &str, seed: u64| {
        PipelineBuilder::new()
            .database(
                SyntheticFleet::new(FleetSpec::homogeneous(64, arch, 512), seed)
                    .generate()
                    .into_shared(),
            )
            .ttl(8)
            .serve_federated(
                &StageAddress::new("127.0.0.1", 0),
                BackendKind::Embedded,
                FederationConfig {
                    domain: domain.to_string(),
                    ttl: 8,
                    peers: Vec::new(),
                    gossip_interval: Duration::ZERO,
                    ..FederationConfig::default()
                },
            )
            .map(|(handle, _)| handle)
            .map_err(|e| format!("peer {domain}: {e}"))
    };
    // Two sun-only decoys ahead of the hp target in link order, so the
    // unlearned walk burns two hops before the satisfying domain.
    let decoy_a = spawn_peer("decoy-a", "sun", 0xB1)?;
    let decoy_b = spawn_peer("decoy-b", "sun", 0xB2)?;
    let target = spawn_peer(TARGET, "hp", 0xB3)?;

    let entry = |route_cache: bool| {
        PipelineBuilder::new()
            .database(
                SyntheticFleet::new(FleetSpec::homogeneous(64, "sun", 512), 0xB0)
                    .generate()
                    .into_shared(),
            )
            .ttl(8)
            .build_federated(
                BackendKind::Embedded,
                FederationConfig {
                    domain: "purdue".to_string(),
                    ttl: 8,
                    peers: vec![
                        decoy_a.local_addr(),
                        decoy_b.local_addr(),
                        target.local_addr(),
                    ],
                    gossip_interval: Duration::ZERO,
                    route_cache,
                    ..FederationConfig::default()
                },
            )
            .map_err(|e| format!("entry daemon: {e}"))
    };

    let measure = |fed: &FederatedBackend, series: &str, forget: bool| {
        // Prime outside the measurement: dials the links, creates the hp
        // pool on the target, and (when keeping state) learns the route.
        let primed = fed
            .submit_text_wait(QUERY)
            .map_err(|e| format!("{series} prime: {e}"))?;
        fed.release(&primed[0])
            .map_err(|e| format!("{series} prime release: {e}"))?;
        if forget {
            fed.retire_domain(TARGET);
        }
        let mut latencies = SampleSet::new();
        let mut hops_total = 0u64;
        let started = Instant::now();
        for _ in 0..iterations {
            let submitted = Instant::now();
            let allocations = fed
                .submit_text_wait(QUERY)
                .map_err(|e| format!("{series}: {e}"))?;
            latencies.record(submitted.elapsed().as_secs_f64());
            let chain = fed
                .last_chain()
                .ok_or_else(|| format!("{series}: no chain recorded"))?;
            hops_total += chain.visited.len().saturating_sub(1) as u64;
            fed.release(&allocations[0])
                .map_err(|e| format!("{series} release: {e}"))?;
            if forget {
                fed.retire_domain(TARGET);
            }
        }
        let elapsed = started.elapsed().as_secs_f64();
        Ok::<BenchPoint, String>(BenchPoint {
            series: series.to_string(),
            x: hops_total as f64 / iterations as f64,
            throughput: if elapsed > 0.0 {
                iterations as f64 / elapsed
            } else {
                0.0
            },
            mean: latencies.mean(),
            p50: latencies.quantile(0.50),
            p95: latencies.quantile(0.95),
            p99: latencies.quantile(0.99),
        })
    };

    let mut points = Vec::new();
    let off = entry(false)?;
    points.push(measure(&off, "cache-off", true)?);
    off.shutdown()
        .map_err(|e| format!("cache-off drain: {e}"))?;
    let cold = entry(true)?;
    points.push(measure(&cold, "cache-on-cold", true)?);
    cold.shutdown()
        .map_err(|e| format!("cache-on-cold drain: {e}"))?;
    let warm = entry(true)?;
    points.push(measure(&warm, "cache-on-warm", false)?);
    warm.shutdown()
        .map_err(|e| format!("cache-on-warm drain: {e}"))?;

    for peer in [decoy_a, decoy_b, target] {
        peer.halt();
        peer.join().map_err(|e| format!("peer drain: {e}"))?;
    }
    Ok(measured_artifact(
        "routing",
        scale,
        "hops_to_first_allocation",
        points,
    ))
}

/// Runs one topic to its artifact.  Unknown topics are an `Err`, so CLI
/// typos fail loudly instead of silently emitting nothing.
pub fn run_topic(topic: &str, scale: &Scale) -> Result<BenchArtifact, String> {
    match topic {
        "fig4_pools_lan" => Ok(artifact_from_runs(topic, scale, crate::fig4_runs(scale))),
        "fig5_pools_wan" => Ok(artifact_from_runs(topic, scale, crate::fig5_runs(scale))),
        "fig6_pool_size" => Ok(artifact_from_runs(topic, scale, crate::fig6_runs(scale))),
        "fig7_splitting" => Ok(artifact_from_runs(topic, scale, crate::fig7_runs(scale))),
        "fig8_replication" => Ok(artifact_from_runs(topic, scale, crate::fig8_runs(scale))),
        "fig9_cputime_dist" => Ok(fig9_artifact(scale)),
        "saturation_pipelining" => saturation_pipelining(scale),
        "saturation_idle" => saturation_idle(scale),
        "saturation_backends" => saturation_backends(scale),
        "saturation_cores" => saturation_cores(scale),
        "routing" => routing(scale),
        other => Err(format!(
            "unknown topic `{other}` (expected one of: {})",
            TOPICS.join(", ")
        )),
    }
}

/// The CSV series a figure binary prints for `topic` (the paper's plot).
pub fn run_series(topic: &str, scale: &Scale) -> Result<FigureSeries, String> {
    match topic {
        "fig4_pools_lan" => Ok(crate::fig4_pools_lan(scale)),
        "fig5_pools_wan" => Ok(crate::fig5_pools_wan(scale)),
        "fig6_pool_size" => Ok(crate::fig6_pool_size(scale)),
        "fig7_splitting" => Ok(crate::fig7_splitting(scale)),
        "fig8_replication" => Ok(crate::fig8_replication(scale)),
        "fig9_cputime_dist" => Ok(crate::fig9_cputime_dist(scale)),
        other => Err(format!("topic `{other}` has no CSV series")),
    }
}

/// The `main` of every figure binary: prints the paper's CSV series by
/// default, or the `BENCH_*.json` artifact with `--json`.
pub fn figure_main(topic: &str) {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let scale = Scale::from_env();
    if json {
        match run_topic(topic, &scale) {
            Ok(artifact) => print!("{}", artifact.to_pretty()),
            Err(e) => {
                eprintln!("{topic}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match run_series(topic, &scale) {
            Ok(series) => print!("{}", series.to_csv()),
            Err(e) => {
                eprintln!("{topic}: {e}");
                std::process::exit(1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// bench-check: tolerance-band comparison against the committed artifacts.
// ---------------------------------------------------------------------------

/// The default tolerance band: a fresh point may be up to this fraction
/// worse than the committed one before the comparison fails.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// The verdict of [`compare`]: empty `failures` means the fresh run is
/// within tolerance of the committed artifact.
#[derive(Debug)]
pub struct Comparison {
    /// Human-readable descriptions of every violated band.
    pub failures: Vec<String>,
    /// Points actually compared.
    pub compared_points: usize,
}

impl Comparison {
    /// `true` when no band was violated.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares a fresh run against the committed artifact.
///
/// Both artifacts must agree on topic, scale and x axis.  Every committed
/// point must exist in the fresh run (missing points fail).  For
/// [`ArtifactKind::Simulated`] topics each latency field may not exceed
/// `committed × (1 + tolerance)` and throughput may not fall below
/// `committed × (1 − tolerance)`; for [`ArtifactKind::Measured`] topics the
/// check is structural (finite ordered percentiles, nonzero throughput).
pub fn compare(committed: &BenchArtifact, fresh: &BenchArtifact, tolerance: f64) -> Comparison {
    let mut failures = Vec::new();
    if committed.topic != fresh.topic {
        failures.push(format!(
            "topic mismatch: committed `{}` vs fresh `{}`",
            committed.topic, fresh.topic
        ));
        return Comparison {
            failures,
            compared_points: 0,
        };
    }
    let topic = &committed.topic;
    if committed.scale != fresh.scale {
        failures.push(format!(
            "{topic}: scale mismatch: committed `{}` vs fresh `{}`",
            committed.scale, fresh.scale
        ));
    }
    if committed.x_name != fresh.x_name {
        failures.push(format!(
            "{topic}: x axis mismatch: committed `{}` vs fresh `{}`",
            committed.x_name, fresh.x_name
        ));
    }
    let mut compared = 0usize;
    for want in &committed.points {
        let found = fresh
            .points
            .iter()
            .find(|p| p.series == want.series && (p.x - want.x).abs() < 1e-9);
        let Some(got) = found else {
            failures.push(format!(
                "{topic}: point `{}` @ {}={} missing from the fresh run",
                want.series, committed.x_name, want.x
            ));
            continue;
        };
        compared += 1;
        let at = format!(
            "{topic} `{}` @ {}={}",
            want.series, committed.x_name, want.x
        );
        match committed.kind {
            ArtifactKind::Simulated => {
                for (name, fresh_v, committed_v) in [
                    ("mean", got.mean, want.mean),
                    ("p50", got.p50, want.p50),
                    ("p95", got.p95, want.p95),
                    ("p99", got.p99, want.p99),
                ] {
                    if fresh_v > committed_v * (1.0 + tolerance) + 1e-12 {
                        failures.push(format!(
                            "{at}: {name} regressed: {fresh_v:.6} exceeds committed \
                             {committed_v:.6} by more than {:.0}%",
                            tolerance * 100.0
                        ));
                    }
                }
                if got.throughput < want.throughput * (1.0 - tolerance) - 1e-12 {
                    failures.push(format!(
                        "{at}: throughput regressed: {:.6} is more than {:.0}% below \
                         committed {:.6}",
                        got.throughput,
                        tolerance * 100.0,
                        want.throughput
                    ));
                }
            }
            ArtifactKind::Measured => {
                let fields = [got.mean, got.p50, got.p95, got.p99, got.throughput];
                if fields.iter().any(|v| !v.is_finite()) {
                    failures.push(format!("{at}: non-finite measurement"));
                }
                if !(got.p50 <= got.p95 && got.p95 <= got.p99) {
                    failures.push(format!(
                        "{at}: percentiles out of order: p50={:.6} p95={:.6} p99={:.6}",
                        got.p50, got.p95, got.p99
                    ));
                }
                if got.throughput <= 0.0 {
                    failures.push(format!("{at}: zero throughput"));
                }
            }
        }
    }
    Comparison {
        failures,
        compared_points: compared,
    }
}

/// Writes `artifact` as `BENCH_<topic>.json` under `dir`, creating the
/// directory if needed.  Returns the path written.
pub fn write_artifact(dir: &Path, artifact: &BenchArtifact) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(artifact.file_name());
    let mut file =
        std::fs::File::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
    file.write_all(artifact.to_pretty().as_bytes())
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Loads a committed `BENCH_<topic>.json` from `dir`.
pub fn load_artifact(dir: &Path, topic: &str) -> Result<BenchArtifact, String> {
    let path = dir.join(format!("BENCH_{topic}.json"));
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    BenchArtifact::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(kind: ArtifactKind) -> BenchArtifact {
        BenchArtifact {
            topic: "fig4_pools_lan".to_string(),
            kind,
            scale: "quick".to_string(),
            git_rev: "abc1234".to_string(),
            x_name: "pools".to_string(),
            points: vec![
                BenchPoint {
                    series: "clients=4".to_string(),
                    x: 2.0,
                    throughput: 10.0,
                    mean: 1.0,
                    p50: 0.9,
                    p95: 2.0,
                    p99: 3.0,
                },
                BenchPoint {
                    series: "clients=4".to_string(),
                    x: 8.0,
                    throughput: 12.0,
                    mean: 0.8,
                    p50: 0.7,
                    p95: 1.5,
                    p99: 2.5,
                },
            ],
        }
    }

    #[test]
    fn artifact_round_trips_through_json_text() {
        let a = artifact(ArtifactKind::Simulated);
        let parsed = BenchArtifact::parse(&a.to_pretty()).expect("parses");
        assert_eq!(parsed, a);
        let m = artifact(ArtifactKind::Measured);
        assert_eq!(BenchArtifact::parse(&m.to_pretty()).expect("parses"), m);
    }

    #[test]
    fn schema_version_is_checked_on_parse() {
        let text = artifact(ArtifactKind::Simulated)
            .to_pretty()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = BenchArtifact::parse(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn identical_runs_compare_clean() {
        let a = artifact(ArtifactKind::Simulated);
        let verdict = compare(&a, &a, DEFAULT_TOLERANCE);
        assert!(verdict.passed(), "{:?}", verdict.failures);
        assert_eq!(verdict.compared_points, 2);
    }

    #[test]
    fn simulated_regression_beyond_tolerance_fails() {
        let committed = artifact(ArtifactKind::Simulated);
        let mut fresh = committed.clone();
        fresh.points[0].p95 = committed.points[0].p95 * 1.5;
        let verdict = compare(&committed, &fresh, 0.25);
        assert!(!verdict.passed());
        assert!(
            verdict.failures[0].contains("p95"),
            "{:?}",
            verdict.failures
        );

        // Throughput collapse fails too.
        let mut slow = committed.clone();
        slow.points[1].throughput = committed.points[1].throughput * 0.5;
        assert!(!compare(&committed, &slow, 0.25).passed());

        // Within the band passes.
        let mut close = committed.clone();
        close.points[0].p95 = committed.points[0].p95 * 1.1;
        close.points[1].throughput = committed.points[1].throughput * 0.9;
        assert!(compare(&committed, &close, 0.25).passed());
    }

    #[test]
    fn missing_points_and_axis_mismatches_fail() {
        let committed = artifact(ArtifactKind::Simulated);
        let mut fresh = committed.clone();
        fresh.points.remove(1);
        let verdict = compare(&committed, &fresh, 0.25);
        assert!(!verdict.passed());
        assert!(
            verdict.failures[0].contains("missing"),
            "{:?}",
            verdict.failures
        );

        let mut other_axis = committed.clone();
        other_axis.x_name = "clients".to_string();
        assert!(!compare(&committed, &other_axis, 0.25).passed());

        let mut other_topic = committed.clone();
        other_topic.topic = "fig5_pools_wan".to_string();
        assert!(!compare(&committed, &other_topic, 0.25).passed());
    }

    #[test]
    fn measured_comparison_is_structural() {
        let committed = artifact(ArtifactKind::Measured);
        // A much slower fresh run still passes: wall-clock numbers are
        // host-dependent.
        let mut slower = committed.clone();
        for p in &mut slower.points {
            p.mean *= 10.0;
            p.p50 *= 10.0;
            p.p95 *= 10.0;
            p.p99 *= 10.0;
            p.throughput /= 10.0;
        }
        assert!(compare(&committed, &slower, 0.25).passed());

        // But broken structure fails.
        let mut disordered = committed.clone();
        disordered.points[0].p95 = disordered.points[0].p99 * 2.0;
        assert!(!compare(&committed, &disordered, 0.25).passed());
        let mut idle = committed.clone();
        idle.points[0].throughput = 0.0;
        assert!(!compare(&committed, &idle, 0.25).passed());
    }

    #[test]
    fn unknown_topics_are_rejected() {
        assert!(run_topic("fig42", &Scale::quick()).is_err());
        assert!(scale_for_label("galactic").is_err());
        assert!(ArtifactKind::parse("guessed").is_err());
    }

    #[test]
    fn scale_labels_round_trip() {
        assert_eq!(scale_label(&Scale::quick()), "quick");
        assert_eq!(scale_label(&Scale::default()), "paper");
        assert_eq!(scale_for_label("quick").unwrap().machines, 640);
        assert_eq!(scale_for_label("paper").unwrap().machines, 3_200);
    }

    #[test]
    fn tiny_load_run_measures_the_daemon() {
        let spec = LoadSpec {
            clients: 2,
            depth: 2,
            requests_per_client: 6,
            machines: 64,
            idle_sessions: 1,
            ..LoadSpec::default()
        };
        let result = run_load(&spec).expect("load run succeeds");
        assert_eq!(result.completed, 12);
        assert_eq!(result.failed, 0);
        assert_eq!(result.latencies.len(), 12);
        assert!(result.throughput() > 0.0);
    }
}
