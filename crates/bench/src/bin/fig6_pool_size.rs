//! Regenerates the `fig6_pool_size` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep; pass `--json` to print the
//! `BENCH_fig6_pool_size.json` artifact instead of the CSV series.
fn main() {
    actyp_bench::harness::figure_main("fig6_pool_size");
}
