//! Regenerates the `fig6_pool_size` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep.
fn main() {
    let scale = actyp_bench::Scale::from_env();
    let series = actyp_bench::fig6_pool_size(&scale);
    print!("{}", series.to_csv());
}
