//! `bench_artifacts` — emit and gate the tracked `BENCH_*.json` artifacts.
//!
//! ```text
//! # regenerate every committed artifact at quick scale
//! ACTYP_QUICK=1 cargo run --release -p actyp-bench --bin bench_artifacts -- emit
//!
//! # gate a change: rerun each committed topic at its committed scale and
//! # compare within tolerance bands (exits nonzero on any regression)
//! cargo run --release -p actyp-bench --bin bench_artifacts -- check
//! ```
//!
//! `emit` runs at [`Scale::from_env`] (so `ACTYP_QUICK=1` selects the CI
//! scale); `check` reruns each topic at the scale recorded *in* the
//! committed artifact, so it needs no environment at all.  See
//! EXPERIMENTS.md for what each topic measures.

use std::path::PathBuf;

use actyp_bench::harness::{
    compare, load_artifact, run_topic, scale_for_label, write_artifact, DEFAULT_TOLERANCE, TOPICS,
};
use actyp_bench::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: bench_artifacts emit  [--dir DIR] [--topic T]...\n\
         \x20      bench_artifacts check [--dir DIR] [--topic T]... [--tolerance F]\n\
         \n\
         topics: {}\n\
         default --dir: benchmarks",
        TOPICS.join(", ")
    );
    std::process::exit(2);
}

struct Args {
    dir: PathBuf,
    topics: Vec<String>,
    tolerance: f64,
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        dir: PathBuf::from("benchmarks"),
        topics: Vec::new(),
        tolerance: DEFAULT_TOLERANCE,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--dir" => {
                i += 1;
                args.dir = PathBuf::from(argv.get(i).unwrap_or_else(|| usage()));
            }
            "--topic" => {
                i += 1;
                args.topics
                    .push(argv.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--tolerance" => {
                i += 1;
                args.tolerance = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    if args.topics.is_empty() {
        args.topics = TOPICS.iter().map(|t| t.to_string()).collect();
    }
    args
}

fn emit(args: &Args) -> Result<(), String> {
    let scale = Scale::from_env();
    for topic in &args.topics {
        let artifact = run_topic(topic, &scale)?;
        let path = write_artifact(&args.dir, &artifact)?;
        eprintln!(
            "emitted {} ({} points, scale {})",
            path.display(),
            artifact.points.len(),
            artifact.scale
        );
    }
    Ok(())
}

fn check(args: &Args) -> Result<(), String> {
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for topic in &args.topics {
        let committed = match load_artifact(&args.dir, topic) {
            Ok(a) => a,
            Err(e) => {
                failures.push(format!("{topic}: no committed artifact: {e}"));
                continue;
            }
        };
        let scale = scale_for_label(&committed.scale)?;
        let fresh = run_topic(topic, &scale)?;
        let verdict = compare(&committed, &fresh, args.tolerance);
        compared += verdict.compared_points;
        if verdict.passed() {
            eprintln!(
                "{topic}: ok ({} points within {:.0}%)",
                verdict.compared_points,
                args.tolerance * 100.0
            );
        } else {
            failures.extend(verdict.failures);
        }
    }
    if failures.is_empty() {
        eprintln!(
            "bench-check: {} topics, {compared} points, all within tolerance",
            args.topics.len()
        );
        Ok(())
    } else {
        for failure in &failures {
            eprintln!("bench-check: FAIL: {failure}");
        }
        Err(format!("{} band(s) violated", failures.len()))
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else { usage() };
    let args = parse_args(&argv[1..]);
    let result = match command.as_str() {
        "emit" => emit(&args),
        "check" => check(&args),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("bench_artifacts: {e}");
        std::process::exit(1);
    }
}
