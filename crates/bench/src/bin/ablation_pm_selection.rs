//! Regenerates the `ablation_pm_selection` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep.
fn main() {
    let scale = actyp_bench::Scale::from_env();
    let series = actyp_bench::ablation_pm_selection(&scale);
    print!("{}", series.to_csv());
}
