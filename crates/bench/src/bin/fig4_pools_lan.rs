//! Regenerates the `fig4_pools_lan` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep; pass `--json` to print the
//! `BENCH_fig4_pools_lan.json` artifact instead of the CSV series.
fn main() {
    actyp_bench::harness::figure_main("fig4_pools_lan");
}
