//! Regenerates the `fig4_pools_lan` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep.
fn main() {
    let scale = actyp_bench::Scale::from_env();
    let series = actyp_bench::fig4_pools_lan(&scale);
    print!("{}", series.to_csv());
}
