//! Regenerates the `fig7_splitting` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep.
fn main() {
    let scale = actyp_bench::Scale::from_env();
    let series = actyp_bench::fig7_splitting(&scale);
    print!("{}", series.to_csv());
}
