//! Regenerates the `fig7_splitting` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep; pass `--json` to print the
//! `BENCH_fig7_splitting.json` artifact instead of the CSV series.
fn main() {
    actyp_bench::harness::figure_main("fig7_splitting");
}
