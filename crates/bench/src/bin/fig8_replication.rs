//! Regenerates the `fig8_replication` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep; pass `--json` to print the
//! `BENCH_fig8_replication.json` artifact instead of the CSV series.
fn main() {
    actyp_bench::harness::figure_main("fig8_replication");
}
