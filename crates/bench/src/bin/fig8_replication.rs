//! Regenerates the `fig8_replication` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep.
fn main() {
    let scale = actyp_bench::Scale::from_env();
    let series = actyp_bench::fig8_replication(&scale);
    print!("{}", series.to_csv());
}
