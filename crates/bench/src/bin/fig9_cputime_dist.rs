//! Regenerates the `fig9_cputime_dist` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep; pass `--json` to print the
//! `BENCH_fig9_cputime_dist.json` artifact instead of the CSV series.
fn main() {
    actyp_bench::harness::figure_main("fig9_cputime_dist");
}
