//! Regenerates the `baseline_comparison` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep.
fn main() {
    let scale = actyp_bench::Scale::from_env();
    let series = actyp_bench::baseline_comparison(&scale);
    print!("{}", series.to_csv());
}
