//! Regenerates the `fig5_pools_wan` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep; pass `--json` to print the
//! `BENCH_fig5_pools_wan.json` artifact instead of the CSV series.
fn main() {
    actyp_bench::harness::figure_main("fig5_pools_wan");
}
