//! Regenerates the `fig5_pools_wan` series; see EXPERIMENTS.md.
//! Set `ACTYP_QUICK=1` for a reduced sweep.
fn main() {
    let scale = actyp_bench::Scale::from_env();
    let series = actyp_bench::fig5_pools_wan(&scale);
    print!("{}", series.to_csv());
}
