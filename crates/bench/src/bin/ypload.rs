//! `ypload` — load generator for a `ypd` daemon.
//!
//! Drives N concurrent client connections, each keeping D tickets in
//! flight (pipelined submission over one connection, the paper's batched
//! allocate/release loop), against a daemon self-hosted on loopback — or
//! against an external one with `--connect`.  Prints a summary line, or a
//! single `BENCH_*`-style JSON point with `--json`.
//!
//! ```text
//! ypload --clients 16 --depth 8 --requests 200 --backend live
//! ypd --listen 127.0.0.1:7431 --machines 1024 &
//! ypload --connect 127.0.0.1:7431 --clients 16 --depth 8
//! ```
//!
//! See EXPERIMENTS.md for the saturation sweeps built on this.

use actyp_bench::harness::{run_load, run_load_against, LoadSpec};
use actyp_bench::json::Json;
use actyp_pipeline::{BackendKind, SessionMode, StageAddress};

fn usage() -> ! {
    eprintln!(
        "usage: ypload [--connect HOST:PORT] [--clients N] [--depth D] [--requests N]\n\
         \x20             [--duration SECS] [--machines N] [--pools N] [--window N] [--shards N]\n\
         \x20             [--idle N] [--seed S] [--json] [--halt]\n\
         \x20             [--backend embedded|live|central-queue|matchmaker]\n\
         \x20             [--sessions reactor|threads]\n\
         \n\
         With --duration each client submits for SECS seconds instead of\n\
         counting --requests.  Self-hosts a ypd on loopback unless --connect\n\
         is given (then the --machines/--window/--shards/--backend/--sessions\n\
         flags are ignored: they describe the daemon, which already exists).\n\
         --halt asks the --connect daemon to drain after a clean run, so a\n\
         scripted daemon can be `wait`ed on."
    );
    std::process::exit(2);
}

fn parse_backend(s: &str) -> BackendKind {
    match s {
        "embedded" => BackendKind::Embedded,
        "live" => BackendKind::Live,
        "central-queue" => BackendKind::CentralQueue,
        "matchmaker" => BackendKind::Matchmaker,
        _ => usage(),
    }
}

fn main() {
    let mut spec = LoadSpec::default();
    let mut connect: Option<StageAddress> = None;
    let mut json = false;
    let mut halt = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> &str {
        *i += 1;
        argv.get(*i).map(String::as_str).unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--connect" => {
                connect = Some(value(&mut i).parse().unwrap_or_else(|e| {
                    eprintln!("ypload: bad --connect address: {e}");
                    std::process::exit(2);
                }))
            }
            "--clients" => spec.clients = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--depth" => spec.depth = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--requests" => {
                spec.requests_per_client = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--duration" => {
                let secs: f64 = value(&mut i).parse().unwrap_or_else(|_| usage());
                if !secs.is_finite() || secs <= 0.0 {
                    usage();
                }
                spec.duration = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--machines" => spec.machines = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--pools" => spec.pools = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--window" => spec.window = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--shards" => spec.shards = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--idle" => spec.idle_sessions = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => spec.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--backend" => spec.backend = parse_backend(value(&mut i)),
            "--sessions" => {
                spec.mode = match value(&mut i) {
                    "reactor" => SessionMode::Reactor,
                    "threads" => SessionMode::ThreadPerSession,
                    _ => usage(),
                }
            }
            "--json" => json = true,
            "--halt" => halt = true,
            _ => usage(),
        }
        i += 1;
    }

    let result = match &connect {
        Some(addr) => run_load_against(addr, &spec),
        None => run_load(&spec),
    };
    let mut result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ypload: {e}");
            std::process::exit(1);
        }
    };

    let throughput = result.throughput();
    let (mean, p50, p95, p99, p999) = (
        result.latencies.mean(),
        result.latencies.quantile(0.50),
        result.latencies.quantile(0.95),
        result.latencies.quantile(0.99),
        result.latencies.quantile(0.999),
    );
    if json {
        let point = Json::obj(vec![
            ("clients", Json::Num(spec.clients as f64)),
            ("depth", Json::Num(spec.depth as f64)),
            ("idle_sessions", Json::Num(spec.idle_sessions as f64)),
            ("completed", Json::Num(result.completed as f64)),
            ("failed", Json::Num(result.failed as f64)),
            ("elapsed_secs", Json::Num(result.elapsed.as_secs_f64())),
            ("throughput", Json::Num(throughput)),
            ("mean", Json::Num(mean)),
            ("p50", Json::Num(p50)),
            ("p95", Json::Num(p95)),
            ("p99", Json::Num(p99)),
            ("p99_9", Json::Num(p999)),
        ]);
        print!("{}", point.to_pretty());
    } else {
        println!(
            "ypload: {} clients x depth {} -> {} completed, {} failed in {:.3}s \
             ({:.1} req/s; latency mean {:.2}ms p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms \
             p99.9 {:.2}ms)",
            spec.clients,
            spec.depth,
            result.completed,
            result.failed,
            result.elapsed.as_secs_f64(),
            throughput,
            mean * 1e3,
            p50 * 1e3,
            p95 * 1e3,
            p99 * 1e3,
            p999 * 1e3,
        );
    }
    if result.failed > 0 {
        std::process::exit(1);
    }
    if halt {
        let Some(addr) = &connect else {
            // A self-hosted daemon already drained when run_load returned.
            return;
        };
        match actyp_pipeline::PipelineBuilder::remote(addr) {
            Ok(manager) => {
                if let Err(e) = manager.halt_daemon() {
                    eprintln!("ypload: --halt failed: {e}");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("ypload: --halt could not reconnect: {e}");
                std::process::exit(1);
            }
        }
    }
}
