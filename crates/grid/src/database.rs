//! The "white pages" resource database.
//!
//! The paper's directory-services subsystem is a database holding one record
//! per machine (Figure 3).  Resource pools *walk* this database at creation
//! time looking for machines that match the criteria encoded in their name,
//! cache the matches locally, and mark them as *taken* in the main database
//! so that other pools do not aggregate the same machines.  The database is
//! shared by every pool manager and pool object within an administrative
//! domain, so the shared handle type wraps it in a reader/writer lock.

use std::collections::BTreeMap;
use std::sync::Arc;

use actyp_simnet::SimTime;
use parking_lot::RwLock;

use crate::machine::{Machine, MachineId, MachineState};

/// Who has claimed a machine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TakenBy {
    /// Name of the resource pool that aggregated the machine.
    pub pool_name: String,
    /// Instance number of that pool (pools can be replicated; replicas share
    /// the machine set, so the first instance records the claim).
    pub instance: u32,
}

/// The white-pages database: one record per machine plus the taken marks.
#[derive(Debug, Default)]
pub struct ResourceDatabase {
    machines: BTreeMap<MachineId, Machine>,
    taken: BTreeMap<MachineId, TakenBy>,
    next_id: u64,
}

/// Shared handle used by pool managers, pool objects and the monitor.
pub type SharedDatabase = Arc<RwLock<ResourceDatabase>>;

impl ResourceDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a database in the shared handle used across pipeline stages.
    pub fn into_shared(self) -> SharedDatabase {
        Arc::new(RwLock::new(self))
    }

    /// Registers a machine, assigning it a fresh id.  Returns the id.
    pub fn register(&mut self, mut machine: Machine) -> MachineId {
        let id = MachineId(self.next_id);
        self.next_id += 1;
        machine.id = id;
        self.machines.insert(id, machine);
        id
    }

    /// Number of machines in the database.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Looks up a machine by id.
    pub fn get(&self, id: MachineId) -> Option<&Machine> {
        self.machines.get(&id)
    }

    /// Mutable access to a machine by id.
    pub fn get_mut(&mut self, id: MachineId) -> Option<&mut Machine> {
        self.machines.get_mut(&id)
    }

    /// Looks up a machine by host name.
    pub fn find_by_name(&self, name: &str) -> Option<&Machine> {
        self.machines.values().find(|m| m.name == name)
    }

    /// Iterates over all machines.
    pub fn iter(&self) -> impl Iterator<Item = &Machine> {
        self.machines.values()
    }

    /// Walks the database returning the ids of machines that satisfy the
    /// predicate and are not already taken by another pool.  This is the
    /// operation a pool object performs at initialisation time.
    pub fn walk_untaken<F>(&self, mut predicate: F) -> Vec<MachineId>
    where
        F: FnMut(&Machine) -> bool,
    {
        self.machines
            .values()
            .filter(|m| !self.taken.contains_key(&m.id))
            .filter(|m| predicate(m))
            .map(|m| m.id)
            .collect()
    }

    /// Walks the database returning ids of all machines that satisfy the
    /// predicate, regardless of taken marks (used for reporting and by the
    /// centralized baselines, which have no notion of pools).
    pub fn walk<F>(&self, mut predicate: F) -> Vec<MachineId>
    where
        F: FnMut(&Machine) -> bool,
    {
        self.machines
            .values()
            .filter(|m| predicate(m))
            .map(|m| m.id)
            .collect()
    }

    /// Marks a machine as taken by a pool.  Fails (returning `false`) if the
    /// machine does not exist or is already taken by a *different* pool;
    /// re-claiming by the same pool name is idempotent.
    pub fn mark_taken(&mut self, id: MachineId, by: TakenBy) -> bool {
        if !self.machines.contains_key(&id) {
            return false;
        }
        match self.taken.get(&id) {
            Some(existing) if existing.pool_name != by.pool_name => false,
            _ => {
                self.taken.insert(id, by);
                true
            }
        }
    }

    /// Clears the taken mark on a machine (pool destroyed or split).
    pub fn release_taken(&mut self, id: MachineId) {
        self.taken.remove(&id);
    }

    /// Returns who has taken a machine, if anyone.
    pub fn taken_by(&self, id: MachineId) -> Option<&TakenBy> {
        self.taken.get(&id)
    }

    /// Number of machines currently claimed by pools.
    pub fn taken_count(&self) -> usize {
        self.taken.len()
    }

    /// Updates the monitored fields of a machine.  Returns `false` if the
    /// machine is unknown.
    pub fn update_dynamic<F>(&mut self, id: MachineId, now: SimTime, update: F) -> bool
    where
        F: FnOnce(&mut Machine),
    {
        match self.machines.get_mut(&id) {
            Some(m) => {
                update(m);
                m.dynamic.last_update = now;
                true
            }
            None => false,
        }
    }

    /// Sets the availability state of a machine (field 1).
    pub fn set_state(&mut self, id: MachineId, state: MachineState) -> bool {
        match self.machines.get_mut(&id) {
            Some(m) => {
                m.state = state;
                true
            }
            None => false,
        }
    }

    /// Count of machines in each availability state: `(up, down, blocked)`.
    pub fn state_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for m in self.machines.values() {
            match m.state {
                MachineState::Up => counts.0 += 1,
                MachineState::Down => counts.1 += 1,
                MachineState::Blocked => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn sample_db() -> ResourceDatabase {
        let mut db = ResourceDatabase::new();
        for i in 0..10 {
            let arch = if i % 2 == 0 { "sun" } else { "hp" };
            db.register(
                Machine::new(MachineId(0), format!("host{i:02}"))
                    .with_param("arch", arch)
                    .with_param("memory", 128u64 * (1 + i)),
            );
        }
        db
    }

    fn taken(pool: &str) -> TakenBy {
        TakenBy {
            pool_name: pool.to_string(),
            instance: 0,
        }
    }

    #[test]
    fn register_assigns_unique_ids() {
        let db = sample_db();
        assert_eq!(db.len(), 10);
        let ids: std::collections::HashSet<_> = db.iter().map(|m| m.id).collect();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn find_by_name_and_get() {
        let db = sample_db();
        let m = db.find_by_name("host03").unwrap();
        assert_eq!(db.get(m.id).unwrap().name, "host03");
        assert!(db.find_by_name("missing").is_none());
        assert!(db.get(MachineId(999)).is_none());
    }

    #[test]
    fn walk_filters_by_predicate() {
        let db = sample_db();
        let suns = db.walk(|m| {
            m.attribute("arch")
                .map(|a| a.contains("sun"))
                .unwrap_or(false)
        });
        assert_eq!(suns.len(), 5);
    }

    #[test]
    fn walk_untaken_excludes_taken_machines() {
        let mut db = sample_db();
        let all = db.walk_untaken(|_| true);
        assert_eq!(all.len(), 10);
        assert!(db.mark_taken(all[0], taken("pool-a")));
        assert!(db.mark_taken(all[1], taken("pool-a")));
        let rest = db.walk_untaken(|_| true);
        assert_eq!(rest.len(), 8);
        assert!(!rest.contains(&all[0]));
        assert_eq!(db.taken_count(), 2);
    }

    #[test]
    fn taken_marks_are_exclusive_between_pools_but_idempotent_within() {
        let mut db = sample_db();
        let id = db.iter().next().unwrap().id;
        assert!(db.mark_taken(id, taken("pool-a")));
        assert!(db.mark_taken(id, taken("pool-a"))); // idempotent
        assert!(!db.mark_taken(id, taken("pool-b"))); // exclusive
        assert_eq!(db.taken_by(id).unwrap().pool_name, "pool-a");
        db.release_taken(id);
        assert!(db.mark_taken(id, taken("pool-b")));
    }

    #[test]
    fn mark_taken_on_unknown_machine_fails() {
        let mut db = sample_db();
        assert!(!db.mark_taken(MachineId(4242), taken("pool-a")));
    }

    #[test]
    fn update_dynamic_touches_last_update() {
        let mut db = sample_db();
        let id = db.iter().next().unwrap().id;
        let now = SimTime::from_nanos(5_000);
        assert!(db.update_dynamic(id, now, |m| m.dynamic.current_load = 2.5));
        let m = db.get(id).unwrap();
        assert_eq!(m.dynamic.current_load, 2.5);
        assert_eq!(m.dynamic.last_update, now);
        assert!(!db.update_dynamic(MachineId(999), now, |_| {}));
    }

    #[test]
    fn state_changes_and_counts() {
        let mut db = sample_db();
        let ids: Vec<MachineId> = db.iter().map(|m| m.id).collect();
        db.set_state(ids[0], MachineState::Down);
        db.set_state(ids[1], MachineState::Blocked);
        assert_eq!(db.state_counts(), (8, 1, 1));
        assert!(!db.set_state(MachineId(777), MachineState::Down));
    }

    #[test]
    fn shared_handle_allows_concurrent_readers() {
        let db = sample_db().into_shared();
        let a = db.clone();
        let b = db.clone();
        let ra = a.read();
        let rb = b.read();
        assert_eq!(ra.len(), rb.len());
    }
}
