//! Typed attribute values.
//!
//! Administrators describe machines with key/value pairs whose values can be
//! numbers (memory in megabytes, SPECfp ratings), strings (architecture,
//! domain), or lists (the `cms=sge,pbs,condor` example from the paper).  The
//! query language compares query values against these machine values, so the
//! type lives here in the substrate crate that both sides depend on.

use std::fmt;

/// A machine attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Numeric value (memory sizes use megabytes as the default unit, as in
    /// the paper's example query).
    Num(f64),
    /// String value (architecture, operating-system type, owner, domain, …).
    Str(String),
    /// List of strings (e.g. supported cluster-management systems).
    List(Vec<String>),
    /// Boolean flag.
    Bool(bool),
}

impl AttrValue {
    /// Builds a string attribute.
    pub fn str(s: impl Into<String>) -> Self {
        AttrValue::Str(s.into())
    }

    /// Builds a numeric attribute.
    pub fn num(n: f64) -> Self {
        AttrValue::Num(n)
    }

    /// Builds a list attribute.
    pub fn list<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        AttrValue::List(items.into_iter().map(Into::into).collect())
    }

    /// Numeric view of the value, if it has one.  Strings that parse as
    /// numbers are accepted because administrators write `memory = 512` as
    /// text in configuration files.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(n) => Some(*n),
            AttrValue::Str(s) => s.trim().parse().ok(),
            AttrValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            AttrValue::List(_) => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether the value, viewed as a set, contains `item` (case-insensitive).
    /// A scalar string is treated as a one-element set.
    pub fn contains(&self, item: &str) -> bool {
        match self {
            AttrValue::List(items) => items.iter().any(|i| i.eq_ignore_ascii_case(item)),
            AttrValue::Str(s) => s.eq_ignore_ascii_case(item),
            _ => false,
        }
    }

    /// Canonical text rendering, used when constructing pool identifiers.
    pub fn canonical(&self) -> String {
        match self {
            AttrValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            AttrValue::Str(s) => s.to_ascii_lowercase(),
            AttrValue::List(items) => {
                let mut sorted: Vec<String> =
                    items.iter().map(|s| s.to_ascii_lowercase()).collect();
                sorted.sort();
                sorted.join(",")
            }
            AttrValue::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.canonical())
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<f64> for AttrValue {
    fn from(n: f64) -> Self {
        AttrValue::Num(n)
    }
}

impl From<u64> for AttrValue {
    fn from(n: u64) -> Self {
        AttrValue::Num(n as f64)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(AttrValue::num(512.0).as_num(), Some(512.0));
        assert_eq!(AttrValue::str("256").as_num(), Some(256.0));
        assert_eq!(AttrValue::str(" 128 ").as_num(), Some(128.0));
        assert_eq!(AttrValue::str("sun").as_num(), None);
        assert_eq!(AttrValue::from(true).as_num(), Some(1.0));
        assert_eq!(AttrValue::list(["a"]).as_num(), None);
    }

    #[test]
    fn contains_is_case_insensitive() {
        let cms = AttrValue::list(["SGE", "pbs", "Condor"]);
        assert!(cms.contains("sge"));
        assert!(cms.contains("CONDOR"));
        assert!(!cms.contains("lsf"));
        assert!(AttrValue::str("Sun").contains("sun"));
        assert!(!AttrValue::num(5.0).contains("5"));
    }

    #[test]
    fn canonical_is_stable_and_lowercase() {
        assert_eq!(AttrValue::str("SUN").canonical(), "sun");
        assert_eq!(AttrValue::num(10.0).canonical(), "10");
        assert_eq!(AttrValue::num(2.5).canonical(), "2.5");
        assert_eq!(
            AttrValue::list(["pbs", "SGE", "condor"]).canonical(),
            "condor,pbs,sge"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(3u64), AttrValue::Num(3.0));
        assert_eq!(AttrValue::from(2.5), AttrValue::Num(2.5));
        assert_eq!(AttrValue::from(false), AttrValue::Bool(false));
    }

    #[test]
    fn display_matches_canonical() {
        let v = AttrValue::list(["B", "a"]);
        assert_eq!(format!("{v}"), "a,b");
    }
}
