//! Synthetic resource monitoring.
//!
//! The paper delegates monitoring to an external system (an open-source
//! version of SGI's Performance Co-Pilot was being evaluated) whose only job
//! is to keep fields 2–7 of the database fresh.  For the reproduction we
//! synthesise that signal: each monitoring sweep perturbs every machine's
//! load and memory with a bounded random walk plus the load contributed by
//! the jobs PUNCH itself has placed there.  This gives schedulers realistic,
//! time-varying data without modelling the external workload in detail.

use actyp_simnet::{Rng, SimDuration, SimTime};

use crate::database::ResourceDatabase;
use crate::machine::MachineState;

/// Configuration of the synthetic monitor.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Interval between monitoring sweeps.
    pub interval: SimDuration,
    /// Maximum absolute change in load per sweep from external activity.
    pub load_walk_step: f64,
    /// Fraction of total memory each sweep may shift (0–1).
    pub memory_walk_step: f64,
    /// Load ceiling used to clamp the random walk.
    pub max_external_load: f64,
    /// Probability per sweep that a machine fails (goes `Down`).
    pub failure_probability: f64,
    /// Probability per sweep that a `Down` machine recovers.
    pub recovery_probability: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval: SimDuration::from_secs(30),
            load_walk_step: 0.25,
            memory_walk_step: 0.05,
            max_external_load: 4.0,
            failure_probability: 0.0,
            recovery_probability: 0.0,
        }
    }
}

/// The synthetic resource-monitoring service.
#[derive(Debug)]
pub struct ResourceMonitor {
    config: MonitorConfig,
    rng: Rng,
    sweeps: u64,
}

impl ResourceMonitor {
    /// Creates a monitor with the given configuration and RNG seed.
    pub fn new(config: MonitorConfig, seed: u64) -> Self {
        ResourceMonitor {
            config,
            rng: Rng::new(seed),
            sweeps: 0,
        }
    }

    /// The configured sweep interval.
    pub fn interval(&self) -> SimDuration {
        self.config.interval
    }

    /// Number of sweeps performed so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Performs one monitoring sweep at virtual time `now`, updating the
    /// dynamic fields of every machine in the database.
    pub fn sweep(&mut self, db: &mut ResourceDatabase, now: SimTime) {
        self.sweeps += 1;
        let ids: Vec<_> = db.iter().map(|m| m.id).collect();
        for id in ids {
            // Possibly flip availability first.
            if self.config.failure_probability > 0.0 || self.config.recovery_probability > 0.0 {
                let state = db.get(id).map(|m| m.state);
                match state {
                    Some(MachineState::Up) if self.rng.chance(self.config.failure_probability) => {
                        db.set_state(id, MachineState::Down);
                    }
                    Some(MachineState::Down)
                        if self.rng.chance(self.config.recovery_probability) =>
                    {
                        db.set_state(id, MachineState::Up);
                    }
                    _ => {}
                }
            }

            let step = self.config.load_walk_step;
            let mem_step = self.config.memory_walk_step;
            let max_load = self.config.max_external_load;
            let delta_load = self.rng.range_f64(-step, step);
            let delta_mem_frac = self.rng.range_f64(-mem_step, mem_step);
            db.update_dynamic(id, now, |m| {
                let punch_load = m.dynamic.active_jobs as f64 / m.num_cpus.max(1) as f64;
                let external =
                    (m.dynamic.current_load - punch_load + delta_load).clamp(0.0, max_load);
                m.dynamic.current_load = external + punch_load;

                let total_mem = m
                    .attribute("memory")
                    .and_then(|v| v.as_num())
                    .unwrap_or(512.0);
                let mem = (m.dynamic.available_memory_mb + delta_mem_frac * total_mem)
                    .clamp(0.0, total_mem);
                m.dynamic.available_memory_mb = mem;
                m.dynamic.available_swap_mb =
                    (m.dynamic.available_swap_mb).clamp(0.0, 2.0 * total_mem);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineId};

    fn db_with(n: usize) -> ResourceDatabase {
        let mut db = ResourceDatabase::new();
        for i in 0..n {
            let mut m = Machine::new(MachineId(0), format!("host{i}"))
                .with_param("arch", "sun")
                .with_param("memory", 512u64);
            m.dynamic.available_memory_mb = 256.0;
            db.register(m);
        }
        db
    }

    #[test]
    fn sweep_updates_every_machine_timestamp() {
        let mut db = db_with(20);
        let mut monitor = ResourceMonitor::new(MonitorConfig::default(), 1);
        let now = SimTime::from_nanos(42);
        monitor.sweep(&mut db, now);
        assert!(db.iter().all(|m| m.dynamic.last_update == now));
        assert_eq!(monitor.sweeps(), 1);
    }

    #[test]
    fn load_stays_within_bounds() {
        let mut db = db_with(10);
        let mut monitor = ResourceMonitor::new(
            MonitorConfig {
                load_walk_step: 1.0,
                max_external_load: 2.0,
                ..MonitorConfig::default()
            },
            7,
        );
        for step in 0..200 {
            monitor.sweep(&mut db, SimTime::from_nanos(step));
        }
        for m in db.iter() {
            assert!(m.dynamic.current_load >= 0.0);
            assert!(m.dynamic.current_load <= 2.0 + 1e-9);
            let total = 512.0;
            assert!(m.dynamic.available_memory_mb >= 0.0);
            assert!(m.dynamic.available_memory_mb <= total);
        }
    }

    #[test]
    fn punch_jobs_contribute_to_load() {
        let mut db = db_with(1);
        let id = db.iter().next().unwrap().id;
        db.update_dynamic(id, SimTime::ZERO, |m| m.dynamic.active_jobs = 4);
        let mut monitor = ResourceMonitor::new(
            MonitorConfig {
                load_walk_step: 0.0,
                ..MonitorConfig::default()
            },
            3,
        );
        monitor.sweep(&mut db, SimTime::from_nanos(1));
        // One CPU, four PUNCH jobs: load must be at least 4.
        assert!(db.get(id).unwrap().dynamic.current_load >= 4.0);
    }

    #[test]
    fn failures_and_recoveries_toggle_state() {
        let mut db = db_with(50);
        let mut monitor = ResourceMonitor::new(
            MonitorConfig {
                failure_probability: 0.5,
                recovery_probability: 0.0,
                ..MonitorConfig::default()
            },
            11,
        );
        for step in 0..10 {
            monitor.sweep(&mut db, SimTime::from_nanos(step));
        }
        let (_, down, _) = db.state_counts();
        assert!(
            down > 0,
            "with p=0.5 over 10 sweeps some machines must fail"
        );

        let mut recovering = ResourceMonitor::new(
            MonitorConfig {
                failure_probability: 0.0,
                recovery_probability: 1.0,
                ..MonitorConfig::default()
            },
            12,
        );
        recovering.sweep(&mut db, SimTime::from_nanos(100));
        assert_eq!(db.state_counts().1, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut db1 = db_with(10);
        let mut db2 = db_with(10);
        let mut m1 = ResourceMonitor::new(MonitorConfig::default(), 99);
        let mut m2 = ResourceMonitor::new(MonitorConfig::default(), 99);
        for step in 0..20 {
            m1.sweep(&mut db1, SimTime::from_nanos(step));
            m2.sweep(&mut db2, SimTime::from_nanos(step));
        }
        for (a, b) in db1.iter().zip(db2.iter()) {
            assert_eq!(a.dynamic.current_load, b.dynamic.current_load);
            assert_eq!(a.dynamic.available_memory_mb, b.dynamic.available_memory_mb);
        }
    }
}
