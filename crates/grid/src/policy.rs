//! Usage policies.
//!
//! Field 19 of the paper's resource-database record is "designed to point to
//! a PUNCH metaprogram that would allow administrators to specify complex
//! usage policies (e.g. public users are only allowed to access this machine
//! if its load is below a specified threshold)" — the paper notes the field
//! was not yet implemented.  We implement the capability with a small,
//! composable predicate language that covers the examples the paper gives
//! while remaining easy to evaluate inside the scheduling hot path.

/// The evaluation context a policy sees: who is asking and what the machine
/// currently looks like.
#[derive(Debug, Clone)]
pub struct PolicyContext<'a> {
    /// Access group of the requesting user (e.g. `ece`, `public`).
    pub user_group: &'a str,
    /// Login of the requesting user.
    pub user_login: &'a str,
    /// Current load average of the machine.
    pub current_load: f64,
    /// Hour of (virtual) day, 0–23, for time-of-day policies.
    pub hour_of_day: u8,
}

/// An administrator-defined usage policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum UsagePolicy {
    /// Admit everyone (the database default when no policy is configured).
    #[default]
    Always,
    /// Admit no one (machine reserved, e.g. during maintenance).
    Never,
    /// Admit only if the current load is strictly below the threshold.
    LoadBelow(f64),
    /// Admit only members of one of the listed access groups.
    GroupIn(Vec<String>),
    /// Admit every group except the listed ones.
    GroupNotIn(Vec<String>),
    /// Admit only the listed logins.
    UserIn(Vec<String>),
    /// Admit only during the half-open hour range `[start, end)`.  A range
    /// with `start > end` wraps around midnight.
    HoursBetween(u8, u8),
    /// Both sub-policies must admit.
    And(Box<UsagePolicy>, Box<UsagePolicy>),
    /// Either sub-policy may admit.
    Or(Box<UsagePolicy>, Box<UsagePolicy>),
    /// Admit exactly when the sub-policy rejects.
    Not(Box<UsagePolicy>),
}

impl UsagePolicy {
    /// Convenience constructor for the paper's example policy: public users
    /// may only use the machine when its load is below `threshold`; all
    /// other groups are always admitted.
    pub fn public_only_when_idle(threshold: f64) -> UsagePolicy {
        UsagePolicy::Or(
            Box::new(UsagePolicy::GroupNotIn(vec!["public".to_string()])),
            Box::new(UsagePolicy::LoadBelow(threshold)),
        )
    }

    /// Combines two policies with logical AND.
    pub fn and(self, other: UsagePolicy) -> UsagePolicy {
        UsagePolicy::And(Box::new(self), Box::new(other))
    }

    /// Combines two policies with logical OR.
    pub fn or(self, other: UsagePolicy) -> UsagePolicy {
        UsagePolicy::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the policy against a request context.
    pub fn admits(&self, ctx: &PolicyContext<'_>) -> bool {
        match self {
            UsagePolicy::Always => true,
            UsagePolicy::Never => false,
            UsagePolicy::LoadBelow(threshold) => ctx.current_load < *threshold,
            UsagePolicy::GroupIn(groups) => groups
                .iter()
                .any(|g| g.eq_ignore_ascii_case(ctx.user_group)),
            UsagePolicy::GroupNotIn(groups) => !groups
                .iter()
                .any(|g| g.eq_ignore_ascii_case(ctx.user_group)),
            UsagePolicy::UserIn(users) => {
                users.iter().any(|u| u.eq_ignore_ascii_case(ctx.user_login))
            }
            UsagePolicy::HoursBetween(start, end) => {
                let h = ctx.hour_of_day % 24;
                if start <= end {
                    h >= *start && h < *end
                } else {
                    h >= *start || h < *end
                }
            }
            UsagePolicy::And(a, b) => a.admits(ctx) && b.admits(ctx),
            UsagePolicy::Or(a, b) => a.admits(ctx) || b.admits(ctx),
            UsagePolicy::Not(inner) => !inner.admits(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(group: &'static str, load: f64, hour: u8) -> PolicyContext<'static> {
        PolicyContext {
            user_group: group,
            user_login: "kapadia",
            current_load: load,
            hour_of_day: hour,
        }
    }

    #[test]
    fn always_and_never() {
        assert!(UsagePolicy::Always.admits(&ctx("public", 99.0, 3)));
        assert!(!UsagePolicy::Never.admits(&ctx("ece", 0.0, 3)));
    }

    #[test]
    fn load_threshold() {
        let p = UsagePolicy::LoadBelow(2.0);
        assert!(p.admits(&ctx("public", 1.9, 0)));
        assert!(!p.admits(&ctx("public", 2.0, 0)));
    }

    #[test]
    fn group_membership_is_case_insensitive() {
        let p = UsagePolicy::GroupIn(vec!["ECE".into(), "me".into()]);
        assert!(p.admits(&ctx("ece", 0.0, 0)));
        assert!(!p.admits(&ctx("physics", 0.0, 0)));
        let n = UsagePolicy::GroupNotIn(vec!["public".into()]);
        assert!(n.admits(&ctx("ece", 0.0, 0)));
        assert!(!n.admits(&ctx("PUBLIC", 0.0, 0)));
    }

    #[test]
    fn user_allow_list() {
        let p = UsagePolicy::UserIn(vec!["kapadia".into()]);
        assert!(p.admits(&ctx("ece", 0.0, 0)));
        let q = UsagePolicy::UserIn(vec!["royo".into()]);
        assert!(!q.admits(&ctx("ece", 0.0, 0)));
    }

    #[test]
    fn hour_ranges_including_wraparound() {
        let day = UsagePolicy::HoursBetween(8, 18);
        assert!(day.admits(&ctx("ece", 0.0, 8)));
        assert!(day.admits(&ctx("ece", 0.0, 17)));
        assert!(!day.admits(&ctx("ece", 0.0, 18)));
        assert!(!day.admits(&ctx("ece", 0.0, 3)));

        let night = UsagePolicy::HoursBetween(22, 6);
        assert!(night.admits(&ctx("ece", 0.0, 23)));
        assert!(night.admits(&ctx("ece", 0.0, 2)));
        assert!(!night.admits(&ctx("ece", 0.0, 12)));
    }

    #[test]
    fn paper_example_policy() {
        // Public users only below load 1.0; ece users always admitted.
        let p = UsagePolicy::public_only_when_idle(1.0);
        assert!(p.admits(&ctx("ece", 5.0, 0)));
        assert!(p.admits(&ctx("public", 0.5, 0)));
        assert!(!p.admits(&ctx("public", 1.5, 0)));
    }

    #[test]
    fn boolean_combinators() {
        let p = UsagePolicy::GroupIn(vec!["ece".into()]).and(UsagePolicy::LoadBelow(2.0));
        assert!(p.admits(&ctx("ece", 1.0, 0)));
        assert!(!p.admits(&ctx("ece", 3.0, 0)));
        assert!(!p.admits(&ctx("public", 1.0, 0)));

        let q = UsagePolicy::Never.or(UsagePolicy::Always);
        assert!(q.admits(&ctx("x", 0.0, 0)));

        let r = UsagePolicy::Not(Box::new(UsagePolicy::GroupIn(vec!["public".into()])));
        assert!(r.admits(&ctx("ece", 0.0, 0)));
        assert!(!r.admits(&ctx("public", 0.0, 0)));
    }

    #[test]
    fn default_is_always() {
        assert_eq!(UsagePolicy::default(), UsagePolicy::Always);
    }
}
