//! Synthetic fleet generation.
//!
//! The paper's controlled experiments run against "a database of 3,200
//! machines" (Figures 4–8).  This module builds such databases: a
//! [`FleetSpec`] describes the mix of architectures, memory sizes, domains
//! and tool groups, and [`SyntheticFleet::generate`] produces a populated
//! [`ResourceDatabase`] deterministically from a seed.

use actyp_simnet::Rng;

use crate::database::ResourceDatabase;
use crate::machine::{Machine, MachineId};
use crate::policy::UsagePolicy;
use crate::shadow::ShadowAccountPool;

/// Weighted choice of an attribute value.
#[derive(Debug, Clone)]
pub struct Weighted<T> {
    /// The value.
    pub value: T,
    /// Relative weight (need not sum to one across the list).
    pub weight: f64,
}

impl<T> Weighted<T> {
    /// Convenience constructor.
    pub fn new(value: T, weight: f64) -> Self {
        Weighted { value, weight }
    }
}

fn pick<'a, T>(rng: &mut Rng, choices: &'a [Weighted<T>]) -> &'a T {
    let total: f64 = choices.iter().map(|c| c.weight.max(0.0)).sum();
    let mut x = rng.f64() * total;
    for c in choices {
        x -= c.weight.max(0.0);
        if x <= 0.0 {
            return &c.value;
        }
    }
    &choices[choices.len() - 1].value
}

/// Description of a synthetic machine fleet.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Number of machines to generate.
    pub machines: usize,
    /// Architecture mix (the paper's examples use `sun` and `hp`).
    pub architectures: Vec<Weighted<String>>,
    /// Memory options in megabytes.
    pub memory_mb: Vec<Weighted<u64>>,
    /// Administrative domains machines belong to.
    pub domains: Vec<Weighted<String>>,
    /// Operating-system types.
    pub os_types: Vec<Weighted<String>>,
    /// Tool groups installed on machines (each machine gets a subset).
    pub tool_groups: Vec<String>,
    /// Mean number of tool groups per machine.
    pub mean_tools_per_machine: f64,
    /// User groups allowed (each machine admits all of them by default).
    pub user_groups: Vec<String>,
    /// Number of shadow accounts per machine.
    pub shadow_accounts: u32,
    /// Range of effective speed ratings (SPECfp-like).
    pub speed_range: (f64, f64),
    /// Options for CPU counts.
    pub cpu_options: Vec<Weighted<u32>>,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            machines: 3_200,
            architectures: vec![
                Weighted::new("sun".to_string(), 0.5),
                Weighted::new("hp".to_string(), 0.3),
                Weighted::new("linux".to_string(), 0.2),
            ],
            memory_mb: vec![
                Weighted::new(128, 0.3),
                Weighted::new(256, 0.35),
                Weighted::new(512, 0.25),
                Weighted::new(1024, 0.1),
            ],
            domains: vec![
                Weighted::new("purdue".to_string(), 0.7),
                Weighted::new("upc".to_string(), 0.2),
                Weighted::new("ufl".to_string(), 0.1),
            ],
            os_types: vec![
                Weighted::new("solaris".to_string(), 0.5),
                Weighted::new("hpux".to_string(), 0.3),
                Weighted::new("linux".to_string(), 0.2),
            ],
            tool_groups: vec![
                "tsuprem4".to_string(),
                "spice".to_string(),
                "matlab".to_string(),
                "minimos".to_string(),
                "fidap".to_string(),
                "abaqus".to_string(),
            ],
            mean_tools_per_machine: 3.0,
            user_groups: vec![
                "ece".to_string(),
                "me".to_string(),
                "public".to_string(),
                "upc".to_string(),
                "ece-students".to_string(),
            ],
            shadow_accounts: 8,
            speed_range: (100.0, 500.0),
            cpu_options: vec![
                Weighted::new(1, 0.55),
                Weighted::new(2, 0.25),
                Weighted::new(4, 0.15),
                Weighted::new(8, 0.05),
            ],
        }
    }
}

impl FleetSpec {
    /// A spec with the given machine count and all other knobs at their
    /// defaults — the shape used by the figure experiments.
    pub fn with_machines(machines: usize) -> Self {
        FleetSpec {
            machines,
            ..FleetSpec::default()
        }
    }

    /// A homogeneous fleet: one architecture, one memory size, one domain.
    /// Used to force every machine into the same pool (the "hot spot"
    /// scenarios of Figures 6–8).
    pub fn homogeneous(machines: usize, arch: &str, memory_mb: u64) -> Self {
        FleetSpec {
            machines,
            architectures: vec![Weighted::new(arch.to_string(), 1.0)],
            memory_mb: vec![Weighted::new(memory_mb, 1.0)],
            domains: vec![Weighted::new("purdue".to_string(), 1.0)],
            os_types: vec![Weighted::new("solaris".to_string(), 1.0)],
            ..FleetSpec::default()
        }
    }
}

/// Generator for synthetic fleets.
#[derive(Debug)]
pub struct SyntheticFleet {
    spec: FleetSpec,
    rng: Rng,
}

impl SyntheticFleet {
    /// Creates a generator from a spec and a seed.
    pub fn new(spec: FleetSpec, seed: u64) -> Self {
        SyntheticFleet {
            spec,
            rng: Rng::new(seed),
        }
    }

    /// Generates the fleet into a fresh resource database.
    pub fn generate(&mut self) -> ResourceDatabase {
        let mut db = ResourceDatabase::new();
        self.generate_into(&mut db);
        db
    }

    /// Generates the fleet into an existing database (used to extend a
    /// federation with a second domain's machines).
    pub fn generate_into(&mut self, db: &mut ResourceDatabase) {
        for i in 0..self.spec.machines {
            let arch = pick(&mut self.rng, &self.spec.architectures).clone();
            let memory = *pick(&mut self.rng, &self.spec.memory_mb);
            let domain = pick(&mut self.rng, &self.spec.domains).clone();
            let ostype = pick(&mut self.rng, &self.spec.os_types).clone();
            let cpus = *pick(&mut self.rng, &self.spec.cpu_options);
            let speed = self
                .rng
                .range_f64(self.spec.speed_range.0, self.spec.speed_range.1);

            // Choose the subset of tools this machine has installed.
            let p_tool = (self.spec.mean_tools_per_machine
                / self.spec.tool_groups.len().max(1) as f64)
                .clamp(0.0, 1.0);
            let mut tools: Vec<String> = self
                .spec
                .tool_groups
                .iter()
                .filter(|_| self.rng.chance(p_tool))
                .cloned()
                .collect();
            if tools.is_empty() && !self.spec.tool_groups.is_empty() {
                let idx = self.rng.index(self.spec.tool_groups.len());
                tools.push(self.spec.tool_groups[idx].clone());
            }

            let name = format!("{}-{:05}.{}.edu", arch, i, domain);
            let mut machine = Machine::new(MachineId(0), name)
                .with_param("arch", arch)
                .with_param("memory", memory)
                .with_param("ostype", ostype)
                .with_param("osversion", "5.8")
                .with_param("domain", domain)
                .with_param("swap", memory * 2)
                .with_param(
                    "cms",
                    crate::attr::AttrValue::list(["sge", "pbs", "condor"]),
                )
                .with_capacity(speed, cpus, 2.0 * cpus as f64)
                .with_user_groups(self.spec.user_groups.clone())
                .with_tool_groups(tools)
                .with_policy(UsagePolicy::Always);
            machine.shadow_accounts =
                ShadowAccountPool::with_accounts(6000, self.spec.shadow_accounts);
            machine.dynamic.available_memory_mb = memory as f64 * 0.8;
            machine.dynamic.available_swap_mb = memory as f64;
            machine.dynamic.current_load = self.rng.range_f64(0.0, 0.5);
            db.register(machine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let mut gen = SyntheticFleet::new(FleetSpec::with_machines(100), 1);
        let db = gen.generate();
        assert_eq!(db.len(), 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = SyntheticFleet::new(FleetSpec::with_machines(50), 7);
        let mut b = SyntheticFleet::new(FleetSpec::with_machines(50), 7);
        let da = a.generate();
        let db = b.generate();
        for (x, y) in da.iter().zip(db.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.params, y.params);
            assert_eq!(x.num_cpus, y.num_cpus);
        }
    }

    #[test]
    fn different_seeds_give_different_fleets() {
        let da = SyntheticFleet::new(FleetSpec::with_machines(50), 1).generate();
        let db = SyntheticFleet::new(FleetSpec::with_machines(50), 2).generate();
        let names_a: Vec<_> = da.iter().map(|m| m.name.clone()).collect();
        let names_b: Vec<_> = db.iter().map(|m| m.name.clone()).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn architecture_mix_roughly_matches_weights() {
        let mut gen = SyntheticFleet::new(FleetSpec::with_machines(2000), 3);
        let db = gen.generate();
        let suns = db
            .iter()
            .filter(|m| {
                m.attribute("arch")
                    .map(|a| a.contains("sun"))
                    .unwrap_or(false)
            })
            .count();
        let frac = suns as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.06, "sun fraction {frac}");
    }

    #[test]
    fn homogeneous_fleet_has_single_signature_attributes() {
        let mut gen = SyntheticFleet::new(FleetSpec::homogeneous(64, "sun", 256), 5);
        let db = gen.generate();
        assert!(db.iter().all(|m| {
            m.attribute("arch").unwrap().contains("sun")
                && m.attribute("memory").unwrap().as_num() == Some(256.0)
                && m.attribute("domain").unwrap().contains("purdue")
        }));
    }

    #[test]
    fn every_machine_has_tools_and_shadow_accounts() {
        let mut gen = SyntheticFleet::new(FleetSpec::with_machines(200), 9);
        let db = gen.generate();
        assert!(db.iter().all(|m| !m.tool_groups.is_empty()));
        assert!(db.iter().all(|m| m.shadow_accounts.capacity() == 8));
        assert!(db.iter().all(|m| m.dynamic.available_memory_mb > 0.0));
    }

    #[test]
    fn generate_into_extends_existing_database() {
        let mut db = SyntheticFleet::new(FleetSpec::with_machines(10), 1).generate();
        SyntheticFleet::new(FleetSpec::with_machines(5), 2).generate_into(&mut db);
        assert_eq!(db.len(), 15);
        // Ids remain unique after extension.
        let ids: std::collections::HashSet<_> = db.iter().map(|m| m.id).collect();
        assert_eq!(ids.len(), 15);
    }
}
