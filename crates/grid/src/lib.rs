//! # actyp-grid — computational-grid resource substrate
//!
//! The ActYP service manages *machines* described by the resource database of
//! the paper's Figure 3: a mix of dynamic state kept fresh by a monitoring
//! service (load, active jobs, free memory and swap, service flags), static
//! capacity information (effective speed, CPU count, maximum allowed load),
//! access/audit metadata, shadow-account pools, user- and tool-group lists,
//! usage policies, and an open-ended list of administrator-defined key/value
//! parameters (`arch`, `memory`, `ostype`, `osversion`, `owner`, `swap`,
//! `cms`, …).
//!
//! This crate implements that substrate:
//!
//! * [`attr`] — typed attribute values shared with the query language.
//! * [`machine`] — the per-machine record (all twenty fields of Figure 3).
//! * [`database`] — the "white pages" [`ResourceDatabase`]: lookup, walking
//!   with a predicate, and the *taken* marking pool objects use when they
//!   claim machines.
//! * [`monitor`] — a synthetic resource-monitoring service that refreshes the
//!   dynamic fields (the production system used an external monitor; only
//!   the freshness of fields 2–7 matters to scheduling).
//! * [`shadow`] — shadow-account pools (logical user accounts): allocation
//!   and release of anonymous accounts on machines.
//! * [`policy`] — usage policies, a small predicate language standing in for
//!   the PUNCH "metaprogram" hook the paper leaves unimplemented.
//! * [`synth`] — synthetic fleet generation used by the experiments (the
//!   paper's experiments use a database of 3,200 machines).

pub mod attr;
pub mod database;
pub mod machine;
pub mod monitor;
pub mod policy;
pub mod shadow;
pub mod synth;

pub use attr::AttrValue;
pub use database::{ResourceDatabase, SharedDatabase, TakenBy};
pub use machine::{DynamicState, Machine, MachineId, MachineObject, MachineState, ServiceFlags};
pub use monitor::{MonitorConfig, ResourceMonitor};
pub use policy::UsagePolicy;
pub use shadow::{ShadowAccount, ShadowAccountPool};
pub use synth::{FleetSpec, SyntheticFleet, Weighted};
