//! Shadow-account pools.
//!
//! PUNCH runs user jobs in *shadow accounts*: pre-created operating-system
//! accounts that are not tied to any individual user and are handed out for
//! the duration of a run.  Field 18 of the resource-database record points at
//! the pool of shadow accounts available on each machine; the ActYP service
//! selects an account when it allocates a machine and relinquishes it when
//! the network desktop reports the run complete.

/// A single shadow account on a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowAccount {
    /// Operating-system uid assigned to the shadow account.
    pub uid: u32,
    /// Account name (e.g. `punch07`).
    pub name: String,
}

/// The pool of shadow accounts configured on one machine.
#[derive(Debug, Clone, Default)]
pub struct ShadowAccountPool {
    free: Vec<ShadowAccount>,
    in_use: Vec<ShadowAccount>,
}

impl ShadowAccountPool {
    /// Creates a pool of `count` accounts with uids starting at `base_uid`.
    pub fn with_accounts(base_uid: u32, count: u32) -> Self {
        let free = (0..count)
            .map(|i| ShadowAccount {
                uid: base_uid + i,
                name: format!("punch{:02}", i),
            })
            .collect();
        ShadowAccountPool {
            free,
            in_use: Vec::new(),
        }
    }

    /// Number of accounts currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Number of accounts currently allocated to runs.
    pub fn allocated(&self) -> usize {
        self.in_use.len()
    }

    /// Total number of accounts configured on the machine.
    pub fn capacity(&self) -> usize {
        self.free.len() + self.in_use.len()
    }

    /// Allocates a shadow account, if one is free.
    pub fn allocate(&mut self) -> Option<ShadowAccount> {
        let account = self.free.pop()?;
        self.in_use.push(account.clone());
        Some(account)
    }

    /// Releases a previously allocated account back to the pool.  Returns
    /// `false` if the account was not allocated from this pool (double
    /// release or foreign account), in which case the pool is unchanged.
    pub fn release(&mut self, uid: u32) -> bool {
        if let Some(pos) = self.in_use.iter().position(|a| a.uid == uid) {
            let account = self.in_use.swap_remove(pos);
            self.free.push(account);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_cycle() {
        let mut pool = ShadowAccountPool::with_accounts(6000, 3);
        assert_eq!(pool.capacity(), 3);
        assert_eq!(pool.available(), 3);

        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        assert_ne!(a.uid, b.uid);
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.allocated(), 2);

        assert!(pool.release(a.uid));
        assert_eq!(pool.available(), 2);
        assert_eq!(pool.allocated(), 1);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = ShadowAccountPool::with_accounts(6000, 1);
        assert!(pool.allocate().is_some());
        assert!(pool.allocate().is_none());
    }

    #[test]
    fn double_release_is_rejected() {
        let mut pool = ShadowAccountPool::with_accounts(6000, 2);
        let a = pool.allocate().unwrap();
        assert!(pool.release(a.uid));
        assert!(!pool.release(a.uid));
        assert_eq!(pool.capacity(), 2);
    }

    #[test]
    fn foreign_uid_release_is_rejected() {
        let mut pool = ShadowAccountPool::with_accounts(6000, 2);
        pool.allocate().unwrap();
        assert!(!pool.release(9999));
    }

    #[test]
    fn default_pool_is_empty() {
        let mut pool = ShadowAccountPool::default();
        assert_eq!(pool.capacity(), 0);
        assert!(pool.allocate().is_none());
    }

    #[test]
    fn never_double_allocates_the_same_uid() {
        let mut pool = ShadowAccountPool::with_accounts(100, 10);
        let mut seen = std::collections::HashSet::new();
        while let Some(a) = pool.allocate() {
            assert!(seen.insert(a.uid), "uid {} allocated twice", a.uid);
        }
        assert_eq!(seen.len(), 10);
    }
}
