//! The per-machine record of the PUNCH resource database.
//!
//! Figure 3 of the paper lists twenty fields per machine.  They fall into
//! four groups: the availability state (field 1), dynamic state refreshed by
//! the monitoring system (fields 2–7), relatively static capacity information
//! (fields 8–11), and configuration/metadata (fields 12–20).  The record here
//! keeps the same grouping so the mapping back to the paper stays obvious.

use std::collections::BTreeMap;

use actyp_simnet::SimTime;

use crate::attr::AttrValue;
use crate::policy::UsagePolicy;
use crate::shadow::ShadowAccountPool;

/// Identifier of a machine inside a resource database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u64);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Field 1: the availability state of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MachineState {
    /// The machine is reachable and accepting work.
    #[default]
    Up,
    /// The machine is unreachable.
    Down,
    /// The machine is administratively blocked from new work.
    Blocked,
}

/// Field 7: status flags of the PUNCH services on the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceFlags {
    /// The PUNCH execution unit daemon is running.
    pub execution_unit_up: bool,
    /// The PVFS mount manager is reachable.
    pub mount_manager_up: bool,
    /// The ActYP proxy server (used to start remote pools) is alive.
    pub proxy_up: bool,
}

impl ServiceFlags {
    /// All services healthy.
    pub fn all_up() -> Self {
        ServiceFlags {
            execution_unit_up: true,
            mount_manager_up: true,
            proxy_up: true,
        }
    }
}

/// Fields 2–7: dynamic state maintained by the resource monitoring service.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicState {
    /// Field 2: current load average.
    pub current_load: f64,
    /// Field 3: number of active jobs started through PUNCH.
    pub active_jobs: u32,
    /// Field 4: available physical memory, in megabytes.
    pub available_memory_mb: f64,
    /// Field 5: available swap, in megabytes.
    pub available_swap_mb: f64,
    /// Field 6: virtual time of the last monitoring update.
    pub last_update: SimTime,
    /// Field 7: PUNCH service status flags.
    pub service_flags: ServiceFlags,
}

impl Default for DynamicState {
    fn default() -> Self {
        DynamicState {
            current_load: 0.0,
            active_jobs: 0,
            available_memory_mb: 0.0,
            available_swap_mb: 0.0,
            last_update: SimTime::ZERO,
            service_flags: ServiceFlags::all_up(),
        }
    }
}

/// Field 12: access and audit information (the paper stores a pointer to a
/// file holding the ssh key, owner contact, and server start instructions).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineObject {
    /// Path-like reference to the credential used to reach the machine.
    pub ssh_key_ref: String,
    /// Owner / administrative contact.
    pub owner: String,
    /// Instructions for starting a PUNCH server on the machine.
    pub start_instructions: String,
}

/// A machine record: all twenty fields of Figure 3.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Database identifier (not a paper field; the paper keys on name).
    pub id: MachineId,
    /// Field 1: resource state.
    pub state: MachineState,
    /// Fields 2–7: monitored dynamic state.
    pub dynamic: DynamicState,
    /// Field 8: effective speed (a SPECfp-like rating relative to the
    /// reference machine used in run-time estimates).
    pub effective_speed: f64,
    /// Field 9: number of CPUs.
    pub num_cpus: u32,
    /// Field 10: maximum allowed load before the machine refuses new work.
    pub max_allowed_load: f64,
    /// Field 11: machine (host) name.
    pub name: String,
    /// Field 12: access and audit information.
    pub object: MachineObject,
    /// Field 13: shared account identifier (e.g. `nobody`), if any.
    pub shared_account: Option<String>,
    /// Field 14: TCP port of the PUNCH execution unit in the shared account.
    pub execution_unit_port: u16,
    /// Field 15: TCP port of the PVFS mount manager.
    pub pvfs_mount_port: u16,
    /// Field 16: user groups allowed to use this machine.
    pub user_groups: Vec<String>,
    /// Field 17: tool groups the machine can run.
    pub tool_groups: Vec<String>,
    /// Field 18: pool of shadow accounts available to PUNCH on this machine.
    pub shadow_accounts: ShadowAccountPool,
    /// Field 19: usage policy (the paper leaves this as a pointer to a
    /// PUNCH metaprogram; we use a small predicate language).
    pub usage_policy: UsagePolicy,
    /// Field 20: administrator-defined parameters (`arch`, `memory`,
    /// `ostype`, `osversion`, `owner`, `swap`, `cms`, `domain`, …).
    pub params: BTreeMap<String, AttrValue>,
}

impl Machine {
    /// Creates a minimally configured machine with the given id and name.
    /// Callers then fill in capacity and parameters via the builder methods.
    pub fn new(id: MachineId, name: impl Into<String>) -> Self {
        Machine {
            id,
            state: MachineState::Up,
            dynamic: DynamicState::default(),
            effective_speed: 100.0,
            num_cpus: 1,
            max_allowed_load: 4.0,
            name: name.into(),
            object: MachineObject::default(),
            shared_account: None,
            execution_unit_port: 7070,
            pvfs_mount_port: 7071,
            user_groups: Vec::new(),
            tool_groups: Vec::new(),
            shadow_accounts: ShadowAccountPool::default(),
            usage_policy: UsagePolicy::Always,
            params: BTreeMap::new(),
        }
    }

    /// Sets an administrator-defined parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Sets the user groups allowed on the machine (builder style).
    pub fn with_user_groups<I, S>(mut self, groups: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.user_groups = groups.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the tool groups supported by the machine (builder style).
    pub fn with_tool_groups<I, S>(mut self, groups: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.tool_groups = groups.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the capacity fields (builder style).
    pub fn with_capacity(mut self, speed: f64, cpus: u32, max_load: f64) -> Self {
        self.effective_speed = speed;
        self.num_cpus = cpus;
        self.max_allowed_load = max_load;
        self
    }

    /// Sets the usage policy (builder style).
    pub fn with_policy(mut self, policy: UsagePolicy) -> Self {
        self.usage_policy = policy;
        self
    }

    /// Whether the machine is up and below its administrative load ceiling.
    pub fn accepting_work(&self) -> bool {
        self.state == MachineState::Up && self.dynamic.current_load < self.max_allowed_load
    }

    /// Whether the machine allows members of `group` (an empty list means
    /// the machine is open to every group, mirroring the database default).
    pub fn allows_user_group(&self, group: &str) -> bool {
        self.user_groups.is_empty()
            || self
                .user_groups
                .iter()
                .any(|g| g.eq_ignore_ascii_case(group))
    }

    /// Whether the machine can run tools of `tool_group`.
    pub fn supports_tool_group(&self, tool_group: &str) -> bool {
        self.tool_groups.is_empty()
            || self
                .tool_groups
                .iter()
                .any(|g| g.eq_ignore_ascii_case(tool_group))
    }

    /// Looks up an attribute by name.  Administrator-defined parameters take
    /// precedence; the monitored and capacity fields are exposed under
    /// well-known names so queries like `punch.rsrc.load = <2` work without
    /// the administrator duplicating them.
    pub fn attribute(&self, key: &str) -> Option<AttrValue> {
        if let Some(v) = self.params.get(key) {
            return Some(v.clone());
        }
        match key {
            "load" => Some(AttrValue::Num(self.dynamic.current_load)),
            "activejobs" => Some(AttrValue::Num(self.dynamic.active_jobs as f64)),
            "availablememory" => Some(AttrValue::Num(self.dynamic.available_memory_mb)),
            "availableswap" => Some(AttrValue::Num(self.dynamic.available_swap_mb)),
            "speed" => Some(AttrValue::Num(self.effective_speed)),
            "cpus" => Some(AttrValue::Num(self.num_cpus as f64)),
            "maxload" => Some(AttrValue::Num(self.max_allowed_load)),
            "name" => Some(AttrValue::str(self.name.clone())),
            "state" => Some(AttrValue::str(match self.state {
                MachineState::Up => "up",
                MachineState::Down => "down",
                MachineState::Blocked => "blocked",
            })),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineId(1), "alpha01.ecn.purdue.edu")
            .with_param("arch", "sun")
            .with_param("memory", 512u64)
            .with_param("ostype", "solaris")
            .with_param("domain", "purdue")
            .with_capacity(300.0, 4, 8.0)
            .with_user_groups(["ece", "public"])
            .with_tool_groups(["spice", "tsuprem4"])
    }

    #[test]
    fn attribute_prefers_admin_params() {
        let m = machine().with_param("speed", 999u64);
        assert_eq!(m.attribute("speed"), Some(AttrValue::Num(999.0)));
    }

    #[test]
    fn attribute_exposes_builtin_fields() {
        let mut m = machine();
        m.dynamic.current_load = 1.5;
        m.dynamic.available_memory_mb = 100.0;
        assert_eq!(m.attribute("load"), Some(AttrValue::Num(1.5)));
        assert_eq!(m.attribute("availablememory"), Some(AttrValue::Num(100.0)));
        assert_eq!(m.attribute("cpus"), Some(AttrValue::Num(4.0)));
        assert_eq!(m.attribute("arch"), Some(AttrValue::str("sun")));
        assert_eq!(m.attribute("state"), Some(AttrValue::str("up")));
        assert_eq!(m.attribute("nonexistent"), None);
    }

    #[test]
    fn accepting_work_depends_on_state_and_load() {
        let mut m = machine();
        assert!(m.accepting_work());
        m.dynamic.current_load = 9.0;
        assert!(!m.accepting_work());
        m.dynamic.current_load = 0.0;
        m.state = MachineState::Blocked;
        assert!(!m.accepting_work());
        m.state = MachineState::Down;
        assert!(!m.accepting_work());
    }

    #[test]
    fn group_checks_are_case_insensitive_and_default_open() {
        let m = machine();
        assert!(m.allows_user_group("ECE"));
        assert!(!m.allows_user_group("physics"));
        assert!(m.supports_tool_group("Spice"));
        assert!(!m.supports_tool_group("matlab"));

        let open = Machine::new(MachineId(2), "open");
        assert!(open.allows_user_group("anyone"));
        assert!(open.supports_tool_group("anything"));
    }

    #[test]
    fn default_dynamic_state_has_services_up() {
        let m = Machine::new(MachineId(3), "x");
        assert!(m.dynamic.service_flags.execution_unit_up);
        assert!(m.dynamic.service_flags.mount_manager_up);
        assert_eq!(m.dynamic.last_update, SimTime::ZERO);
    }

    #[test]
    fn machine_id_displays_compactly() {
        assert_eq!(MachineId(42).to_string(), "m42");
    }
}
