//! Condor ClassAds interoperability.
//!
//! The paper notes that "new families of key-value pairs could be defined to
//! allow the resource management pipeline to simultaneously support multiple
//! protocols and semantics: this could allow ActYP to reuse Condor's
//! ClassAds".  Query managers perform exactly this translation step, so this
//! module provides a small translator from a ClassAds-style requirements
//! expression into the internal query language.
//!
//! The supported subset covers the constraints Condor submit files typically
//! place on machines: a conjunction (`&&`) of comparisons, where each
//! comparison may be a parenthesised disjunction (`||`) of alternatives over
//! the same attribute — e.g.
//!
//! ```text
//! (Arch == "SUN4u" || Arch == "HP") && Memory >= 64 && OpSys == "SOLARIS8"
//! ```

use actyp_grid::AttrValue;

use crate::ast::{Clause, CmpOp, Constraint, Query, QueryKey};

/// A translation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassAdError {
    /// Description of the unsupported or malformed construct.
    pub message: String,
}

impl std::fmt::Display for ClassAdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "classad translation error: {}", self.message)
    }
}

impl std::error::Error for ClassAdError {}

fn err(message: impl Into<String>) -> ClassAdError {
    ClassAdError {
        message: message.into(),
    }
}

/// Maps a ClassAd attribute name to the equivalent `punch.rsrc` key.
fn map_attribute(name: &str) -> String {
    match name.to_ascii_lowercase().as_str() {
        "opsys" => "ostype".to_string(),
        "disk" => "swap".to_string(),
        other => other.to_string(),
    }
}

fn parse_comparison(term: &str) -> Result<(String, Constraint), ClassAdError> {
    let term = term.trim();
    for (symbol, op) in [
        (">=", CmpOp::Ge),
        ("<=", CmpOp::Le),
        ("==", CmpOp::Eq),
        ("!=", CmpOp::Ne),
        (">", CmpOp::Gt),
        ("<", CmpOp::Lt),
    ] {
        if let Some(pos) = term.find(symbol) {
            let attr = term[..pos].trim();
            let value = term[pos + symbol.len()..].trim();
            if attr.is_empty() || value.is_empty() {
                return Err(err(format!("malformed comparison `{term}`")));
            }
            let value = value.trim_matches('"');
            let attr_value = if let Ok(n) = value.parse::<f64>() {
                AttrValue::Num(n)
            } else {
                AttrValue::Str(value.to_ascii_lowercase())
            };
            return Ok((map_attribute(attr), Constraint::new(op, attr_value)));
        }
    }
    Err(err(format!("`{term}` is not a comparison")))
}

/// Translates a ClassAds-style requirements expression into a [`Query`] in
/// the `punch` family.  `user_login` and `access_group`, when supplied, are
/// added as `punch.user.*` clauses so the result can be scheduled directly.
pub fn translate_requirements(
    expression: &str,
    user_login: Option<&str>,
    access_group: Option<&str>,
) -> Result<Query, ClassAdError> {
    let expression = expression.trim();
    if expression.is_empty() {
        return Err(err("empty requirements expression"));
    }
    let mut query = Query::new();
    for raw_term in expression.split("&&") {
        let term = raw_term
            .trim()
            .trim_start_matches('(')
            .trim_end_matches(')');
        if term.is_empty() {
            return Err(err("empty term in conjunction"));
        }
        if term.contains("||") {
            // A disjunction of comparisons over one attribute becomes an
            // "or" clause (alternatives) in the internal language.
            let mut key_name: Option<String> = None;
            let mut alternatives = Vec::new();
            for alt in term.split("||") {
                let (attr, constraint) = parse_comparison(alt)?;
                match &key_name {
                    None => key_name = Some(attr),
                    Some(existing) if *existing != attr => {
                        return Err(err(format!(
                            "disjunction mixes attributes `{existing}` and `{attr}`; \
                             only per-attribute alternatives are supported"
                        )));
                    }
                    _ => {}
                }
                alternatives.push(constraint);
            }
            let name = key_name.expect("at least one alternative");
            query.clauses.push(Clause {
                key: QueryKey::rsrc(name),
                alternatives,
            });
        } else {
            let (attr, constraint) = parse_comparison(term)?;
            query
                .clauses
                .push(Clause::single(QueryKey::rsrc(attr), constraint));
        }
    }
    if let Some(login) = user_login {
        query.clauses.push(Clause::single(
            QueryKey::user("login"),
            Constraint::eq(login),
        ));
    }
    if let Some(group) = access_group {
        query.clauses.push(Clause::single(
            QueryKey::user("accessgroup"),
            Constraint::eq(group),
        ));
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Section as S;

    #[test]
    fn simple_conjunction_translates() {
        let q = translate_requirements(
            "Arch == \"SUN4u\" && Memory >= 64 && OpSys == \"SOLARIS8\"",
            None,
            None,
        )
        .unwrap();
        assert_eq!(q.clauses.len(), 3);
        assert_eq!(q.clauses[0].key, QueryKey::rsrc("arch"));
        assert_eq!(q.clauses[0].alternatives[0].value, AttrValue::str("sun4u"));
        assert_eq!(q.clauses[1].key, QueryKey::rsrc("memory"));
        assert_eq!(q.clauses[1].alternatives[0].op, CmpOp::Ge);
        // OpSys maps to the punch ostype key.
        assert_eq!(q.clauses[2].key, QueryKey::rsrc("ostype"));
    }

    #[test]
    fn disjunction_becomes_alternatives() {
        let q = translate_requirements(
            "(Arch == \"SUN\" || Arch == \"HP\") && Memory >= 128",
            None,
            None,
        )
        .unwrap();
        assert!(q.is_composite());
        assert_eq!(q.clauses[0].alternatives.len(), 2);
        assert_eq!(q.decompose(8).len(), 2);
    }

    #[test]
    fn user_identity_is_attached() {
        let q = translate_requirements("Memory >= 10", Some("kapadia"), Some("ece")).unwrap();
        let basic = q.decompose(1).remove(0);
        assert_eq!(basic.user_login(), Some("kapadia"));
        assert_eq!(basic.access_group(), Some("ece"));
        assert_eq!(basic.value(S::Rsrc, "memory").unwrap().as_num(), Some(10.0));
    }

    #[test]
    fn mixed_attribute_disjunction_is_rejected() {
        let e =
            translate_requirements("(Arch == \"SUN\" || Memory >= 10)", None, None).unwrap_err();
        assert!(e.message.contains("mixes attributes"));
    }

    #[test]
    fn malformed_expressions_are_rejected() {
        assert!(translate_requirements("", None, None).is_err());
        assert!(translate_requirements("Arch", None, None).is_err());
        assert!(translate_requirements("== \"SUN\"", None, None).is_err());
        assert!(translate_requirements("Arch == \"SUN\" && ", None, None).is_err());
    }

    #[test]
    fn numeric_values_stay_numeric() {
        let q = translate_requirements("Disk >= 2048", None, None).unwrap();
        // Disk maps onto swap.
        assert_eq!(q.clauses[0].key, QueryKey::rsrc("swap"));
        assert_eq!(q.clauses[0].alternatives[0].value, AttrValue::Num(2048.0));
    }

    #[test]
    fn translated_query_validates_against_punch_schema() {
        let schema = crate::schema::QuerySchema::punch_default();
        let q = translate_requirements(
            "Arch == \"SUN\" && Memory >= 64 && OpSys == \"SOLARIS\"",
            Some("royo"),
            Some("upc"),
        )
        .unwrap();
        assert!(schema.validate(&q).is_empty());
    }
}
