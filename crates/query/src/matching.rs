//! Matching queries against machine records.
//!
//! Resource pools aggregate the machines that satisfy the `rsrc` constraints
//! encoded in their name, and the final selection step must respect user- and
//! policy-level access control.  Two checks are exposed:
//!
//! * [`matches_machine`] — does a machine satisfy every `rsrc` constraint of
//!   a basic query?  Missing query keys default to "don't care" (the schema
//!   rule from Section 5.1); a constraint on an attribute the machine does
//!   not define fails unless the operator is `!=`.
//! * [`admits_user`] — is the requesting user (login + access group) allowed
//!   on the machine, according to the machine's user-group list and usage
//!   policy?

use actyp_grid::{AttrValue, Machine};

use crate::ast::{BasicClause, BasicQuery, CmpOp};

/// The result of evaluating one clause, used by diagnostics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchOutcome {
    /// Every constraint held.
    Matched,
    /// A constraint failed; carries the offending key.
    Failed(String),
}

impl MatchOutcome {
    /// Whether the outcome is a match.
    pub fn is_match(&self) -> bool {
        matches!(self, MatchOutcome::Matched)
    }
}

fn compare(op: CmpOp, machine_value: &AttrValue, query_value: &AttrValue) -> bool {
    // Numeric comparison when both sides have a numeric view.
    if let (Some(m), Some(q)) = (machine_value.as_num(), query_value.as_num()) {
        let ordering = m.partial_cmp(&q).unwrap_or(std::cmp::Ordering::Equal);
        return op.evaluate_ordering(ordering);
    }
    // Otherwise string/list semantics: equality means "contains" for lists
    // so that `cms = sge` matches a machine advertising `cms=sge,pbs,condor`.
    let query_text = query_value.canonical();
    match op {
        CmpOp::Eq => machine_value.contains(&query_text),
        CmpOp::Ne => !machine_value.contains(&query_text),
        _ => {
            // Ordered comparison on canonical text as a last resort.
            let ordering = machine_value.canonical().cmp(&query_text);
            op.evaluate_ordering(ordering)
        }
    }
}

fn clause_matches(clause: &BasicClause, machine: &Machine) -> bool {
    let key = clause.key.name.as_str();
    // `license` constraints ask whether the machine can run the named tool;
    // the tool-group list (field 17) is authoritative for that.
    if key == "license" || key == "tool" || key == "toolgroup" {
        let tool = clause.constraint.value.canonical();
        let supported = machine.supports_tool_group(&tool);
        return match clause.constraint.op {
            CmpOp::Ne => !supported,
            _ => supported,
        };
    }
    match machine.attribute(key) {
        Some(value) => compare(clause.constraint.op, &value, &clause.constraint.value),
        // The machine does not define the attribute: only a `!=` constraint
        // can be satisfied ("not equal to something it doesn't have").
        None => clause.constraint.op == CmpOp::Ne,
    }
}

/// Evaluates every `rsrc` constraint of `query` against `machine`.
pub fn matches_machine(query: &BasicQuery, machine: &Machine) -> MatchOutcome {
    for clause in query.rsrc_clauses() {
        if !clause_matches(clause, machine) {
            return MatchOutcome::Failed(clause.key.name.clone());
        }
    }
    MatchOutcome::Matched
}

/// Checks user-level access: the machine's user-group list (field 16) and its
/// usage policy (field 19) must both admit the requesting user.
pub fn admits_user(query: &BasicQuery, machine: &Machine, hour_of_day: u8) -> bool {
    let group = query.access_group().unwrap_or("public");
    let login = query.user_login().unwrap_or("anonymous");
    if !machine.allows_user_group(group) {
        return false;
    }
    let ctx = actyp_grid::policy::PolicyContext {
        user_group: group,
        user_login: login,
        current_load: machine.dynamic.current_load,
        hour_of_day,
    };
    machine.usage_policy.admits(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Constraint, Query, QueryKey};
    use actyp_grid::{MachineId, UsagePolicy};

    fn sun_machine() -> Machine {
        let mut m = Machine::new(MachineId(1), "sun01.purdue.edu")
            .with_param("arch", "sun")
            .with_param("memory", 512u64)
            .with_param("domain", "purdue")
            .with_param("cms", AttrValue::list(["sge", "pbs"]))
            .with_user_groups(["ece"])
            .with_tool_groups(["tsuprem4", "spice"]);
        m.dynamic.current_load = 0.5;
        m
    }

    fn basic(q: Query) -> BasicQuery {
        q.decompose(1).remove(0)
    }

    #[test]
    fn paper_query_matches_suitable_machine() {
        let q = basic(Query::paper_example());
        assert!(matches_machine(&q, &sun_machine()).is_match());
    }

    #[test]
    fn architecture_mismatch_fails_with_key() {
        let q = basic(Query::new().with(QueryKey::rsrc("arch"), Constraint::eq("hp")));
        assert_eq!(
            matches_machine(&q, &sun_machine()),
            MatchOutcome::Failed("arch".to_string())
        );
    }

    #[test]
    fn numeric_threshold_constraints() {
        let m = sun_machine();
        let ge_ok = basic(Query::new().with(QueryKey::rsrc("memory"), Constraint::ge(256u64)));
        let ge_fail = basic(Query::new().with(QueryKey::rsrc("memory"), Constraint::ge(1024u64)));
        let lt_ok = basic(Query::new().with(
            QueryKey::rsrc("memory"),
            Constraint::new(CmpOp::Lt, 1024u64),
        ));
        assert!(matches_machine(&ge_ok, &m).is_match());
        assert!(!matches_machine(&ge_fail, &m).is_match());
        assert!(matches_machine(&lt_ok, &m).is_match());
    }

    #[test]
    fn license_constraint_checks_tool_groups() {
        let m = sun_machine();
        let has = basic(Query::new().with(QueryKey::rsrc("license"), Constraint::eq("spice")));
        let lacks = basic(Query::new().with(QueryKey::rsrc("license"), Constraint::eq("matlab")));
        let negated = basic(Query::new().with(
            QueryKey::rsrc("license"),
            Constraint::new(CmpOp::Ne, "matlab"),
        ));
        assert!(matches_machine(&has, &m).is_match());
        assert!(!matches_machine(&lacks, &m).is_match());
        assert!(matches_machine(&negated, &m).is_match());
    }

    #[test]
    fn list_attributes_match_by_membership() {
        let m = sun_machine();
        let q = basic(Query::new().with(QueryKey::rsrc("cms"), Constraint::eq("sge")));
        assert!(matches_machine(&q, &m).is_match());
        let q2 = basic(Query::new().with(QueryKey::rsrc("cms"), Constraint::eq("condor")));
        assert!(!matches_machine(&q2, &m).is_match());
    }

    #[test]
    fn missing_attribute_only_satisfies_not_equal() {
        let m = sun_machine();
        let eq = basic(Query::new().with(QueryKey::rsrc("gpu"), Constraint::eq("a100")));
        let ne =
            basic(Query::new().with(QueryKey::rsrc("gpu"), Constraint::new(CmpOp::Ne, "a100")));
        assert!(!matches_machine(&eq, &m).is_match());
        assert!(matches_machine(&ne, &m).is_match());
    }

    #[test]
    fn dynamic_load_attribute_is_comparable() {
        let mut m = sun_machine();
        m.dynamic.current_load = 3.0;
        let idle =
            basic(Query::new().with(QueryKey::rsrc("load"), Constraint::new(CmpOp::Lt, 1u64)));
        assert!(!matches_machine(&idle, &m).is_match());
        m.dynamic.current_load = 0.2;
        assert!(matches_machine(&idle, &m).is_match());
    }

    #[test]
    fn empty_query_matches_everything() {
        let q = basic(Query::new());
        assert!(matches_machine(&q, &sun_machine()).is_match());
    }

    #[test]
    fn string_comparison_is_case_insensitive() {
        let q = basic(Query::new().with(QueryKey::rsrc("arch"), Constraint::eq("SUN")));
        assert!(matches_machine(&q, &sun_machine()).is_match());
    }

    #[test]
    fn user_admission_checks_group_list() {
        let q = basic(Query::paper_example()); // accessgroup = ece
        assert!(admits_user(&q, &sun_machine(), 12));

        let mut outsider = Query::paper_example();
        // Replace the access group with one the machine doesn't allow.
        outsider.clauses.retain(|c| c.key.name != "accessgroup");
        let outsider =
            basic(outsider.with(QueryKey::user("accessgroup"), Constraint::eq("physics")));
        assert!(!admits_user(&outsider, &sun_machine(), 12));
    }

    #[test]
    fn user_admission_checks_usage_policy() {
        let q = basic(Query::paper_example());
        let mut m = sun_machine().with_policy(UsagePolicy::LoadBelow(0.1));
        m.dynamic.current_load = 0.5;
        assert!(!admits_user(&q, &m, 12));
        m.dynamic.current_load = 0.05;
        assert!(admits_user(&q, &m, 12));
    }

    #[test]
    fn anonymous_queries_default_to_public_group() {
        let q = basic(Query::new().with(QueryKey::rsrc("arch"), Constraint::eq("sun")));
        // Machine only allows "ece", so an anonymous (public) user is denied.
        assert!(!admits_user(&q, &sun_machine(), 0));
        // A machine with an open group list admits anyone.
        let open = Machine::new(MachineId(9), "open").with_param("arch", "sun");
        assert!(admits_user(&q, &open, 0));
    }
}
