//! Text parser for the native query language.
//!
//! The native format is line-oriented: one `key = value` pair per line, where
//! the key is `family.section.name` and the value may carry a leading
//! comparison operator (`>=10`) and `|`-separated alternatives
//! (`sun | hp`).  Blank lines and `#` comments are ignored.  The parser is
//! the inverse of `Query`'s `Display` implementation.

use std::fmt;

use actyp_grid::AttrValue;

use crate::ast::{Clause, CmpOp, Constraint, Query, QueryKey, Section};

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn parse_key(token: &str, line: usize) -> Result<QueryKey, ParseError> {
    let parts: Vec<&str> = token.trim().split('.').collect();
    if parts.len() != 3 {
        return Err(ParseError {
            line,
            message: format!("key `{token}` must have the form family.section.name"),
        });
    }
    let section = Section::parse(parts[1]).ok_or_else(|| ParseError {
        line,
        message: format!(
            "unknown section `{}` (expected rsrc, appl or user)",
            parts[1]
        ),
    })?;
    if parts[0].is_empty() || parts[2].is_empty() {
        return Err(ParseError {
            line,
            message: format!("key `{token}` has an empty family or name component"),
        });
    }
    Ok(QueryKey {
        family: parts[0].to_ascii_lowercase(),
        section,
        name: parts[2].to_ascii_lowercase(),
    })
}

fn parse_value(token: &str) -> AttrValue {
    let t = token.trim();
    if let Ok(n) = t.parse::<f64>() {
        AttrValue::Num(n)
    } else if t.contains(',') {
        AttrValue::list(t.split(',').map(|s| s.trim().to_string()))
    } else if t.eq_ignore_ascii_case("true") {
        AttrValue::Bool(true)
    } else if t.eq_ignore_ascii_case("false") {
        AttrValue::Bool(false)
    } else {
        AttrValue::Str(t.to_ascii_lowercase())
    }
}

fn parse_constraint(token: &str, line: usize) -> Result<Constraint, ParseError> {
    let (op, rest) = CmpOp::strip_prefix(token);
    if rest.is_empty() {
        return Err(ParseError {
            line,
            message: format!("constraint `{token}` has no value"),
        });
    }
    Ok(Constraint {
        op,
        value: parse_value(rest),
    })
}

/// Parses a query from its textual form.
pub fn parse_query(text: &str) -> Result<Query, ParseError> {
    let mut query = Query::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key_part, value_part) = line.split_once('=').ok_or_else(|| ParseError {
            line: line_no,
            message: format!("expected `key = value`, got `{line}`"),
        })?;
        // A leading '=' of '==' belongs to the operator, so re-attach it when
        // the value starts with '='.
        let value_part = value_part.trim();
        let key = parse_key(key_part, line_no)?;
        let alternatives: Result<Vec<Constraint>, ParseError> = value_part
            .split('|')
            .map(|alt| parse_constraint(alt, line_no))
            .collect();
        let alternatives = alternatives?;
        if alternatives.is_empty() {
            return Err(ParseError {
                line: line_no,
                message: "clause has no constraints".to_string(),
            });
        }
        query.clauses.push(Clause { key, alternatives });
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Section;

    const PAPER_QUERY: &str = "\
punch.rsrc.arch = sun
punch.rsrc.memory = >=10
punch.rsrc.license = tsuprem4
punch.rsrc.domain = purdue
punch.appl.expectedcpuuse = 1000
punch.user.login = kapadia
punch.user.accessgroup = ece
";

    #[test]
    fn parses_the_paper_example() {
        let q = parse_query(PAPER_QUERY).unwrap();
        assert_eq!(q.clauses.len(), 7);
        assert_eq!(q, Query::paper_example());
    }

    #[test]
    fn display_and_parse_round_trip() {
        let q = Query::paper_example();
        let reparsed = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn parses_or_alternatives() {
        let q = parse_query("punch.rsrc.arch = sun | hp\n").unwrap();
        assert!(q.is_composite());
        assert_eq!(q.clauses[0].alternatives.len(), 2);
        assert_eq!(q.decompose(8).len(), 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let q = parse_query("# a comment\n\npunch.rsrc.arch = sun\n   \n# more\n").unwrap();
        assert_eq!(q.clauses.len(), 1);
    }

    #[test]
    fn operators_are_parsed_from_value_prefix() {
        let q = parse_query("punch.rsrc.memory = >=128\npunch.rsrc.load = <2\n").unwrap();
        assert_eq!(q.clauses[0].alternatives[0].op, CmpOp::Ge);
        assert_eq!(q.clauses[0].alternatives[0].value, AttrValue::Num(128.0));
        assert_eq!(q.clauses[1].alternatives[0].op, CmpOp::Lt);
    }

    #[test]
    fn numeric_string_list_and_bool_values() {
        let q = parse_query(
            "punch.rsrc.memory = 256\npunch.rsrc.arch = SUN\npunch.rsrc.cms = sge,pbs\npunch.rsrc.dedicated = true\n",
        )
        .unwrap();
        assert_eq!(q.clauses[0].alternatives[0].value, AttrValue::Num(256.0));
        assert_eq!(q.clauses[1].alternatives[0].value, AttrValue::str("sun"));
        assert_eq!(
            q.clauses[2].alternatives[0].value,
            AttrValue::list(["sge", "pbs"])
        );
        assert_eq!(q.clauses[3].alternatives[0].value, AttrValue::Bool(true));
    }

    #[test]
    fn missing_equals_is_an_error() {
        let err = parse_query("punch.rsrc.arch sun").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("key = value"));
    }

    #[test]
    fn malformed_key_is_an_error() {
        assert!(parse_query("punch.arch = sun").is_err());
        assert!(parse_query("punch.bogus.arch = sun").is_err());
        assert!(parse_query(".rsrc.arch = sun").is_err());
        assert!(parse_query("punch.rsrc. = sun").is_err());
    }

    #[test]
    fn empty_constraint_is_an_error() {
        assert!(parse_query("punch.rsrc.arch = ").is_err());
        assert!(parse_query("punch.rsrc.arch = sun | ").is_err());
        assert!(parse_query("punch.rsrc.memory = >=").is_err());
    }

    #[test]
    fn error_reports_correct_line() {
        let err = parse_query("punch.rsrc.arch = sun\npunch.oops = x\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn other_families_are_accepted() {
        let q = parse_query("condor.rsrc.arch = intel\n").unwrap();
        assert_eq!(q.clauses[0].key.family, "condor");
        assert_eq!(q.clauses[0].key.section, Section::Rsrc);
    }
}
