//! Pool-name construction.
//!
//! Pool managers map each basic query to a *pool name* made of two parts
//! (Section 5.2.2 of the paper):
//!
//! * the **signature** — a colon-separated list of the sorted `rsrc` keys in
//!   the query, followed by a comma and a colon-separated list of the
//!   corresponding comparison operators; and
//! * the **identifier** — a colon-separated list of the values associated
//!   with those sorted keys.
//!
//! For the paper's sample query the signature is
//! `arch:domain:license:memory,==:==:==:>=` and the identifier is
//! `sun:purdue:tsuprem4:10`.  Machines are aggregated into a pool when they
//! satisfy the constraints encoded in the name, so the name also retains the
//! structured `(key, op, value)` triples needed to rebuild the aggregation
//! predicate.

use std::fmt;

use actyp_grid::AttrValue;

use crate::ast::{BasicQuery, CmpOp};

/// A resource-pool name: signature plus identifier, with the structured
/// constraints retained for building the aggregation predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolName {
    /// Sorted key names with their operators, e.g.
    /// `arch:domain:license:memory,==:==:==:>=`.
    pub signature: String,
    /// The corresponding values, e.g. `sun:purdue:tsuprem4:10`.
    pub identifier: String,
    /// The structured constraints: `(key name, operator, value)` sorted by
    /// key name.
    pub constraints: Vec<(String, CmpOp, AttrValue)>,
}

impl PoolName {
    /// Builds the pool name for a basic query from its `rsrc` clauses.
    /// Queries with no `rsrc` constraints map to the catch-all pool `any`.
    pub fn from_query(query: &BasicQuery) -> PoolName {
        let mut constraints: Vec<(String, CmpOp, AttrValue)> = query
            .rsrc_clauses()
            .map(|c| {
                (
                    c.key.name.clone(),
                    c.constraint.op,
                    c.constraint.value.clone(),
                )
            })
            .collect();
        constraints.sort_by(|a, b| a.0.cmp(&b.0));

        if constraints.is_empty() {
            return PoolName {
                signature: "any".to_string(),
                identifier: "any".to_string(),
                constraints,
            };
        }

        let keys: Vec<&str> = constraints.iter().map(|(k, _, _)| k.as_str()).collect();
        let ops: Vec<&str> = constraints.iter().map(|(_, op, _)| op.symbol()).collect();
        let values: Vec<String> = constraints.iter().map(|(_, _, v)| v.canonical()).collect();

        PoolName {
            signature: format!("{},{}", keys.join(":"), ops.join(":")),
            identifier: values.join(":"),
            constraints,
        }
    }

    /// The full name used as the directory-service key.
    pub fn full(&self) -> String {
        format!("{}/{}", self.signature, self.identifier)
    }
}

impl fmt::Display for PoolName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.full())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Constraint, Query, QueryKey};

    #[test]
    fn paper_example_signature_and_identifier() {
        let basic = Query::paper_example().decompose(1).remove(0);
        let name = PoolName::from_query(&basic);
        assert_eq!(name.signature, "arch:domain:license:memory,==:==:==:>=");
        assert_eq!(name.identifier, "sun:purdue:tsuprem4:10");
        assert_eq!(
            name.full(),
            "arch:domain:license:memory,==:==:==:>=/sun:purdue:tsuprem4:10"
        );
    }

    #[test]
    fn signature_is_insensitive_to_clause_order() {
        let a = Query::new()
            .with(QueryKey::rsrc("memory"), Constraint::ge(10u64))
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .decompose(1)
            .remove(0);
        let b = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .with(QueryKey::rsrc("memory"), Constraint::ge(10u64))
            .decompose(1)
            .remove(0);
        assert_eq!(PoolName::from_query(&a), PoolName::from_query(&b));
    }

    #[test]
    fn appl_and_user_keys_do_not_affect_the_name() {
        let with_user = Query::paper_example().decompose(1).remove(0);
        let bare = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .with(QueryKey::rsrc("memory"), Constraint::ge(10u64))
            .with(QueryKey::rsrc("license"), Constraint::eq("tsuprem4"))
            .with(QueryKey::rsrc("domain"), Constraint::eq("purdue"))
            .decompose(1)
            .remove(0);
        assert_eq!(
            PoolName::from_query(&with_user),
            PoolName::from_query(&bare)
        );
    }

    #[test]
    fn different_values_map_to_different_pools_with_same_signature() {
        let sun = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .decompose(1)
            .remove(0);
        let hp = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("hp"))
            .decompose(1)
            .remove(0);
        let n_sun = PoolName::from_query(&sun);
        let n_hp = PoolName::from_query(&hp);
        assert_eq!(n_sun.signature, n_hp.signature);
        assert_ne!(n_sun.identifier, n_hp.identifier);
        assert_ne!(n_sun.full(), n_hp.full());
    }

    #[test]
    fn different_operators_change_the_signature() {
        let ge = Query::new()
            .with(QueryKey::rsrc("memory"), Constraint::ge(10u64))
            .decompose(1)
            .remove(0);
        let eq = Query::new()
            .with(QueryKey::rsrc("memory"), Constraint::eq(10u64))
            .decompose(1)
            .remove(0);
        assert_ne!(
            PoolName::from_query(&ge).signature,
            PoolName::from_query(&eq).signature
        );
    }

    #[test]
    fn empty_rsrc_query_maps_to_catch_all_pool() {
        let q = Query::new()
            .with(QueryKey::user("login"), Constraint::eq("kapadia"))
            .decompose(1)
            .remove(0);
        let name = PoolName::from_query(&q);
        assert_eq!(name.full(), "any/any");
        assert!(name.constraints.is_empty());
    }

    #[test]
    fn constraints_are_sorted_by_key() {
        let basic = Query::paper_example().decompose(1).remove(0);
        let name = PoolName::from_query(&basic);
        let keys: Vec<&str> = name
            .constraints
            .iter()
            .map(|(k, _, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
