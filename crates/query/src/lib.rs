//! # actyp-query — the ActYP resource query language
//!
//! Queries received by the resource-management pipeline describe resource
//! requirements, predicted application behaviour, and user-specific data.
//! The language is a flat list of key/value pairs whose keys live in a
//! hierarchical namespace — `family.section.name` — exactly as in the paper's
//! example:
//!
//! ```text
//! punch.rsrc.arch = sun
//! punch.rsrc.memory = >=10
//! punch.rsrc.license = tsuprem4
//! punch.rsrc.domain = purdue
//! punch.appl.expectedcpuuse = 1000
//! punch.user.login = kapadia
//! punch.user.accessgroup = ece
//! ```
//!
//! * [`ast`] — the abstract syntax: keys, comparison operators, constraints,
//!   clauses, composite queries and their decomposition into basic queries.
//! * [`parse`] — the text parser (and `Display` gives the inverse).
//! * [`schema`] — administrator-defined key schemas per family; "don't care"
//!   defaults for missing `rsrc` keys, "undefined" for `appl`/`user`.
//! * [`signature`] — pool-name construction: the signature (sorted `rsrc`
//!   keys plus their operators) and the identifier (their values).
//! * [`matching`] — evaluating a basic query against a machine record.
//! * [`classad`] — a translator from a Condor ClassAds-style requirement
//!   expression, demonstrating the multi-protocol interoperability the paper
//!   attributes to query managers.

pub mod ast;
pub mod classad;
pub mod matching;
pub mod parse;
pub mod schema;
pub mod signature;

pub use ast::{BasicClause, BasicQuery, Clause, CmpOp, Constraint, Query, QueryKey, Section};
pub use matching::{admits_user, matches_machine, MatchOutcome};
pub use parse::{parse_query, ParseError};
pub use schema::{KeySchema, QuerySchema, SchemaError, ValueKind};
pub use signature::PoolName;
