//! Abstract syntax of the query language.
//!
//! A [`Query`] is a conjunction of [`Clause`]s.  Each clause constrains one
//! key; a clause whose value offers several alternatives (an "or" clause,
//! e.g. `arch = sun | hp`) makes the query *composite*.  Composite queries
//! are decomposed by query managers into [`BasicQuery`]s — one per
//! combination of alternatives — that travel through the pipeline
//! independently and are re-integrated at the end.

use std::fmt;

use actyp_grid::AttrValue;

/// The section of the hierarchical namespace a key belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Section {
    /// Resource requirements (`punch.rsrc.*`): matched against machines.
    Rsrc,
    /// Predicted application behaviour (`punch.appl.*`).
    Appl,
    /// User-specific data (`punch.user.*`).
    User,
}

impl Section {
    /// The lower-case token used in the textual form.
    pub fn token(self) -> &'static str {
        match self {
            Section::Rsrc => "rsrc",
            Section::Appl => "appl",
            Section::User => "user",
        }
    }

    /// Parses a section token.
    pub fn parse(token: &str) -> Option<Section> {
        match token.to_ascii_lowercase().as_str() {
            "rsrc" => Some(Section::Rsrc),
            "appl" => Some(Section::Appl),
            "user" => Some(Section::User),
            _ => None,
        }
    }
}

/// A fully qualified key: `family.section.name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Protocol family (the paper implements `punch`; other families allow
    /// the pipeline to carry other semantics, e.g. translated ClassAds).
    pub family: String,
    /// Namespace section.
    pub section: Section,
    /// Final key name (`arch`, `memory`, `expectedcpuuse`, `login`, …).
    pub name: String,
}

impl QueryKey {
    /// Builds a key in the `punch` family.
    pub fn punch(section: Section, name: impl Into<String>) -> Self {
        QueryKey {
            family: "punch".to_string(),
            section,
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// Builds a `punch.rsrc.*` key.
    pub fn rsrc(name: impl Into<String>) -> Self {
        Self::punch(Section::Rsrc, name)
    }

    /// Builds a `punch.appl.*` key.
    pub fn appl(name: impl Into<String>) -> Self {
        Self::punch(Section::Appl, name)
    }

    /// Builds a `punch.user.*` key.
    pub fn user(name: impl Into<String>) -> Self {
        Self::punch(Section::User, name)
    }
}

impl fmt::Display for QueryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.family, self.section.token(), self.name)
    }
}

/// Comparison operators supported for `rsrc` constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality (the default when no operator prefix is written).
    Eq,
    /// Inequality.
    Ne,
    /// Greater-or-equal.
    Ge,
    /// Less-or-equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Strictly less.
    Lt,
}

impl CmpOp {
    /// Symbol used in pool signatures (the paper writes `==`, `>=`, …).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
        }
    }

    /// Strips a leading operator from a value token, returning the operator
    /// and the remainder.  No prefix means equality.
    pub fn strip_prefix(token: &str) -> (CmpOp, &str) {
        let t = token.trim();
        for (prefix, op) in [
            (">=", CmpOp::Ge),
            ("<=", CmpOp::Le),
            ("!=", CmpOp::Ne),
            ("==", CmpOp::Eq),
            (">", CmpOp::Gt),
            ("<", CmpOp::Lt),
        ] {
            if let Some(rest) = t.strip_prefix(prefix) {
                return (op, rest.trim());
            }
        }
        (CmpOp::Eq, t)
    }

    /// Applies the operator to an ordering of machine value vs. query value.
    pub fn evaluate_ordering(self, ordering: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ordering == Equal,
            CmpOp::Ne => ordering != Equal,
            CmpOp::Ge => ordering != Less,
            CmpOp::Le => ordering != Greater,
            CmpOp::Gt => ordering == Greater,
            CmpOp::Lt => ordering == Less,
        }
    }
}

/// A single constraint: an operator and the value it compares against.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Comparison operator.
    pub op: CmpOp,
    /// Query-side value.
    pub value: AttrValue,
}

impl Constraint {
    /// Equality constraint.
    pub fn eq(value: impl Into<AttrValue>) -> Self {
        Constraint {
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `>=` constraint.
    pub fn ge(value: impl Into<AttrValue>) -> Self {
        Constraint {
            op: CmpOp::Ge,
            value: value.into(),
        }
    }

    /// Builds a constraint from an operator and value.
    pub fn new(op: CmpOp, value: impl Into<AttrValue>) -> Self {
        Constraint {
            op,
            value: value.into(),
        }
    }

    /// Textual rendering as it appears on the value side of a clause.
    pub fn render(&self) -> String {
        if self.op == CmpOp::Eq {
            self.value.canonical()
        } else {
            format!("{}{}", self.op.symbol(), self.value.canonical())
        }
    }
}

/// One clause of a (possibly composite) query.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    /// The constrained key.
    pub key: QueryKey,
    /// Alternative constraints; more than one makes the query composite.
    pub alternatives: Vec<Constraint>,
}

impl Clause {
    /// A simple single-constraint clause.
    pub fn single(key: QueryKey, constraint: Constraint) -> Self {
        Clause {
            key,
            alternatives: vec![constraint],
        }
    }

    /// Whether this clause carries alternatives ("or" clause).
    pub fn is_composite(&self) -> bool {
        self.alternatives.len() > 1
    }
}

/// A clause of a basic (decomposed) query: exactly one constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicClause {
    /// The constrained key.
    pub key: QueryKey,
    /// The single constraint.
    pub constraint: Constraint,
}

/// A query as submitted by a client: a conjunction of clauses, possibly with
/// "or" alternatives inside individual clauses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The clauses, in submission order.
    pub clauses: Vec<Clause>,
}

impl Query {
    /// An empty query (matches every machine: all `rsrc` keys default to
    /// "don't care").
    pub fn new() -> Self {
        Query::default()
    }

    /// Builder-style addition of a single-constraint clause.
    pub fn with(mut self, key: QueryKey, constraint: Constraint) -> Self {
        self.clauses.push(Clause::single(key, constraint));
        self
    }

    /// Builder-style addition of an "or" clause.
    pub fn with_alternatives(mut self, key: QueryKey, alternatives: Vec<Constraint>) -> Self {
        self.clauses.push(Clause { key, alternatives });
        self
    }

    /// Convenience: the paper's example query.
    pub fn paper_example() -> Self {
        Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .with(QueryKey::rsrc("memory"), Constraint::ge(10u64))
            .with(QueryKey::rsrc("license"), Constraint::eq("tsuprem4"))
            .with(QueryKey::rsrc("domain"), Constraint::eq("purdue"))
            .with(QueryKey::appl("expectedcpuuse"), Constraint::eq(1000u64))
            .with(QueryKey::user("login"), Constraint::eq("kapadia"))
            .with(QueryKey::user("accessgroup"), Constraint::eq("ece"))
    }

    /// Whether any clause carries alternatives.
    pub fn is_composite(&self) -> bool {
        self.clauses.iter().any(Clause::is_composite)
    }

    /// Number of basic queries a decomposition will produce (the product of
    /// the alternative counts).
    pub fn decomposition_size(&self) -> usize {
        self.clauses
            .iter()
            .map(|c| c.alternatives.len().max(1))
            .product()
    }

    /// Decomposes the query into basic queries — the cartesian product of
    /// the per-clause alternatives.  `limit` caps the expansion so a
    /// malformed query cannot blow up the pipeline; excess combinations are
    /// dropped (the paper's prototype did not support composite queries at
    /// all, so any bound is an extension).
    pub fn decompose(&self, limit: usize) -> Vec<BasicQuery> {
        let mut result: Vec<Vec<BasicClause>> = vec![Vec::new()];
        for clause in &self.clauses {
            let mut next = Vec::new();
            for partial in &result {
                for alt in &clause.alternatives {
                    if next.len() >= limit {
                        break;
                    }
                    let mut extended = partial.clone();
                    extended.push(BasicClause {
                        key: clause.key.clone(),
                        constraint: alt.clone(),
                    });
                    next.push(extended);
                }
            }
            result = next;
            if result.len() >= limit {
                result.truncate(limit);
            }
        }
        result
            .into_iter()
            .map(|clauses| BasicQuery { clauses })
            .collect()
    }

    /// Looks up the first constraint on a key, if present.
    pub fn constraint(&self, key: &QueryKey) -> Option<&Constraint> {
        self.clauses
            .iter()
            .find(|c| &c.key == key)
            .and_then(|c| c.alternatives.first())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for clause in &self.clauses {
            let alts: Vec<String> = clause.alternatives.iter().map(Constraint::render).collect();
            writeln!(f, "{} = {}", clause.key, alts.join(" | "))?;
        }
        Ok(())
    }
}

/// A basic (non-composite) query produced by decomposition, or submitted
/// directly when the client needs no alternatives.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BasicQuery {
    /// The clauses, one constraint each.
    pub clauses: Vec<BasicClause>,
}

impl BasicQuery {
    /// The `rsrc` clauses — these drive pool naming and machine matching.
    pub fn rsrc_clauses(&self) -> impl Iterator<Item = &BasicClause> {
        self.clauses
            .iter()
            .filter(|c| c.key.section == Section::Rsrc)
    }

    /// Value of a key in a given section, if present.
    pub fn value(&self, section: Section, name: &str) -> Option<&AttrValue> {
        self.clauses
            .iter()
            .find(|c| c.key.section == section && c.key.name == name)
            .map(|c| &c.constraint.value)
    }

    /// The user login carried by the query ("undefined" keys are absent).
    pub fn user_login(&self) -> Option<&str> {
        self.value(Section::User, "login").and_then(|v| v.as_str())
    }

    /// The user access group carried by the query.
    pub fn access_group(&self) -> Option<&str> {
        self.value(Section::User, "accessgroup")
            .and_then(|v| v.as_str())
    }

    /// The predicted CPU use in reference-machine seconds, if estimated.
    pub fn expected_cpu_use(&self) -> Option<f64> {
        self.value(Section::Appl, "expectedcpuuse")
            .and_then(|v| v.as_num())
    }

    /// The predicted memory need in megabytes, if estimated.
    pub fn expected_memory(&self) -> Option<f64> {
        self.value(Section::Appl, "expectedmemoryuse")
            .and_then(|v| v.as_num())
    }

    /// Converts back to a (non-composite) [`Query`], used when a stage needs
    /// to re-enter the pipeline.
    pub fn to_query(&self) -> Query {
        Query {
            clauses: self
                .clauses
                .iter()
                .map(|c| Clause::single(c.key.clone(), c.constraint.clone()))
                .collect(),
        }
    }
}

impl fmt::Display for BasicQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_render_hierarchically() {
        assert_eq!(QueryKey::rsrc("arch").to_string(), "punch.rsrc.arch");
        assert_eq!(
            QueryKey::appl("expectedcpuuse").to_string(),
            "punch.appl.expectedcpuuse"
        );
        assert_eq!(QueryKey::user("LOGIN").name, "login");
    }

    #[test]
    fn section_tokens_round_trip() {
        for s in [Section::Rsrc, Section::Appl, Section::User] {
            assert_eq!(Section::parse(s.token()), Some(s));
        }
        assert_eq!(Section::parse("bogus"), None);
    }

    #[test]
    fn operator_prefix_stripping() {
        assert_eq!(CmpOp::strip_prefix(">=10"), (CmpOp::Ge, "10"));
        assert_eq!(CmpOp::strip_prefix("<= 20"), (CmpOp::Le, "20"));
        assert_eq!(CmpOp::strip_prefix("sun"), (CmpOp::Eq, "sun"));
        assert_eq!(CmpOp::strip_prefix("!=hp"), (CmpOp::Ne, "hp"));
        assert_eq!(CmpOp::strip_prefix(">5"), (CmpOp::Gt, "5"));
        assert_eq!(CmpOp::strip_prefix("==x"), (CmpOp::Eq, "x"));
    }

    #[test]
    fn operator_evaluation() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.evaluate_ordering(Equal));
        assert!(!CmpOp::Eq.evaluate_ordering(Less));
        assert!(CmpOp::Ge.evaluate_ordering(Equal));
        assert!(CmpOp::Ge.evaluate_ordering(Greater));
        assert!(!CmpOp::Ge.evaluate_ordering(Less));
        assert!(CmpOp::Lt.evaluate_ordering(Less));
        assert!(CmpOp::Ne.evaluate_ordering(Greater));
    }

    #[test]
    fn paper_example_is_not_composite() {
        let q = Query::paper_example();
        assert!(!q.is_composite());
        assert_eq!(q.decomposition_size(), 1);
        let basics = q.decompose(16);
        assert_eq!(basics.len(), 1);
        assert_eq!(basics[0].user_login(), Some("kapadia"));
        assert_eq!(basics[0].access_group(), Some("ece"));
        assert_eq!(basics[0].expected_cpu_use(), Some(1000.0));
    }

    #[test]
    fn composite_decomposition_is_cartesian() {
        // arch = sun | hp, memory >= 10 | >= 100  → 4 basic queries.
        let q = Query::new()
            .with_alternatives(
                QueryKey::rsrc("arch"),
                vec![Constraint::eq("sun"), Constraint::eq("hp")],
            )
            .with_alternatives(
                QueryKey::rsrc("memory"),
                vec![Constraint::ge(10u64), Constraint::ge(100u64)],
            );
        assert!(q.is_composite());
        assert_eq!(q.decomposition_size(), 4);
        let basics = q.decompose(16);
        assert_eq!(basics.len(), 4);
        let archs: Vec<&str> = basics
            .iter()
            .map(|b| {
                b.value(Section::Rsrc, "arch")
                    .and_then(|v| v.as_str())
                    .unwrap()
            })
            .collect();
        assert_eq!(archs.iter().filter(|a| **a == "sun").count(), 2);
        assert_eq!(archs.iter().filter(|a| **a == "hp").count(), 2);
    }

    #[test]
    fn decomposition_respects_limit() {
        let q = Query::new().with_alternatives(
            QueryKey::rsrc("arch"),
            (0..10).map(|i| Constraint::eq(format!("a{i}"))).collect(),
        );
        assert_eq!(q.decompose(3).len(), 3);
    }

    #[test]
    fn basic_query_to_query_round_trips() {
        let q = Query::paper_example();
        let b = q.decompose(4).remove(0);
        assert_eq!(b.to_query(), q);
    }

    #[test]
    fn rsrc_clause_filtering() {
        let q = Query::paper_example().decompose(1).remove(0);
        assert_eq!(q.rsrc_clauses().count(), 4);
        assert!(q.value(Section::Rsrc, "arch").is_some());
        assert!(q.value(Section::Rsrc, "nonexistent").is_none());
    }

    #[test]
    fn constraint_rendering() {
        assert_eq!(Constraint::eq("sun").render(), "sun");
        assert_eq!(Constraint::ge(10u64).render(), ">=10");
        assert_eq!(Constraint::new(CmpOp::Lt, 5u64).render(), "<5");
    }

    #[test]
    fn display_lists_one_clause_per_line() {
        let q = Query::paper_example();
        let text = q.to_string();
        assert_eq!(text.lines().count(), 7);
        assert!(text.contains("punch.rsrc.memory = >=10"));
        assert!(text.contains("punch.user.login = kapadia"));
    }

    #[test]
    fn empty_query_decomposes_to_single_empty_basic() {
        let q = Query::new();
        let basics = q.decompose(8);
        assert_eq!(basics.len(), 1);
        assert!(basics[0].clauses.is_empty());
    }
}
