//! Administrator-defined query schemas.
//!
//! "Valid words for the final part of the key and the interpretation of the
//! value part of the key-value pairs (e.g., numeric, string, range, etc.) are
//! specified by administrators" (Section 5.1).  A [`QuerySchema`] holds those
//! definitions for one protocol family, validates incoming queries, and
//! implements the defaulting rules: a missing `rsrc` key means "don't care";
//! missing `appl`/`user` keys are "undefined".

use std::collections::BTreeMap;

use crate::ast::{CmpOp, Query, Section};

/// How the value of a key is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Free-form string (architecture names, logins, …).
    Text,
    /// Numeric quantity; comparisons are ordered.
    Numeric,
    /// A set of strings (e.g. supported cluster-management systems).
    Set,
}

/// Schema entry for one key.
#[derive(Debug, Clone)]
pub struct KeySchema {
    /// Key name (the final component).
    pub name: String,
    /// Value interpretation.
    pub kind: ValueKind,
    /// Operators administrators allow on this key.
    pub allowed_ops: Vec<CmpOp>,
    /// Human-readable description for operator documentation.
    pub description: String,
}

impl KeySchema {
    /// A textual key allowing equality and inequality.
    pub fn text(name: &str, description: &str) -> Self {
        KeySchema {
            name: name.to_string(),
            kind: ValueKind::Text,
            allowed_ops: vec![CmpOp::Eq, CmpOp::Ne],
            description: description.to_string(),
        }
    }

    /// A numeric key allowing the full ordered-comparison set.
    pub fn numeric(name: &str, description: &str) -> Self {
        KeySchema {
            name: name.to_string(),
            kind: ValueKind::Numeric,
            allowed_ops: vec![
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Ge,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Lt,
            ],
            description: description.to_string(),
        }
    }

    /// A set-valued key allowing membership (equality) tests.
    pub fn set(name: &str, description: &str) -> Self {
        KeySchema {
            name: name.to_string(),
            kind: ValueKind::Set,
            allowed_ops: vec![CmpOp::Eq, CmpOp::Ne],
            description: description.to_string(),
        }
    }
}

/// A schema violation found during validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The query's family is not the one this schema describes.
    WrongFamily {
        /// Family found in the query.
        found: String,
        /// Family the schema expects.
        expected: String,
    },
    /// A key name is not defined for its section.
    UnknownKey {
        /// Namespace section.
        section: Section,
        /// Offending key name.
        name: String,
    },
    /// An operator is not allowed on the key.
    OperatorNotAllowed {
        /// Key name.
        name: String,
        /// The rejected operator.
        op: CmpOp,
    },
    /// A numeric key was given a non-numeric value.
    NotNumeric {
        /// Key name.
        name: String,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::WrongFamily { found, expected } => {
                write!(
                    f,
                    "query family `{found}` does not match schema `{expected}`"
                )
            }
            SchemaError::UnknownKey { section, name } => {
                write!(
                    f,
                    "key `{name}` is not defined in section `{}`",
                    section.token()
                )
            }
            SchemaError::OperatorNotAllowed { name, op } => {
                write!(
                    f,
                    "operator `{}` is not allowed on key `{name}`",
                    op.symbol()
                )
            }
            SchemaError::NotNumeric { name } => {
                write!(f, "key `{name}` requires a numeric value")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// The schema for one protocol family.
#[derive(Debug, Clone)]
pub struct QuerySchema {
    family: String,
    rsrc: BTreeMap<String, KeySchema>,
    appl: BTreeMap<String, KeySchema>,
    user: BTreeMap<String, KeySchema>,
    /// Whether keys not present in the schema are accepted (administrators
    /// can extend machine attributes without touching the schema; the PUNCH
    /// deployment ran in this permissive mode).
    pub allow_unknown_keys: bool,
}

impl QuerySchema {
    /// An empty schema for a family.
    pub fn new(family: impl Into<String>) -> Self {
        QuerySchema {
            family: family.into(),
            rsrc: BTreeMap::new(),
            appl: BTreeMap::new(),
            user: BTreeMap::new(),
            allow_unknown_keys: false,
        }
    }

    /// The family this schema describes.
    pub fn family(&self) -> &str {
        &self.family
    }

    /// Adds a key definition to a section (builder style).
    pub fn with_key(mut self, section: Section, key: KeySchema) -> Self {
        self.section_mut(section).insert(key.name.clone(), key);
        self
    }

    /// Permits keys that are not declared (builder style).
    pub fn permissive(mut self) -> Self {
        self.allow_unknown_keys = true;
        self
    }

    fn section(&self, section: Section) -> &BTreeMap<String, KeySchema> {
        match section {
            Section::Rsrc => &self.rsrc,
            Section::Appl => &self.appl,
            Section::User => &self.user,
        }
    }

    fn section_mut(&mut self, section: Section) -> &mut BTreeMap<String, KeySchema> {
        match section {
            Section::Rsrc => &mut self.rsrc,
            Section::Appl => &mut self.appl,
            Section::User => &mut self.user,
        }
    }

    /// Looks up the schema of a key.
    pub fn key(&self, section: Section, name: &str) -> Option<&KeySchema> {
        self.section(section).get(name)
    }

    /// Number of declared keys across all sections.
    pub fn len(&self) -> usize {
        self.rsrc.len() + self.appl.len() + self.user.len()
    }

    /// Whether the schema declares no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates a query against the schema, returning every violation.
    pub fn validate(&self, query: &Query) -> Vec<SchemaError> {
        let mut errors = Vec::new();
        for clause in &query.clauses {
            if clause.key.family != self.family {
                errors.push(SchemaError::WrongFamily {
                    found: clause.key.family.clone(),
                    expected: self.family.clone(),
                });
                continue;
            }
            let Some(key_schema) = self.key(clause.key.section, &clause.key.name) else {
                if !self.allow_unknown_keys {
                    errors.push(SchemaError::UnknownKey {
                        section: clause.key.section,
                        name: clause.key.name.clone(),
                    });
                }
                continue;
            };
            for alt in &clause.alternatives {
                if !key_schema.allowed_ops.contains(&alt.op) {
                    errors.push(SchemaError::OperatorNotAllowed {
                        name: clause.key.name.clone(),
                        op: alt.op,
                    });
                }
                if key_schema.kind == ValueKind::Numeric && alt.value.as_num().is_none() {
                    errors.push(SchemaError::NotNumeric {
                        name: clause.key.name.clone(),
                    });
                }
            }
        }
        errors
    }

    /// The default `punch` family schema used throughout the reproduction:
    /// the parameters the paper lists as typically used (`arch`, `memory`,
    /// `ostype`, `osversion`, `owner`, `swap`, `cms`) plus the dynamic and
    /// application/user keys the example query exercises.
    pub fn punch_default() -> Self {
        QuerySchema::new("punch")
            .with_key(
                Section::Rsrc,
                KeySchema::text("arch", "machine architecture"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::numeric("memory", "installed memory (MB)"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::text("ostype", "operating system type"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::text("osversion", "operating system version"),
            )
            .with_key(Section::Rsrc, KeySchema::text("owner", "machine owner"))
            .with_key(Section::Rsrc, KeySchema::numeric("swap", "swap space (MB)"))
            .with_key(
                Section::Rsrc,
                KeySchema::set("cms", "supported cluster management systems"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::text("domain", "administrative domain"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::text("license", "application license required"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::numeric("load", "current load average"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::numeric("cpus", "number of processors"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::numeric("speed", "effective speed rating"),
            )
            .with_key(
                Section::Rsrc,
                KeySchema::numeric("availablememory", "free memory (MB)"),
            )
            .with_key(
                Section::Appl,
                KeySchema::numeric(
                    "expectedcpuuse",
                    "predicted CPU seconds on the reference machine",
                ),
            )
            .with_key(
                Section::Appl,
                KeySchema::numeric("expectedmemoryuse", "predicted memory footprint (MB)"),
            )
            .with_key(
                Section::Appl,
                KeySchema::text("toolgroup", "tool group of the application"),
            )
            .with_key(
                Section::User,
                KeySchema::text("login", "requesting user's login"),
            )
            .with_key(
                Section::User,
                KeySchema::text("accessgroup", "requesting user's access group"),
            )
            .with_key(
                Section::User,
                KeySchema::text("accesskey", "session access key"),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Constraint, Query, QueryKey};

    #[test]
    fn paper_example_is_valid_under_default_schema() {
        let schema = QuerySchema::punch_default();
        assert!(schema.validate(&Query::paper_example()).is_empty());
    }

    #[test]
    fn unknown_key_is_reported_unless_permissive() {
        let schema = QuerySchema::punch_default();
        let q = Query::new().with(QueryKey::rsrc("gpu"), Constraint::eq("a100"));
        let errors = schema.validate(&q);
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0], SchemaError::UnknownKey { .. }));

        let permissive = QuerySchema::punch_default().permissive();
        assert!(permissive.validate(&q).is_empty());
    }

    #[test]
    fn operator_restrictions_are_enforced() {
        let schema = QuerySchema::punch_default();
        // Ordered comparison on a text key is rejected.
        let q = Query::new().with(QueryKey::rsrc("arch"), Constraint::new(CmpOp::Ge, "sun"));
        let errors = schema.validate(&q);
        assert!(errors
            .iter()
            .any(|e| matches!(e, SchemaError::OperatorNotAllowed { .. })));
    }

    #[test]
    fn numeric_keys_require_numeric_values() {
        let schema = QuerySchema::punch_default();
        let q = Query::new().with(QueryKey::rsrc("memory"), Constraint::ge("lots"));
        let errors = schema.validate(&q);
        assert!(errors
            .iter()
            .any(|e| matches!(e, SchemaError::NotNumeric { .. })));
    }

    #[test]
    fn wrong_family_is_reported() {
        let schema = QuerySchema::punch_default();
        let mut q = Query::new();
        q.clauses.push(crate::ast::Clause::single(
            QueryKey {
                family: "condor".to_string(),
                section: Section::Rsrc,
                name: "arch".to_string(),
            },
            Constraint::eq("intel"),
        ));
        let errors = schema.validate(&q);
        assert!(matches!(errors[0], SchemaError::WrongFamily { .. }));
    }

    #[test]
    fn schema_lookup_and_len() {
        let schema = QuerySchema::punch_default();
        assert!(schema.key(Section::Rsrc, "arch").is_some());
        assert!(schema.key(Section::User, "login").is_some());
        assert!(schema.key(Section::Appl, "arch").is_none());
        assert!(!schema.is_empty());
        assert!(schema.len() >= 15);
        assert_eq!(schema.family(), "punch");
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = SchemaError::OperatorNotAllowed {
            name: "arch".to_string(),
            op: CmpOp::Ge,
        };
        assert!(e.to_string().contains(">="));
        assert!(e.to_string().contains("arch"));
        let u = SchemaError::UnknownKey {
            section: Section::Rsrc,
            name: "gpu".to_string(),
        };
        assert!(u.to_string().contains("rsrc"));
    }
}
