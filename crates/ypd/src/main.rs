//! `ypd` — the Active Yellow Pages daemon.
//!
//! Hosts any `ResourceManager` backend (embedded engine, threaded live
//! pipeline, or a centralized baseline) behind the versioned `actyp-proto`
//! wire protocol, over a synthetic white-pages fleet.  Clients connect with
//! `actyp_pipeline::api::PipelineBuilder::remote` (or any implementation of
//! the protocol) and drive the exact same API the in-process backends
//! serve.
//!
//! ```text
//! ypd --listen 127.0.0.1:7411 --backend live --machines 500 --seed 42
//! ```
//!
//! The listen address may also come from the `ACTYP_YPD_LISTEN` environment
//! variable; an explicit `--listen` wins.  The daemon runs until a client
//! sends the protocol's `Halt` frame (see the `remote_quickstart` example's
//! `--halt` flag), then drains gracefully: the listener stops accepting,
//! open sessions finish and are settled, and the hosted backend is torn
//! down.  Exit status is 0 after a clean drain, non-zero on any failure.

use std::process::ExitCode;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{BackendKind, PipelineBuilder, StageAddress};

const USAGE: &str = "\
usage: ypd [--listen HOST:PORT] [--backend KIND] [--machines N] [--seed N]
           [--query-managers N] [--pool-managers N] [--window N]

  --listen HOST:PORT   address to bind (default: $ACTYP_YPD_LISTEN or 127.0.0.1:7411)
  --backend KIND       embedded | live | central-queue | matchmaker (default: live)
  --machines N         synthetic fleet size (default: 500)
  --seed N             synthetic fleet / pipeline RNG seed (default: 42)
  --query-managers N   query-manager stages (default: 1)
  --pool-managers N    pool-manager stages (default: 1)
  --window N           live-backend in-flight window (default: 32)";

#[derive(Debug, PartialEq)]
struct Config {
    listen: StageAddress,
    backend: BackendKind,
    machines: usize,
    seed: u64,
    query_managers: usize,
    pool_managers: usize,
    window: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: StageAddress::new("127.0.0.1", 7411),
            backend: BackendKind::Live,
            machines: 500,
            seed: 42,
            query_managers: 1,
            pool_managers: 1,
            window: 32,
        }
    }
}

fn parse_backend(raw: &str) -> Result<BackendKind, String> {
    BackendKind::ALL
        .into_iter()
        .find(|kind| kind.to_string() == raw)
        .ok_or_else(|| {
            format!(
                "unknown backend `{raw}` (expected one of: {})",
                BackendKind::ALL.map(|k| k.to_string()).join(", ")
            )
        })
}

fn parse_args(
    args: impl IntoIterator<Item = String>,
    env_listen: Option<&str>,
) -> Result<Config, String> {
    let mut config = Config::default();
    if let Some(listen) = env_listen {
        config.listen = listen
            .parse()
            .map_err(|e| format!("ACTYP_YPD_LISTEN: {e}"))?;
    }
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--listen" => {
                let raw = value("--listen")?;
                config.listen = raw.parse().map_err(|e| format!("--listen: {e}"))?;
            }
            "--backend" => config.backend = parse_backend(&value("--backend")?)?,
            "--machines" => {
                let raw = value("--machines")?;
                config.machines = raw
                    .parse()
                    .map_err(|_| format!("--machines: invalid count `{raw}`"))?;
            }
            "--seed" => {
                let raw = value("--seed")?;
                config.seed = raw
                    .parse()
                    .map_err(|_| format!("--seed: invalid seed `{raw}`"))?;
            }
            "--query-managers" => {
                let raw = value("--query-managers")?;
                config.query_managers = raw
                    .parse()
                    .map_err(|_| format!("--query-managers: invalid count `{raw}`"))?;
            }
            "--pool-managers" => {
                let raw = value("--pool-managers")?;
                config.pool_managers = raw
                    .parse()
                    .map_err(|_| format!("--pool-managers: invalid count `{raw}`"))?;
            }
            "--window" => {
                let raw = value("--window")?;
                config.window = raw
                    .parse()
                    .map_err(|_| format!("--window: invalid size `{raw}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let env_listen = std::env::var("ACTYP_YPD_LISTEN").ok();
    let config = match parse_args(std::env::args().skip(1), env_listen.as_deref()) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("ypd: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let db = SyntheticFleet::new(FleetSpec::with_machines(config.machines), config.seed)
        .generate()
        .into_shared();
    let server = PipelineBuilder::new()
        .database(db)
        .seed(config.seed)
        .query_managers(config.query_managers)
        .pool_managers(config.pool_managers)
        .window(config.window)
        .serve(&config.listen, config.backend);
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ypd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "ypd: listening on {} ({} backend, {} machines, seed {})",
        server.local_addr(),
        config.backend,
        config.machines,
        config.seed
    );

    match server.join() {
        Ok(()) => {
            println!("ypd: drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ypd: drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let config = parse_args(args(&[]), None).unwrap();
        assert_eq!(config, Config::default());
    }

    #[test]
    fn flags_override_every_default() {
        let config = parse_args(
            args(&[
                "--listen",
                "0.0.0.0:9000",
                "--backend",
                "embedded",
                "--machines",
                "64",
                "--seed",
                "7",
                "--query-managers",
                "2",
                "--pool-managers",
                "3",
                "--window",
                "16",
            ]),
            None,
        )
        .unwrap();
        assert_eq!(config.listen, StageAddress::new("0.0.0.0", 9000));
        assert_eq!(config.backend, BackendKind::Embedded);
        assert_eq!(config.machines, 64);
        assert_eq!(config.seed, 7);
        assert_eq!(config.query_managers, 2);
        assert_eq!(config.pool_managers, 3);
        assert_eq!(config.window, 16);
    }

    #[test]
    fn env_listen_is_used_and_cli_wins_over_it() {
        let from_env = parse_args(args(&[]), Some("10.0.0.1:7500")).unwrap();
        assert_eq!(from_env.listen, StageAddress::new("10.0.0.1", 7500));
        let overridden =
            parse_args(args(&["--listen", "127.0.0.1:0"]), Some("10.0.0.1:7500")).unwrap();
        assert_eq!(overridden.listen, StageAddress::new("127.0.0.1", 0));
    }

    #[test]
    fn bad_addresses_and_backends_are_reported() {
        assert!(parse_args(args(&["--listen", "noport"]), None)
            .unwrap_err()
            .contains("host:port"));
        assert!(parse_args(args(&["--backend", "quantum"]), None)
            .unwrap_err()
            .contains("unknown backend"));
        assert!(parse_args(args(&["--machines", "many"]), None)
            .unwrap_err()
            .contains("invalid count"));
        assert!(parse_args(args(&["--listen"]), None)
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(args(&["--frobnicate"]), None)
            .unwrap_err()
            .contains("unknown flag"));
        assert!(parse_args(args(&[]), Some("bogus"))
            .unwrap_err()
            .contains("ACTYP_YPD_LISTEN"));
    }

    #[test]
    fn every_backend_name_parses() {
        for kind in BackendKind::ALL {
            assert_eq!(parse_backend(&kind.to_string()).unwrap(), kind);
        }
    }
}
