//! `ypd` — the Active Yellow Pages daemon.
//!
//! Hosts any `ResourceManager` backend (embedded engine, threaded live
//! pipeline, or a centralized baseline) behind the versioned `actyp-proto`
//! wire protocol, over a synthetic white-pages fleet.  Clients connect with
//! `actyp_pipeline::api::PipelineBuilder::remote` (or any implementation of
//! the protocol) and drive the exact same API the in-process backends
//! serve.
//!
//! ```text
//! ypd --listen 127.0.0.1:7411 --backend live --machines 500 --seed 42
//! ```
//!
//! # Thread model
//!
//! Session I/O is event driven by default (`--sessions reactor`): a fixed
//! pool of I/O threads (`--io-threads`) drives every connection's
//! nonblocking socket through an epoll/poll reactor, and blocking backend
//! calls run on capped worker lanes (`--workers` threads each for the
//! submit, redeem and teardown lanes), so the daemon's thread count is
//! independent of how many clients and peer daemons are connected.  `--sessions threaded` restores the legacy
//! thread-per-session mode; `--poller poll` forces the portable `poll(2)`
//! fallback where epoll is undesirable.
//!
//! # Wide-area federation
//!
//! Give the daemon a domain name and peer addresses and it joins the
//! paper's WAN topology: a query its own backend cannot satisfy is
//! delegated to peers over the wire, carrying a TTL and the visited-domain
//! list, and the originating client's ticket settles with the remote
//! allocation (or `TtlExpired` when the federation is exhausted):
//!
//! ```text
//! ypd --listen 127.0.0.1:7421 --domain purdue --arch sun --peer 127.0.0.1:7422 &
//! ypd --listen 127.0.0.1:7422 --domain upc    --arch hp  --peer 127.0.0.1:7421 &
//! ```
//!
//! The listen address may also come from the `ACTYP_YPD_LISTEN` environment
//! variable, the domain from `ACTYP_YPD_DOMAIN`, and the peer list from
//! `ACTYP_YPD_PEERS` (comma separated); explicit flags win.  The daemon
//! runs until a client sends the protocol's `Halt` frame (see the
//! `remote_quickstart` example's `--halt` flag), then drains gracefully:
//! the listener stops accepting, open sessions finish and are settled, and
//! the hosted backend is torn down.  Exit status is 0 after a clean drain,
//! non-zero on any failure.

use std::process::ExitCode;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{
    BackendKind, FederationConfig, PipelineBuilder, PollerKind, ResourceManager, SessionMode,
    StageAddress,
};

const USAGE: &str = "\
usage: ypd [--listen HOST:PORT] [--backend KIND] [--machines N] [--seed N]
           [--arch NAME] [--query-managers N] [--pool-managers N] [--window N]
           [--shards N]
           [--sessions MODE] [--io-threads N] [--workers N] [--poller KIND]
           [--domain NAME] [--peer HOST:PORT]... [--ttl N]
           [--gossip-interval MS] [--probe-interval MS] [--no-route-cache]
           [--stats-interval N]

  --listen HOST:PORT   address to bind (default: $ACTYP_YPD_LISTEN or 127.0.0.1:7411)
  --backend KIND       embedded | live | central-queue | matchmaker (default: live)
  --machines N         synthetic fleet size (default: 500)
  --seed N             synthetic fleet / pipeline RNG seed (default: 42)
  --arch NAME          homogeneous fleet of this architecture (default: mixed fleet)
  --query-managers N   query-manager stages (default: 1)
  --pool-managers N    pool-manager stages (default: 1)
  --window N           live-backend in-flight window (default: 32)
  --shards N           shard count for the daemon's hot state: directory
                       shards and admission-window lanes (default: 8;
                       1 restores the old single-lock behaviour)
  --sessions MODE      session I/O: reactor | threaded
                       (default: $ACTYP_YPD_SESSIONS or reactor)
  --io-threads N       reactor I/O threads driving all session sockets
                       (default: $ACTYP_YPD_IO_THREADS or 2)
  --workers N          worker threads per lane (submit / redeem / teardown)
                       (default: $ACTYP_YPD_WORKERS or 4)
  --poller KIND        readiness poller: auto | epoll | poll (default: auto)
  --domain NAME        administrative-domain name for wide-area federation
                       (default: $ACTYP_YPD_DOMAIN; required with --peer)
  --peer HOST:PORT     peer daemon to delegate unsatisfiable queries to
                       (repeatable; default: $ACTYP_YPD_PEERS, comma separated)
  --ttl N              delegation time-to-live granted to queries (default: 8)
  --gossip-interval MS anti-entropy gossip period in milliseconds; each round
                       pushes advertisement-log deltas to every peer over the
                       standing links (0 disables the periodic tick, leaving
                       only piggybacked deltas; default: 1000)
  --probe-interval MS  peer-link health-probe period in milliseconds; each
                       round pings every established peer link on a short
                       deadline and prunes peers that fail, so dead peers
                       are noticed between delegations (0 disables;
                       default: 5000)
  --no-route-cache     disable the learned one-hop delegation route cache
                       (every WAN query walks the TTL-bounded peer chain)
  --stats-interval N   print a machine-readable stats line every N seconds
                       (the line load generators and the bench harness scrape;
                       0 disables, the default)";

#[derive(Debug, PartialEq)]
struct Config {
    listen: StageAddress,
    backend: BackendKind,
    machines: usize,
    seed: u64,
    arch: Option<String>,
    query_managers: usize,
    pool_managers: usize,
    window: usize,
    shards: usize,
    sessions: SessionMode,
    io_threads: usize,
    workers: usize,
    poller: PollerKind,
    domain: Option<String>,
    peers: Vec<StageAddress>,
    ttl: u32,
    gossip_interval_ms: u64,
    probe_interval_ms: u64,
    route_cache: bool,
    stats_interval: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: StageAddress::new("127.0.0.1", 7411),
            backend: BackendKind::Live,
            machines: 500,
            seed: 42,
            arch: None,
            query_managers: 1,
            pool_managers: 1,
            window: 32,
            shards: 8,
            sessions: SessionMode::Reactor,
            io_threads: 2,
            workers: 4,
            poller: PollerKind::Auto,
            domain: None,
            peers: Vec::new(),
            ttl: 8,
            gossip_interval_ms: 1_000,
            probe_interval_ms: 5_000,
            route_cache: true,
            stats_interval: 0,
        }
    }
}

/// Environment-variable inputs (so argument parsing stays testable).
#[derive(Debug, Default)]
struct EnvConfig<'a> {
    listen: Option<&'a str>,
    domain: Option<&'a str>,
    peers: Option<&'a str>,
    sessions: Option<&'a str>,
    io_threads: Option<&'a str>,
    workers: Option<&'a str>,
}

fn parse_backend(raw: &str) -> Result<BackendKind, String> {
    BackendKind::ALL
        .into_iter()
        .find(|kind| kind.to_string() == raw)
        .ok_or_else(|| {
            format!(
                "unknown backend `{raw}` (expected one of: {})",
                BackendKind::ALL.map(|k| k.to_string()).join(", ")
            )
        })
}

fn parse_args(
    args: impl IntoIterator<Item = String>,
    env: EnvConfig<'_>,
) -> Result<Config, String> {
    let mut config = Config::default();
    if let Some(listen) = env.listen {
        config.listen = listen
            .parse()
            .map_err(|e| format!("ACTYP_YPD_LISTEN: {e}"))?;
    }
    if let Some(domain) = env.domain {
        config.domain = Some(domain.to_string());
    }
    if let Some(peers) = env.peers {
        for raw in peers.split(',').filter(|s| !s.trim().is_empty()) {
            config
                .peers
                .push(raw.parse().map_err(|e| format!("ACTYP_YPD_PEERS: {e}"))?);
        }
    }
    if let Some(sessions) = env.sessions {
        config.sessions = sessions
            .parse()
            .map_err(|e| format!("ACTYP_YPD_SESSIONS: {e}"))?;
    }
    if let Some(io_threads) = env.io_threads {
        config.io_threads = io_threads
            .parse()
            .map_err(|_| format!("ACTYP_YPD_IO_THREADS: invalid count `{io_threads}`"))?;
    }
    if let Some(workers) = env.workers {
        config.workers = workers
            .parse()
            .map_err(|_| format!("ACTYP_YPD_WORKERS: invalid count `{workers}`"))?;
    }
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--listen" => {
                let raw = value("--listen")?;
                config.listen = raw.parse().map_err(|e| format!("--listen: {e}"))?;
            }
            "--backend" => config.backend = parse_backend(&value("--backend")?)?,
            "--machines" => {
                let raw = value("--machines")?;
                config.machines = raw
                    .parse()
                    .map_err(|_| format!("--machines: invalid count `{raw}`"))?;
            }
            "--seed" => {
                let raw = value("--seed")?;
                config.seed = raw
                    .parse()
                    .map_err(|_| format!("--seed: invalid seed `{raw}`"))?;
            }
            "--arch" => config.arch = Some(value("--arch")?),
            "--query-managers" => {
                let raw = value("--query-managers")?;
                config.query_managers = raw
                    .parse()
                    .map_err(|_| format!("--query-managers: invalid count `{raw}`"))?;
            }
            "--pool-managers" => {
                let raw = value("--pool-managers")?;
                config.pool_managers = raw
                    .parse()
                    .map_err(|_| format!("--pool-managers: invalid count `{raw}`"))?;
            }
            "--window" => {
                let raw = value("--window")?;
                config.window = raw
                    .parse()
                    .map_err(|_| format!("--window: invalid size `{raw}`"))?;
            }
            "--shards" => {
                let raw = value("--shards")?;
                config.shards = raw
                    .parse()
                    .map_err(|_| format!("--shards: invalid count `{raw}`"))?;
            }
            "--sessions" => {
                let raw = value("--sessions")?;
                config.sessions = raw.parse().map_err(|e| format!("--sessions: {e}"))?;
            }
            "--io-threads" => {
                let raw = value("--io-threads")?;
                config.io_threads = raw
                    .parse()
                    .map_err(|_| format!("--io-threads: invalid count `{raw}`"))?;
            }
            "--workers" => {
                let raw = value("--workers")?;
                config.workers = raw
                    .parse()
                    .map_err(|_| format!("--workers: invalid count `{raw}`"))?;
            }
            "--poller" => {
                let raw = value("--poller")?;
                config.poller = raw.parse().map_err(|e| format!("--poller: {e}"))?;
            }
            "--domain" => config.domain = Some(value("--domain")?),
            "--peer" => {
                let raw = value("--peer")?;
                config
                    .peers
                    .push(raw.parse().map_err(|e| format!("--peer: {e}"))?);
            }
            "--ttl" => {
                let raw = value("--ttl")?;
                config.ttl = raw
                    .parse()
                    .map_err(|_| format!("--ttl: invalid hop count `{raw}`"))?;
            }
            "--gossip-interval" => {
                let raw = value("--gossip-interval")?;
                config.gossip_interval_ms = raw
                    .parse()
                    .map_err(|_| format!("--gossip-interval: invalid milliseconds `{raw}`"))?;
            }
            "--probe-interval" => {
                let raw = value("--probe-interval")?;
                config.probe_interval_ms = raw
                    .parse()
                    .map_err(|_| format!("--probe-interval: invalid milliseconds `{raw}`"))?;
            }
            "--no-route-cache" => config.route_cache = false,
            "--stats-interval" => {
                let raw = value("--stats-interval")?;
                config.stats_interval = raw
                    .parse()
                    .map_err(|_| format!("--stats-interval: invalid seconds `{raw}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !config.peers.is_empty() && config.domain.is_none() {
        return Err(
            "--peer requires --domain (or ACTYP_YPD_DOMAIN): federation \
                    needs this daemon's administrative-domain name"
                .to_string(),
        );
    }
    Ok(config)
}

fn main() -> ExitCode {
    let env_listen = std::env::var("ACTYP_YPD_LISTEN").ok();
    let env_domain = std::env::var("ACTYP_YPD_DOMAIN").ok();
    let env_peers = std::env::var("ACTYP_YPD_PEERS").ok();
    let env_sessions = std::env::var("ACTYP_YPD_SESSIONS").ok();
    let env_io_threads = std::env::var("ACTYP_YPD_IO_THREADS").ok();
    let env_workers = std::env::var("ACTYP_YPD_WORKERS").ok();
    let env = EnvConfig {
        listen: env_listen.as_deref(),
        domain: env_domain.as_deref(),
        peers: env_peers.as_deref(),
        sessions: env_sessions.as_deref(),
        io_threads: env_io_threads.as_deref(),
        workers: env_workers.as_deref(),
    };
    let config = match parse_args(std::env::args().skip(1), env) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("ypd: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let spec = match &config.arch {
        Some(arch) => FleetSpec::homogeneous(config.machines, arch, 512),
        None => FleetSpec::with_machines(config.machines),
    };
    let db = SyntheticFleet::new(spec, config.seed)
        .generate()
        .into_shared();
    let builder = PipelineBuilder::new()
        .database(db)
        .seed(config.seed)
        .ttl(config.ttl)
        .query_managers(config.query_managers)
        .pool_managers(config.pool_managers)
        .window(config.window)
        .shards(config.shards)
        .session_mode(config.sessions)
        .reactor_io_threads(config.io_threads)
        .reactor_workers(config.workers)
        .poller(config.poller);

    let server = match &config.domain {
        None => builder.serve(&config.listen, config.backend),
        Some(domain) => builder
            .serve_federated(
                &config.listen,
                config.backend,
                FederationConfig {
                    domain: domain.clone(),
                    ttl: config.ttl,
                    peers: config.peers.clone(),
                    gossip_interval: std::time::Duration::from_millis(config.gossip_interval_ms),
                    probe_interval: std::time::Duration::from_millis(config.probe_interval_ms),
                    route_cache: config.route_cache,
                },
            )
            .map(|(handle, _backend)| handle),
    };
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ypd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    match &config.domain {
        None => println!(
            "ypd: listening on {} ({} backend, {} machines, seed {}, {} sessions)",
            server.local_addr(),
            config.backend,
            config.machines,
            config.seed,
            config.sessions
        ),
        Some(domain) => println!(
            "ypd: listening on {} ({} backend, {} machines, seed {}, {} sessions; \
             domain {domain}, {} peer(s), ttl {})",
            server.local_addr(),
            config.backend,
            config.machines,
            config.seed,
            config.sessions,
            config.peers.len(),
            config.ttl
        ),
    }

    if config.stats_interval > 0 {
        spawn_stats_reporter(server.local_addr(), config.stats_interval);
    }

    match server.join() {
        Ok(()) => {
            println!("ypd: drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ypd: drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Periodically prints the daemon's lifetime counters as one
/// machine-readable line, by polling its own wire endpoint the way any
/// client would (so the numbers are exactly what a remote observer sees,
/// and no side channel into the backend is needed).  The reporter ends
/// with the daemon: once the drain closes its connection the thread exits.
fn spawn_stats_reporter(addr: StageAddress, interval_secs: u64) {
    std::thread::spawn(move || {
        let backend = match PipelineBuilder::remote(&addr) {
            Ok(backend) => backend,
            Err(e) => {
                eprintln!("ypd: stats reporter could not connect: {e}");
                return;
            }
        };
        let interval = std::time::Duration::from_secs(interval_secs);
        loop {
            std::thread::sleep(interval);
            let stats = backend.stats();
            println!(
                "ypd: stats requests={} fragments={} allocations={} failures={} \
                 delegations={} forwards={} delegations_out={} delegations_in={} \
                 releases={} records_examined={} in_flight={} \
                 gossip_deltas_in={} gossip_deltas_out={} route_hits={} \
                 route_misses={} peer_redials={} shard_contention={} \
                 frames_batched={} writes_coalesced={}",
                stats.requests,
                stats.fragments,
                stats.allocations,
                stats.failures,
                stats.delegations,
                stats.forwards,
                stats.delegations_out,
                stats.delegations_in,
                stats.releases,
                stats.records_examined,
                stats.in_flight,
                stats.gossip_deltas_in,
                stats.gossip_deltas_out,
                stats.route_hits,
                stats.route_misses,
                stats.peer_redials,
                stats.shard_contention,
                stats.frames_batched,
                stats.writes_coalesced
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn no_env() -> EnvConfig<'static> {
        EnvConfig::default()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let config = parse_args(args(&[]), no_env()).unwrap();
        assert_eq!(config, Config::default());
    }

    #[test]
    fn flags_override_every_default() {
        let config = parse_args(
            args(&[
                "--listen",
                "0.0.0.0:9000",
                "--backend",
                "embedded",
                "--machines",
                "64",
                "--seed",
                "7",
                "--arch",
                "hp",
                "--query-managers",
                "2",
                "--pool-managers",
                "3",
                "--window",
                "16",
                "--shards",
                "4",
                "--sessions",
                "threaded",
                "--io-threads",
                "4",
                "--workers",
                "8",
                "--poller",
                "poll",
                "--domain",
                "purdue",
                "--peer",
                "127.0.0.1:7422",
                "--peer",
                "127.0.0.1:7423",
                "--ttl",
                "5",
                "--gossip-interval",
                "250",
                "--probe-interval",
                "750",
                "--no-route-cache",
            ]),
            no_env(),
        )
        .unwrap();
        assert_eq!(config.listen, StageAddress::new("0.0.0.0", 9000));
        assert_eq!(config.backend, BackendKind::Embedded);
        assert_eq!(config.machines, 64);
        assert_eq!(config.seed, 7);
        assert_eq!(config.arch.as_deref(), Some("hp"));
        assert_eq!(config.query_managers, 2);
        assert_eq!(config.pool_managers, 3);
        assert_eq!(config.window, 16);
        assert_eq!(config.shards, 4);
        assert_eq!(config.sessions, SessionMode::ThreadPerSession);
        assert_eq!(config.io_threads, 4);
        assert_eq!(config.workers, 8);
        assert_eq!(config.poller, PollerKind::Poll);
        assert_eq!(config.domain.as_deref(), Some("purdue"));
        assert_eq!(
            config.peers,
            vec![
                StageAddress::new("127.0.0.1", 7422),
                StageAddress::new("127.0.0.1", 7423),
            ]
        );
        assert_eq!(config.ttl, 5);
        assert_eq!(config.gossip_interval_ms, 250);
        assert_eq!(config.probe_interval_ms, 750);
        assert!(!config.route_cache);
    }

    #[test]
    fn gossip_interval_rejects_garbage() {
        let err = parse_args(args(&["--gossip-interval", "soon"]), no_env()).unwrap_err();
        assert!(err.contains("--gossip-interval"), "{err}");
        let err = parse_args(args(&["--gossip-interval"]), no_env()).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn probe_interval_parses_and_rejects_garbage() {
        let config = parse_args(args(&["--probe-interval", "0"]), no_env()).unwrap();
        assert_eq!(config.probe_interval_ms, 0, "zero disables probing");
        let err = parse_args(args(&["--probe-interval", "often"]), no_env()).unwrap_err();
        assert!(err.contains("--probe-interval"), "{err}");
        let err = parse_args(args(&["--probe-interval"]), no_env()).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn env_listen_is_used_and_cli_wins_over_it() {
        let env = EnvConfig {
            listen: Some("10.0.0.1:7500"),
            ..EnvConfig::default()
        };
        let from_env = parse_args(args(&[]), env).unwrap();
        assert_eq!(from_env.listen, StageAddress::new("10.0.0.1", 7500));
        let env = EnvConfig {
            listen: Some("10.0.0.1:7500"),
            ..EnvConfig::default()
        };
        let overridden = parse_args(args(&["--listen", "127.0.0.1:0"]), env).unwrap();
        assert_eq!(overridden.listen, StageAddress::new("127.0.0.1", 0));
    }

    #[test]
    fn env_federation_is_used_and_cli_wins_over_it() {
        let env = EnvConfig {
            domain: Some("upc"),
            peers: Some("10.0.0.1:7421, 10.0.0.2:7421"),
            ..EnvConfig::default()
        };
        let from_env = parse_args(args(&[]), env).unwrap();
        assert_eq!(from_env.domain.as_deref(), Some("upc"));
        assert_eq!(
            from_env.peers,
            vec![
                StageAddress::new("10.0.0.1", 7421),
                StageAddress::new("10.0.0.2", 7421),
            ]
        );
        // CLI --domain replaces the env domain; --peer appends to the list.
        let env = EnvConfig {
            domain: Some("upc"),
            peers: Some("10.0.0.1:7421"),
            ..EnvConfig::default()
        };
        let overridden =
            parse_args(args(&["--domain", "purdue", "--peer", "127.0.0.1:1"]), env).unwrap();
        assert_eq!(overridden.domain.as_deref(), Some("purdue"));
        assert_eq!(overridden.peers.len(), 2);
    }

    #[test]
    fn env_thread_model_is_used_and_cli_wins_over_it() {
        let env = EnvConfig {
            sessions: Some("threaded"),
            io_threads: Some("6"),
            workers: Some("12"),
            ..EnvConfig::default()
        };
        let from_env = parse_args(args(&[]), env).unwrap();
        assert_eq!(from_env.sessions, SessionMode::ThreadPerSession);
        assert_eq!(from_env.io_threads, 6);
        assert_eq!(from_env.workers, 12);
        let env = EnvConfig {
            sessions: Some("threaded"),
            io_threads: Some("6"),
            ..EnvConfig::default()
        };
        let overridden =
            parse_args(args(&["--sessions", "reactor", "--io-threads", "3"]), env).unwrap();
        assert_eq!(overridden.sessions, SessionMode::Reactor);
        assert_eq!(overridden.io_threads, 3);
        // Bad env values are reported against the variable.
        let env = EnvConfig {
            sessions: Some("bogus"),
            ..EnvConfig::default()
        };
        assert!(parse_args(args(&[]), env)
            .unwrap_err()
            .contains("ACTYP_YPD_SESSIONS"));
        let env = EnvConfig {
            workers: Some("many"),
            ..EnvConfig::default()
        };
        assert!(parse_args(args(&[]), env)
            .unwrap_err()
            .contains("ACTYP_YPD_WORKERS"));
    }

    #[test]
    fn stats_interval_parses_and_rejects_garbage() {
        let config = parse_args(args(&["--stats-interval", "30"]), no_env()).unwrap();
        assert_eq!(config.stats_interval, 30);
        assert_eq!(Config::default().stats_interval, 0, "disabled by default");
        assert!(parse_args(args(&["--stats-interval", "soon"]), no_env())
            .unwrap_err()
            .contains("invalid seconds"));
    }

    #[test]
    fn peers_without_a_domain_are_rejected() {
        let err = parse_args(args(&["--peer", "127.0.0.1:7421"]), no_env()).unwrap_err();
        assert!(err.contains("--domain"), "{err}");
        // A domain alone (federated name, no peers yet) is fine.
        assert!(parse_args(args(&["--domain", "purdue"]), no_env()).is_ok());
    }

    #[test]
    fn bad_addresses_and_backends_are_reported() {
        assert!(parse_args(args(&["--listen", "noport"]), no_env())
            .unwrap_err()
            .contains("host:port"));
        assert!(parse_args(args(&["--backend", "quantum"]), no_env())
            .unwrap_err()
            .contains("unknown backend"));
        assert!(parse_args(args(&["--machines", "many"]), no_env())
            .unwrap_err()
            .contains("invalid count"));
        assert!(parse_args(args(&["--peer", "noport"]), no_env())
            .unwrap_err()
            .contains("--peer"));
        assert!(parse_args(args(&["--ttl", "forever"]), no_env())
            .unwrap_err()
            .contains("invalid hop count"));
        assert!(parse_args(args(&["--sessions", "fibers"]), no_env())
            .unwrap_err()
            .contains("unknown session mode"));
        assert!(parse_args(args(&["--poller", "kqueue"]), no_env())
            .unwrap_err()
            .contains("unknown poller"));
        assert!(parse_args(args(&["--io-threads", "lots"]), no_env())
            .unwrap_err()
            .contains("invalid count"));
        assert!(parse_args(args(&["--listen"]), no_env())
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(args(&["--frobnicate"]), no_env())
            .unwrap_err()
            .contains("unknown flag"));
        let env = EnvConfig {
            listen: Some("bogus"),
            ..EnvConfig::default()
        };
        assert!(parse_args(args(&[]), env)
            .unwrap_err()
            .contains("ACTYP_YPD_LISTEN"));
        let env = EnvConfig {
            peers: Some("bogus"),
            ..EnvConfig::default()
        };
        assert!(parse_args(args(&[]), env)
            .unwrap_err()
            .contains("ACTYP_YPD_PEERS"));
    }

    #[test]
    fn every_backend_name_parses() {
        for kind in BackendKind::ALL {
            assert_eq!(parse_backend(&kind.to_string()).unwrap(), kind);
        }
    }
}
