//! `ypd` — the Active Yellow Pages daemon.
//!
//! Hosts any `ResourceManager` backend (embedded engine, threaded live
//! pipeline, or a centralized baseline) behind the versioned `actyp-proto`
//! wire protocol, over a synthetic white-pages fleet.  Clients connect with
//! `actyp_pipeline::api::PipelineBuilder::remote` (or any implementation of
//! the protocol) and drive the exact same API the in-process backends
//! serve.
//!
//! ```text
//! ypd --listen 127.0.0.1:7411 --backend live --machines 500 --seed 42
//! ```
//!
//! # Wide-area federation
//!
//! Give the daemon a domain name and peer addresses and it joins the
//! paper's WAN topology: a query its own backend cannot satisfy is
//! delegated to peers over the wire, carrying a TTL and the visited-domain
//! list, and the originating client's ticket settles with the remote
//! allocation (or `TtlExpired` when the federation is exhausted):
//!
//! ```text
//! ypd --listen 127.0.0.1:7421 --domain purdue --arch sun --peer 127.0.0.1:7422 &
//! ypd --listen 127.0.0.1:7422 --domain upc    --arch hp  --peer 127.0.0.1:7421 &
//! ```
//!
//! The listen address may also come from the `ACTYP_YPD_LISTEN` environment
//! variable, the domain from `ACTYP_YPD_DOMAIN`, and the peer list from
//! `ACTYP_YPD_PEERS` (comma separated); explicit flags win.  The daemon
//! runs until a client sends the protocol's `Halt` frame (see the
//! `remote_quickstart` example's `--halt` flag), then drains gracefully:
//! the listener stops accepting, open sessions finish and are settled, and
//! the hosted backend is torn down.  Exit status is 0 after a clean drain,
//! non-zero on any failure.

use std::process::ExitCode;

use actyp_grid::{FleetSpec, SyntheticFleet};
use actyp_pipeline::{BackendKind, FederationConfig, PipelineBuilder, StageAddress};

const USAGE: &str = "\
usage: ypd [--listen HOST:PORT] [--backend KIND] [--machines N] [--seed N]
           [--arch NAME] [--query-managers N] [--pool-managers N] [--window N]
           [--domain NAME] [--peer HOST:PORT]... [--ttl N]

  --listen HOST:PORT   address to bind (default: $ACTYP_YPD_LISTEN or 127.0.0.1:7411)
  --backend KIND       embedded | live | central-queue | matchmaker (default: live)
  --machines N         synthetic fleet size (default: 500)
  --seed N             synthetic fleet / pipeline RNG seed (default: 42)
  --arch NAME          homogeneous fleet of this architecture (default: mixed fleet)
  --query-managers N   query-manager stages (default: 1)
  --pool-managers N    pool-manager stages (default: 1)
  --window N           live-backend in-flight window (default: 32)
  --domain NAME        administrative-domain name for wide-area federation
                       (default: $ACTYP_YPD_DOMAIN; required with --peer)
  --peer HOST:PORT     peer daemon to delegate unsatisfiable queries to
                       (repeatable; default: $ACTYP_YPD_PEERS, comma separated)
  --ttl N              delegation time-to-live granted to queries (default: 8)";

#[derive(Debug, PartialEq)]
struct Config {
    listen: StageAddress,
    backend: BackendKind,
    machines: usize,
    seed: u64,
    arch: Option<String>,
    query_managers: usize,
    pool_managers: usize,
    window: usize,
    domain: Option<String>,
    peers: Vec<StageAddress>,
    ttl: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: StageAddress::new("127.0.0.1", 7411),
            backend: BackendKind::Live,
            machines: 500,
            seed: 42,
            arch: None,
            query_managers: 1,
            pool_managers: 1,
            window: 32,
            domain: None,
            peers: Vec::new(),
            ttl: 8,
        }
    }
}

/// Environment-variable inputs (so argument parsing stays testable).
#[derive(Debug, Default)]
struct EnvConfig<'a> {
    listen: Option<&'a str>,
    domain: Option<&'a str>,
    peers: Option<&'a str>,
}

fn parse_backend(raw: &str) -> Result<BackendKind, String> {
    BackendKind::ALL
        .into_iter()
        .find(|kind| kind.to_string() == raw)
        .ok_or_else(|| {
            format!(
                "unknown backend `{raw}` (expected one of: {})",
                BackendKind::ALL.map(|k| k.to_string()).join(", ")
            )
        })
}

fn parse_args(
    args: impl IntoIterator<Item = String>,
    env: EnvConfig<'_>,
) -> Result<Config, String> {
    let mut config = Config::default();
    if let Some(listen) = env.listen {
        config.listen = listen
            .parse()
            .map_err(|e| format!("ACTYP_YPD_LISTEN: {e}"))?;
    }
    if let Some(domain) = env.domain {
        config.domain = Some(domain.to_string());
    }
    if let Some(peers) = env.peers {
        for raw in peers.split(',').filter(|s| !s.trim().is_empty()) {
            config
                .peers
                .push(raw.parse().map_err(|e| format!("ACTYP_YPD_PEERS: {e}"))?);
        }
    }
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--listen" => {
                let raw = value("--listen")?;
                config.listen = raw.parse().map_err(|e| format!("--listen: {e}"))?;
            }
            "--backend" => config.backend = parse_backend(&value("--backend")?)?,
            "--machines" => {
                let raw = value("--machines")?;
                config.machines = raw
                    .parse()
                    .map_err(|_| format!("--machines: invalid count `{raw}`"))?;
            }
            "--seed" => {
                let raw = value("--seed")?;
                config.seed = raw
                    .parse()
                    .map_err(|_| format!("--seed: invalid seed `{raw}`"))?;
            }
            "--arch" => config.arch = Some(value("--arch")?),
            "--query-managers" => {
                let raw = value("--query-managers")?;
                config.query_managers = raw
                    .parse()
                    .map_err(|_| format!("--query-managers: invalid count `{raw}`"))?;
            }
            "--pool-managers" => {
                let raw = value("--pool-managers")?;
                config.pool_managers = raw
                    .parse()
                    .map_err(|_| format!("--pool-managers: invalid count `{raw}`"))?;
            }
            "--window" => {
                let raw = value("--window")?;
                config.window = raw
                    .parse()
                    .map_err(|_| format!("--window: invalid size `{raw}`"))?;
            }
            "--domain" => config.domain = Some(value("--domain")?),
            "--peer" => {
                let raw = value("--peer")?;
                config
                    .peers
                    .push(raw.parse().map_err(|e| format!("--peer: {e}"))?);
            }
            "--ttl" => {
                let raw = value("--ttl")?;
                config.ttl = raw
                    .parse()
                    .map_err(|_| format!("--ttl: invalid hop count `{raw}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !config.peers.is_empty() && config.domain.is_none() {
        return Err(
            "--peer requires --domain (or ACTYP_YPD_DOMAIN): federation \
                    needs this daemon's administrative-domain name"
                .to_string(),
        );
    }
    Ok(config)
}

fn main() -> ExitCode {
    let env_listen = std::env::var("ACTYP_YPD_LISTEN").ok();
    let env_domain = std::env::var("ACTYP_YPD_DOMAIN").ok();
    let env_peers = std::env::var("ACTYP_YPD_PEERS").ok();
    let env = EnvConfig {
        listen: env_listen.as_deref(),
        domain: env_domain.as_deref(),
        peers: env_peers.as_deref(),
    };
    let config = match parse_args(std::env::args().skip(1), env) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("ypd: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let spec = match &config.arch {
        Some(arch) => FleetSpec::homogeneous(config.machines, arch, 512),
        None => FleetSpec::with_machines(config.machines),
    };
    let db = SyntheticFleet::new(spec, config.seed)
        .generate()
        .into_shared();
    let builder = PipelineBuilder::new()
        .database(db)
        .seed(config.seed)
        .ttl(config.ttl)
        .query_managers(config.query_managers)
        .pool_managers(config.pool_managers)
        .window(config.window);

    let server = match &config.domain {
        None => builder.serve(&config.listen, config.backend),
        Some(domain) => builder
            .serve_federated(
                &config.listen,
                config.backend,
                FederationConfig {
                    domain: domain.clone(),
                    ttl: config.ttl,
                    peers: config.peers.clone(),
                },
            )
            .map(|(handle, _backend)| handle),
    };
    let server = match server {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ypd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };

    match &config.domain {
        None => println!(
            "ypd: listening on {} ({} backend, {} machines, seed {})",
            server.local_addr(),
            config.backend,
            config.machines,
            config.seed
        ),
        Some(domain) => println!(
            "ypd: listening on {} ({} backend, {} machines, seed {}; domain {domain}, \
             {} peer(s), ttl {})",
            server.local_addr(),
            config.backend,
            config.machines,
            config.seed,
            config.peers.len(),
            config.ttl
        ),
    }

    match server.join() {
        Ok(()) => {
            println!("ypd: drained cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ypd: drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn no_env() -> EnvConfig<'static> {
        EnvConfig::default()
    }

    #[test]
    fn defaults_apply_without_flags() {
        let config = parse_args(args(&[]), no_env()).unwrap();
        assert_eq!(config, Config::default());
    }

    #[test]
    fn flags_override_every_default() {
        let config = parse_args(
            args(&[
                "--listen",
                "0.0.0.0:9000",
                "--backend",
                "embedded",
                "--machines",
                "64",
                "--seed",
                "7",
                "--arch",
                "hp",
                "--query-managers",
                "2",
                "--pool-managers",
                "3",
                "--window",
                "16",
                "--domain",
                "purdue",
                "--peer",
                "127.0.0.1:7422",
                "--peer",
                "127.0.0.1:7423",
                "--ttl",
                "5",
            ]),
            no_env(),
        )
        .unwrap();
        assert_eq!(config.listen, StageAddress::new("0.0.0.0", 9000));
        assert_eq!(config.backend, BackendKind::Embedded);
        assert_eq!(config.machines, 64);
        assert_eq!(config.seed, 7);
        assert_eq!(config.arch.as_deref(), Some("hp"));
        assert_eq!(config.query_managers, 2);
        assert_eq!(config.pool_managers, 3);
        assert_eq!(config.window, 16);
        assert_eq!(config.domain.as_deref(), Some("purdue"));
        assert_eq!(
            config.peers,
            vec![
                StageAddress::new("127.0.0.1", 7422),
                StageAddress::new("127.0.0.1", 7423),
            ]
        );
        assert_eq!(config.ttl, 5);
    }

    #[test]
    fn env_listen_is_used_and_cli_wins_over_it() {
        let env = EnvConfig {
            listen: Some("10.0.0.1:7500"),
            ..EnvConfig::default()
        };
        let from_env = parse_args(args(&[]), env).unwrap();
        assert_eq!(from_env.listen, StageAddress::new("10.0.0.1", 7500));
        let env = EnvConfig {
            listen: Some("10.0.0.1:7500"),
            ..EnvConfig::default()
        };
        let overridden = parse_args(args(&["--listen", "127.0.0.1:0"]), env).unwrap();
        assert_eq!(overridden.listen, StageAddress::new("127.0.0.1", 0));
    }

    #[test]
    fn env_federation_is_used_and_cli_wins_over_it() {
        let env = EnvConfig {
            domain: Some("upc"),
            peers: Some("10.0.0.1:7421, 10.0.0.2:7421"),
            ..EnvConfig::default()
        };
        let from_env = parse_args(args(&[]), env).unwrap();
        assert_eq!(from_env.domain.as_deref(), Some("upc"));
        assert_eq!(
            from_env.peers,
            vec![
                StageAddress::new("10.0.0.1", 7421),
                StageAddress::new("10.0.0.2", 7421),
            ]
        );
        // CLI --domain replaces the env domain; --peer appends to the list.
        let env = EnvConfig {
            domain: Some("upc"),
            peers: Some("10.0.0.1:7421"),
            ..EnvConfig::default()
        };
        let overridden =
            parse_args(args(&["--domain", "purdue", "--peer", "127.0.0.1:1"]), env).unwrap();
        assert_eq!(overridden.domain.as_deref(), Some("purdue"));
        assert_eq!(overridden.peers.len(), 2);
    }

    #[test]
    fn peers_without_a_domain_are_rejected() {
        let err = parse_args(args(&["--peer", "127.0.0.1:7421"]), no_env()).unwrap_err();
        assert!(err.contains("--domain"), "{err}");
        // A domain alone (federated name, no peers yet) is fine.
        assert!(parse_args(args(&["--domain", "purdue"]), no_env()).is_ok());
    }

    #[test]
    fn bad_addresses_and_backends_are_reported() {
        assert!(parse_args(args(&["--listen", "noport"]), no_env())
            .unwrap_err()
            .contains("host:port"));
        assert!(parse_args(args(&["--backend", "quantum"]), no_env())
            .unwrap_err()
            .contains("unknown backend"));
        assert!(parse_args(args(&["--machines", "many"]), no_env())
            .unwrap_err()
            .contains("invalid count"));
        assert!(parse_args(args(&["--peer", "noport"]), no_env())
            .unwrap_err()
            .contains("--peer"));
        assert!(parse_args(args(&["--ttl", "forever"]), no_env())
            .unwrap_err()
            .contains("invalid hop count"));
        assert!(parse_args(args(&["--listen"]), no_env())
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse_args(args(&["--frobnicate"]), no_env())
            .unwrap_err()
            .contains("unknown flag"));
        let env = EnvConfig {
            listen: Some("bogus"),
            ..EnvConfig::default()
        };
        assert!(parse_args(args(&[]), env)
            .unwrap_err()
            .contains("ACTYP_YPD_LISTEN"));
        let env = EnvConfig {
            peers: Some("bogus"),
            ..EnvConfig::default()
        };
        assert!(parse_args(args(&[]), env)
            .unwrap_err()
            .contains("ACTYP_YPD_PEERS"));
    }

    #[test]
    fn every_backend_name_parses() {
        for kind in BackendKind::ALL {
            assert_eq!(parse_backend(&kind.to_string()).unwrap(), kind);
        }
    }
}
