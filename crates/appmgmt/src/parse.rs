//! Parsing user invocations.
//!
//! The network desktop hands the application manager the command the user
//! typed ("simulate carrier transport for the given device specs") together
//! with preferences.  Here an invocation is a tool name followed by
//! `key=value` arguments plus optional preference flags; the parser checks
//! the tool exists and extracts the parameters the knowledge base declares,
//! applying the declared defaults for anything missing.

use std::collections::BTreeMap;

use crate::knowledge::KnowledgeBase;

/// A parsed and qualified tool invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The tool being run.
    pub tool: String,
    /// Parameter values (defaults applied for missing ones).
    pub parameters: BTreeMap<String, f64>,
    /// Minimum algorithm accuracy requested via `accuracy=…` (0–1).
    pub min_accuracy: f64,
    /// Architecture preference via `arch=…`, if any.
    pub preferred_arch: Option<String>,
    /// Domain preference via `domain=…`, if any.
    pub preferred_domain: Option<String>,
}

/// Why an invocation could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationError {
    /// The command line was empty.
    Empty,
    /// The named tool is not in the knowledge base.
    UnknownTool(String),
    /// An argument was not of the form `key=value`.
    MalformedArgument(String),
    /// A declared numeric parameter had a non-numeric value.
    NotNumeric(String),
}

impl std::fmt::Display for InvocationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvocationError::Empty => write!(f, "empty command"),
            InvocationError::UnknownTool(t) => write!(f, "unknown tool `{t}`"),
            InvocationError::MalformedArgument(a) => {
                write!(f, "argument `{a}` is not of the form key=value")
            }
            InvocationError::NotNumeric(k) => {
                write!(f, "parameter `{k}` requires a numeric value")
            }
        }
    }
}

impl std::error::Error for InvocationError {}

/// Parses a command line like
/// `carrier-transport carriers=50000 gridnodes=2000 accuracy=0.9 arch=sun`.
pub fn parse_invocation(
    command: &str,
    knowledge: &KnowledgeBase,
) -> Result<Invocation, InvocationError> {
    let mut tokens = command.split_whitespace();
    let tool_name = tokens.next().ok_or(InvocationError::Empty)?;
    let tool = knowledge
        .tool(tool_name)
        .ok_or_else(|| InvocationError::UnknownTool(tool_name.to_string()))?;

    let mut parameters: BTreeMap<String, f64> = tool
        .parameters
        .iter()
        .map(|p| (p.name.clone(), p.default))
        .collect();
    let mut min_accuracy = 0.0;
    let mut preferred_arch = None;
    let mut preferred_domain = None;

    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| InvocationError::MalformedArgument(token.to_string()))?;
        let key = key.to_ascii_lowercase();
        match key.as_str() {
            "accuracy" => {
                min_accuracy = value
                    .parse()
                    .map_err(|_| InvocationError::NotNumeric(key.clone()))?;
            }
            "arch" => preferred_arch = Some(value.to_ascii_lowercase()),
            "domain" => preferred_domain = Some(value.to_ascii_lowercase()),
            _ => {
                // Only parameters the knowledge base declares are extracted
                // ("extract relevant parameters"); others are ignored, as in
                // the production system where unknown inputs belong to the
                // tool rather than the scheduler.
                if tool.parameter(&key).is_some() {
                    let number: f64 = value
                        .parse()
                        .map_err(|_| InvocationError::NotNumeric(key.clone()))?;
                    parameters.insert(key, number);
                }
            }
        }
    }

    Ok(Invocation {
        tool: tool_name.to_string(),
        parameters,
        min_accuracy,
        preferred_arch,
        preferred_domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::punch_defaults()
    }

    #[test]
    fn parses_tool_and_parameters() {
        let inv = parse_invocation(
            "carrier-transport carriers=50000 gridnodes=2000 accuracy=0.9",
            &kb(),
        )
        .unwrap();
        assert_eq!(inv.tool, "carrier-transport");
        assert_eq!(inv.parameters["carriers"], 50_000.0);
        assert_eq!(inv.parameters["gridnodes"], 2_000.0);
        assert_eq!(inv.min_accuracy, 0.9);
    }

    #[test]
    fn defaults_fill_missing_parameters() {
        let inv = parse_invocation("carrier-transport carriers=50000", &kb()).unwrap();
        assert_eq!(inv.parameters["gridnodes"], 1_000.0);
        assert_eq!(inv.parameters["convergence"], 1e-6);
        assert_eq!(inv.min_accuracy, 0.0);
    }

    #[test]
    fn preferences_are_extracted() {
        let inv = parse_invocation("spice nodes=500 arch=HP domain=purdue", &kb()).unwrap();
        assert_eq!(inv.preferred_arch.as_deref(), Some("hp"));
        assert_eq!(inv.preferred_domain.as_deref(), Some("purdue"));
    }

    #[test]
    fn unknown_arguments_are_ignored() {
        let inv = parse_invocation("spice nodes=500 colour=blue", &kb());
        // `colour` is not declared, so it is ignored rather than an error…
        assert!(inv.is_ok());
        // …but a declared parameter with a bad value is an error.
        assert_eq!(
            parse_invocation("spice nodes=lots", &kb()).unwrap_err(),
            InvocationError::NotNumeric("nodes".to_string())
        );
    }

    #[test]
    fn errors_for_empty_unknown_and_malformed() {
        assert_eq!(
            parse_invocation("", &kb()).unwrap_err(),
            InvocationError::Empty
        );
        assert_eq!(
            parse_invocation("autocad size=3", &kb()).unwrap_err(),
            InvocationError::UnknownTool("autocad".to_string())
        );
        assert_eq!(
            parse_invocation("spice nodes", &kb()).unwrap_err(),
            InvocationError::MalformedArgument("nodes".to_string())
        );
    }
}
