//! # actyp-appmgmt — the PUNCH application-management component
//!
//! Figure 2 of the paper shows the scheduling steps that happen *before* a
//! query ever reaches the active yellow pages service: the application
//! management component parses the user's command and input, extracts the
//! parameters that matter (number of carriers, grid nodes, device size, …),
//! qualifies them through a performance model into CPU and memory estimates,
//! ranks the algorithms the tool offers, determines hardware requirements,
//! and finally composes the ActYP query.
//!
//! * [`knowledge`] — the per-tool knowledge base: parameters, algorithms,
//!   architecture/license constraints.
//! * [`parse`] — parsing of user command lines against a tool's parameters.
//! * [`perfmodel`] — run-time and memory prediction (the role played by the
//!   performance-modelling service of Kapadia et al.).
//! * [`compose`] — hardware-requirement derivation and query composition.

pub mod compose;
pub mod knowledge;
pub mod parse;
pub mod perfmodel;

pub use compose::{compose_query, HardwareRequirements};
pub use knowledge::{Algorithm, KnowledgeBase, ParameterSpec, ToolProfile};
pub use parse::{parse_invocation, Invocation, InvocationError};
pub use perfmodel::{PerformanceModel, ResourceEstimate};
