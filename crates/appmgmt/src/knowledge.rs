//! The tool knowledge base.
//!
//! PUNCH offered access to more than 70 engineering applications; for each
//! one the application-management component knows which input parameters are
//! relevant to scheduling, which algorithms the tool can use, and which
//! architectures and licenses it needs.  The knowledge base here carries
//! exactly the information Figure 2's steps consume.

use std::collections::BTreeMap;

/// A parameter of a tool that is relevant to resource estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterSpec {
    /// Parameter name as it appears on the command line (e.g. `carriers`).
    pub name: String,
    /// Default value used when the user does not supply one.
    pub default: f64,
    /// Weight of the parameter in the CPU-time model (see
    /// [`crate::perfmodel`]).
    pub cpu_weight: f64,
    /// Weight of the parameter in the memory model.
    pub memory_weight: f64,
}

impl ParameterSpec {
    /// Convenience constructor.
    pub fn new(name: &str, default: f64, cpu_weight: f64, memory_weight: f64) -> Self {
        ParameterSpec {
            name: name.to_string(),
            default,
            cpu_weight,
            memory_weight,
        }
    }
}

/// An algorithm a tool can use, with its cost multiplier and accuracy rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Algorithm {
    /// Algorithm name (e.g. `monte-carlo`, `drift-diffusion`).
    pub name: String,
    /// Relative CPU cost compared to the tool's cheapest algorithm.
    pub cost_factor: f64,
    /// Relative solution quality (higher is better); used for ranking.
    pub accuracy: f64,
}

impl Algorithm {
    /// Convenience constructor.
    pub fn new(name: &str, cost_factor: f64, accuracy: f64) -> Self {
        Algorithm {
            name: name.to_string(),
            cost_factor,
            accuracy,
        }
    }
}

/// Everything the application manager knows about one tool.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolProfile {
    /// Tool name (e.g. `tsuprem4`).
    pub name: String,
    /// Tool group the machine must support (field 17 of the database).
    pub tool_group: String,
    /// License key required on the machine, if any.
    pub license: Option<String>,
    /// Architectures the tool's binaries exist for.
    pub architectures: Vec<String>,
    /// Scheduling-relevant parameters.
    pub parameters: Vec<ParameterSpec>,
    /// Algorithms the tool offers.
    pub algorithms: Vec<Algorithm>,
    /// Baseline CPU seconds on the reference machine for a trivial run.
    pub base_cpu_seconds: f64,
    /// Baseline memory footprint in megabytes.
    pub base_memory_mb: f64,
}

impl ToolProfile {
    /// Looks up a parameter by name.
    pub fn parameter(&self, name: &str) -> Option<&ParameterSpec> {
        self.parameters.iter().find(|p| p.name == name)
    }

    /// Ranks the tool's algorithms for a given accuracy requirement: the
    /// cheapest algorithm whose accuracy meets the requirement, falling back
    /// to the most accurate one (Figure 2's "rank algorithms" step).
    pub fn select_algorithm(&self, min_accuracy: f64) -> Option<&Algorithm> {
        let mut feasible: Vec<&Algorithm> = self
            .algorithms
            .iter()
            .filter(|a| a.accuracy >= min_accuracy)
            .collect();
        if feasible.is_empty() {
            return self
                .algorithms
                .iter()
                .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy));
        }
        feasible.sort_by(|a, b| a.cost_factor.total_cmp(&b.cost_factor));
        feasible.first().copied()
    }
}

/// The knowledge base: tool profiles keyed by tool name.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    tools: BTreeMap<String, ToolProfile>,
}

impl KnowledgeBase {
    /// An empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a tool profile.
    pub fn register(&mut self, tool: ToolProfile) {
        self.tools.insert(tool.name.clone(), tool);
    }

    /// Looks up a tool by name.
    pub fn tool(&self, name: &str) -> Option<&ToolProfile> {
        self.tools.get(name)
    }

    /// Number of registered tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// Whether the knowledge base is empty.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Iterates over all tool names.
    pub fn tool_names(&self) -> impl Iterator<Item = &String> {
        self.tools.keys()
    }

    /// A knowledge base pre-loaded with the semiconductor-engineering tools
    /// the paper's examples revolve around (T-SUPREM4, SPICE, MINIMOS and a
    /// carrier-transport simulator).
    pub fn punch_defaults() -> Self {
        let mut kb = KnowledgeBase::new();
        kb.register(ToolProfile {
            name: "tsuprem4".to_string(),
            tool_group: "tsuprem4".to_string(),
            license: Some("tsuprem4".to_string()),
            architectures: vec!["sun".to_string()],
            parameters: vec![
                ParameterSpec::new("gridpoints", 500.0, 0.004, 0.02),
                ParameterSpec::new("steps", 100.0, 0.01, 0.0),
            ],
            algorithms: vec![
                Algorithm::new("full-coupled", 2.0, 0.95),
                Algorithm::new("decoupled", 1.0, 0.7),
            ],
            base_cpu_seconds: 5.0,
            base_memory_mb: 32.0,
        });
        kb.register(ToolProfile {
            name: "spice".to_string(),
            tool_group: "spice".to_string(),
            license: None,
            architectures: vec!["sun".to_string(), "hp".to_string(), "linux".to_string()],
            parameters: vec![
                ParameterSpec::new("nodes", 200.0, 0.002, 0.01),
                ParameterSpec::new("timesteps", 1000.0, 0.001, 0.0),
            ],
            algorithms: vec![
                Algorithm::new("transient", 1.0, 0.8),
                Algorithm::new("harmonic-balance", 3.0, 0.9),
            ],
            base_cpu_seconds: 1.0,
            base_memory_mb: 16.0,
        });
        kb.register(ToolProfile {
            name: "minimos".to_string(),
            tool_group: "minimos".to_string(),
            license: None,
            architectures: vec!["sun".to_string(), "hp".to_string()],
            parameters: vec![ParameterSpec::new("devicesize", 1.0, 50.0, 10.0)],
            algorithms: vec![
                Algorithm::new("drift-diffusion", 1.0, 0.6),
                Algorithm::new("hydro-dynamic", 4.0, 0.85),
                Algorithm::new("monte-carlo", 20.0, 0.99),
            ],
            base_cpu_seconds: 10.0,
            base_memory_mb: 64.0,
        });
        kb.register(ToolProfile {
            name: "carrier-transport".to_string(),
            tool_group: "minimos".to_string(),
            license: None,
            architectures: vec!["sun".to_string()],
            parameters: vec![
                ParameterSpec::new("carriers", 10_000.0, 0.0008, 0.004),
                ParameterSpec::new("gridnodes", 1_000.0, 0.003, 0.03),
                ParameterSpec::new("convergence", 1e-6, 0.0, 0.0),
            ],
            algorithms: vec![
                Algorithm::new("drift-diffusion", 1.0, 0.6),
                Algorithm::new("hydro-dynamic", 4.0, 0.85),
                Algorithm::new("monte-carlo", 20.0, 0.99),
            ],
            base_cpu_seconds: 20.0,
            base_memory_mb: 48.0,
        });
        kb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_contain_the_paper_tools() {
        let kb = KnowledgeBase::punch_defaults();
        assert!(kb.len() >= 4);
        assert!(kb.tool("tsuprem4").is_some());
        assert!(kb.tool("carrier-transport").is_some());
        assert!(kb.tool("nonexistent").is_none());
        assert!(!kb.is_empty());
        assert!(kb.tool_names().any(|n| n == "spice"));
    }

    #[test]
    fn parameter_lookup() {
        let kb = KnowledgeBase::punch_defaults();
        let tool = kb.tool("carrier-transport").unwrap();
        assert!(tool.parameter("carriers").is_some());
        assert!(tool.parameter("bogus").is_none());
    }

    #[test]
    fn algorithm_selection_prefers_cheapest_sufficient() {
        let kb = KnowledgeBase::punch_defaults();
        let tool = kb.tool("minimos").unwrap();
        // Low accuracy requirement: the cheap drift-diffusion wins.
        assert_eq!(tool.select_algorithm(0.5).unwrap().name, "drift-diffusion");
        // Higher requirement: hydro-dynamic is the cheapest that qualifies.
        assert_eq!(tool.select_algorithm(0.8).unwrap().name, "hydro-dynamic");
        // Very high requirement: only monte-carlo qualifies.
        assert_eq!(tool.select_algorithm(0.95).unwrap().name, "monte-carlo");
    }

    #[test]
    fn impossible_accuracy_falls_back_to_most_accurate() {
        let kb = KnowledgeBase::punch_defaults();
        let tool = kb.tool("minimos").unwrap();
        assert_eq!(tool.select_algorithm(1.5).unwrap().name, "monte-carlo");
    }

    #[test]
    fn registration_replaces_existing_profiles() {
        let mut kb = KnowledgeBase::punch_defaults();
        let mut tool = kb.tool("spice").unwrap().clone();
        tool.base_cpu_seconds = 99.0;
        kb.register(tool);
        assert_eq!(kb.tool("spice").unwrap().base_cpu_seconds, 99.0);
        assert_eq!(
            kb.len(),
            KnowledgeBase::punch_defaults().len(),
            "replacement must not grow the knowledge base"
        );
    }
}
