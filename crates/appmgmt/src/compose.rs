//! Hardware-requirement derivation and query composition.
//!
//! The last two steps of Figure 2: "determine hardware requirements"
//! (architecture, minimum memory, license) and "compose query:
//! f(architecture, memory, I/O, performance, QoS)".  The output is a query
//! in the language of `actyp-query`, ready to be forwarded to the resource
//! management pipeline (event 3 in Figure 1).

use actyp_query::{Constraint, Query, QueryKey};

use crate::knowledge::ToolProfile;
use crate::parse::Invocation;
use crate::perfmodel::ResourceEstimate;

/// The hardware requirements derived for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareRequirements {
    /// Acceptable architectures (one clause alternative per entry).
    pub architectures: Vec<String>,
    /// Minimum installed memory, in megabytes.
    pub min_memory_mb: f64,
    /// License the machine must hold, if any.
    pub license: Option<String>,
    /// Tool group the machine must support.
    pub tool_group: String,
    /// Domain constraint, if the user asked for one.
    pub domain: Option<String>,
}

impl HardwareRequirements {
    /// Derives requirements from the tool profile, the invocation's
    /// preferences and the resource estimate.
    pub fn derive(
        tool: &ToolProfile,
        invocation: &Invocation,
        estimate: &ResourceEstimate,
    ) -> Self {
        let architectures = match &invocation.preferred_arch {
            // A preference narrows the choice if the tool supports it.
            Some(preferred) if tool.architectures.iter().any(|a| a == preferred) => {
                vec![preferred.clone()]
            }
            _ => tool.architectures.clone(),
        };
        // Round the memory requirement up to the next power-of-two-ish step
        // the way administrators list machine memory (128, 256, 512, …).
        let min_memory_mb = estimate.memory_mb.max(tool.base_memory_mb);
        HardwareRequirements {
            architectures,
            min_memory_mb,
            license: tool.license.clone(),
            tool_group: tool.tool_group.clone(),
            domain: invocation.preferred_domain.clone(),
        }
    }
}

/// Composes the ActYP query for a run: hardware requirements become `rsrc`
/// clauses, the resource estimate becomes `appl` clauses, and the user's
/// identity becomes `user` clauses.
pub fn compose_query(
    requirements: &HardwareRequirements,
    estimate: &ResourceEstimate,
    login: &str,
    access_group: &str,
) -> Query {
    let mut query = Query::new();

    if !requirements.architectures.is_empty() {
        query = query.with_alternatives(
            QueryKey::rsrc("arch"),
            requirements
                .architectures
                .iter()
                .map(|a| Constraint::eq(a.as_str()))
                .collect(),
        );
    }
    query = query.with(
        QueryKey::rsrc("memory"),
        Constraint::ge(requirements.min_memory_mb.ceil()),
    );
    if let Some(license) = &requirements.license {
        query = query.with(QueryKey::rsrc("license"), Constraint::eq(license.as_str()));
    }
    if let Some(domain) = &requirements.domain {
        query = query.with(QueryKey::rsrc("domain"), Constraint::eq(domain.as_str()));
    }

    query = query
        .with(
            QueryKey::appl("expectedcpuuse"),
            Constraint::eq(estimate.cpu_seconds.ceil()),
        )
        .with(
            QueryKey::appl("expectedmemoryuse"),
            Constraint::eq(estimate.memory_mb.ceil()),
        )
        .with(
            QueryKey::appl("toolgroup"),
            Constraint::eq(requirements.tool_group.as_str()),
        )
        .with(QueryKey::user("login"), Constraint::eq(login))
        .with(QueryKey::user("accessgroup"), Constraint::eq(access_group));

    query
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeBase;
    use crate::parse::parse_invocation;
    use crate::perfmodel::PerformanceModel;
    use actyp_query::{QuerySchema, Section};

    fn pipeline_for(command: &str) -> (HardwareRequirements, ResourceEstimate) {
        let kb = KnowledgeBase::punch_defaults();
        let inv = parse_invocation(command, &kb).unwrap();
        let tool = kb.tool(&inv.tool).unwrap();
        let algo = tool.select_algorithm(inv.min_accuracy).unwrap().clone();
        let estimate = PerformanceModel::new().estimate(tool, &inv, &algo);
        let requirements = HardwareRequirements::derive(tool, &inv, &estimate);
        (requirements, estimate)
    }

    #[test]
    fn tsuprem4_query_matches_the_paper_shape() {
        let (req, est) = pipeline_for("tsuprem4 gridpoints=2000 steps=500 domain=purdue");
        let query = compose_query(&req, &est, "kapadia", "ece");
        let basic = query.decompose(4).remove(0);
        assert_eq!(
            basic.value(Section::Rsrc, "arch").unwrap().as_str(),
            Some("sun")
        );
        assert!(basic.value(Section::Rsrc, "license").is_some());
        assert_eq!(
            basic.value(Section::Rsrc, "domain").unwrap().as_str(),
            Some("purdue")
        );
        assert_eq!(basic.user_login(), Some("kapadia"));
        assert_eq!(basic.access_group(), Some("ece"));
        assert!(basic.expected_cpu_use().unwrap() > 0.0);
    }

    #[test]
    fn multi_architecture_tools_compose_composite_queries() {
        let (req, est) = pipeline_for("spice nodes=500");
        assert!(req.architectures.len() > 1);
        let query = compose_query(&req, &est, "royo", "upc");
        assert!(query.is_composite());
        assert_eq!(query.decomposition_size(), req.architectures.len());
    }

    #[test]
    fn architecture_preference_narrows_the_query() {
        let (req, est) = pipeline_for("spice nodes=500 arch=hp");
        assert_eq!(req.architectures, vec!["hp".to_string()]);
        let query = compose_query(&req, &est, "royo", "upc");
        assert!(!query.is_composite());
    }

    #[test]
    fn unsupported_preference_falls_back_to_tool_architectures() {
        let (req, _) = pipeline_for("tsuprem4 gridpoints=100 arch=linux");
        assert_eq!(req.architectures, vec!["sun".to_string()]);
    }

    #[test]
    fn memory_requirement_covers_the_estimate() {
        let (req, est) = pipeline_for("carrier-transport carriers=200000 gridnodes=10000");
        assert!(req.min_memory_mb >= est.memory_mb);
    }

    #[test]
    fn composed_queries_validate_against_the_punch_schema() {
        let schema = QuerySchema::punch_default();
        let (req, est) = pipeline_for("minimos devicesize=3 accuracy=0.9 domain=purdue");
        let query = compose_query(&req, &est, "diaz", "upc");
        assert!(schema.validate(&query).is_empty());
    }
}
