//! Run-time and memory prediction.
//!
//! Figure 2's "qualify extracted information" step turns the raw input
//! parameters into `cpuUnits = f(parameters)` and `memReqd = g(parameters)`.
//! The production PUNCH system used a learning-based performance-modelling
//! service (Kapadia, Brodley, Fortes & Lundstrom); here the model is the
//! linear-in-parameters form those papers start from: a per-tool baseline
//! plus a weighted contribution per parameter, scaled by the cost factor of
//! the selected algorithm.  CPU estimates are expressed in seconds on the
//! reference machine, matching the query protocol's assumption of a
//! reference machine for time-related estimates.

use crate::knowledge::{Algorithm, ToolProfile};
use crate::parse::Invocation;

/// Predicted resource usage for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceEstimate {
    /// Predicted CPU time in reference-machine seconds.
    pub cpu_seconds: f64,
    /// Predicted memory footprint in megabytes.
    pub memory_mb: f64,
    /// The algorithm the estimate assumes.
    pub algorithm: String,
}

/// The performance model.
#[derive(Debug, Clone, Default)]
pub struct PerformanceModel {
    /// Multiplicative calibration factor applied to CPU estimates (updated
    /// from observed runs; 1.0 when uncalibrated).
    pub cpu_calibration: f64,
    /// Multiplicative calibration factor applied to memory estimates.
    pub memory_calibration: f64,
    observations: u64,
}

impl PerformanceModel {
    /// An uncalibrated model.
    pub fn new() -> Self {
        PerformanceModel {
            cpu_calibration: 1.0,
            memory_calibration: 1.0,
            observations: 0,
        }
    }

    /// Number of observed runs folded into the calibration.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Predicts resource usage for an invocation of `tool` using
    /// `algorithm`.
    pub fn estimate(
        &self,
        tool: &ToolProfile,
        invocation: &Invocation,
        algorithm: &Algorithm,
    ) -> ResourceEstimate {
        let mut cpu = tool.base_cpu_seconds;
        let mut memory = tool.base_memory_mb;
        for spec in &tool.parameters {
            let value = invocation
                .parameters
                .get(&spec.name)
                .copied()
                .unwrap_or(spec.default);
            cpu += spec.cpu_weight * value;
            memory += spec.memory_weight * value;
        }
        cpu *= algorithm.cost_factor;
        ResourceEstimate {
            cpu_seconds: (cpu * self.cpu_calibration).max(0.0),
            memory_mb: (memory * self.memory_calibration).max(1.0),
            algorithm: algorithm.name.clone(),
        }
    }

    /// Folds an observed run into the calibration: a simple exponential
    /// moving average of the observed/predicted ratios, the on-line
    /// correction the production service applied between full re-trainings.
    pub fn observe(&mut self, predicted: &ResourceEstimate, actual_cpu: f64, actual_memory: f64) {
        const ALPHA: f64 = 0.2;
        if predicted.cpu_seconds > 0.0 && actual_cpu > 0.0 {
            let ratio = actual_cpu / predicted.cpu_seconds;
            self.cpu_calibration =
                (1.0 - ALPHA) * self.cpu_calibration + ALPHA * ratio * self.cpu_calibration;
        }
        if predicted.memory_mb > 0.0 && actual_memory > 0.0 {
            let ratio = actual_memory / predicted.memory_mb;
            self.memory_calibration =
                (1.0 - ALPHA) * self.memory_calibration + ALPHA * ratio * self.memory_calibration;
        }
        self.observations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeBase;
    use crate::parse::parse_invocation;

    fn setup(command: &str) -> (ToolProfile, Invocation) {
        let kb = KnowledgeBase::punch_defaults();
        let inv = parse_invocation(command, &kb).unwrap();
        let tool = kb.tool(&inv.tool).unwrap().clone();
        (tool, inv)
    }

    #[test]
    fn estimates_scale_with_parameters() {
        let model = PerformanceModel::new();
        let (tool, small) = setup("carrier-transport carriers=10000 gridnodes=1000");
        let (_, large) = setup("carrier-transport carriers=100000 gridnodes=5000");
        let algo = tool.select_algorithm(0.0).unwrap().clone();
        let small_est = model.estimate(&tool, &small, &algo);
        let large_est = model.estimate(&tool, &large, &algo);
        assert!(large_est.cpu_seconds > small_est.cpu_seconds);
        assert!(large_est.memory_mb > small_est.memory_mb);
    }

    #[test]
    fn expensive_algorithms_multiply_cpu_cost() {
        let model = PerformanceModel::new();
        let (tool, inv) = setup("minimos devicesize=2");
        let cheap = tool.select_algorithm(0.5).unwrap().clone();
        let pricey = tool.select_algorithm(0.95).unwrap().clone();
        let cheap_est = model.estimate(&tool, &inv, &cheap);
        let pricey_est = model.estimate(&tool, &inv, &pricey);
        assert!(pricey_est.cpu_seconds > cheap_est.cpu_seconds * 10.0);
        assert_eq!(pricey_est.algorithm, "monte-carlo");
    }

    #[test]
    fn calibration_moves_toward_observations() {
        let mut model = PerformanceModel::new();
        let (tool, inv) = setup("spice nodes=1000 timesteps=10000");
        let algo = tool.select_algorithm(0.0).unwrap().clone();
        let first = model.estimate(&tool, &inv, &algo);
        // The tool consistently takes twice as long as predicted.
        for _ in 0..20 {
            let predicted = model.estimate(&tool, &inv, &algo);
            model.observe(&predicted, predicted.cpu_seconds * 2.0, predicted.memory_mb);
        }
        let later = model.estimate(&tool, &inv, &algo);
        assert!(later.cpu_seconds > first.cpu_seconds * 1.5);
        assert_eq!(model.observations(), 20);
    }

    #[test]
    fn estimates_never_go_negative_or_zero_memory() {
        let model = PerformanceModel {
            cpu_calibration: 0.0,
            memory_calibration: 0.0,
            ..PerformanceModel::new()
        };
        let (tool, inv) = setup("spice nodes=10");
        let algo = tool.algorithms[0].clone();
        let est = model.estimate(&tool, &inv, &algo);
        assert!(est.cpu_seconds >= 0.0);
        assert!(est.memory_mb >= 1.0);
    }
}
