//! # actyp-suite — repository-level examples and integration tests
//!
//! This crate exists to host the runnable examples in the repository-root
//! `examples/` directory and the cross-crate integration tests in `tests/`
//! (see the `[[example]]` and `[[test]]` sections of its `Cargo.toml`).  The
//! library itself only provides a couple of helpers shared by those targets.

use actyp_grid::{FleetSpec, SharedDatabase, SyntheticFleet};

/// Builds a shared resource database with the default heterogeneous fleet.
pub fn demo_fleet(machines: usize, seed: u64) -> SharedDatabase {
    SyntheticFleet::new(FleetSpec::with_machines(machines), seed)
        .generate()
        .into_shared()
}

/// Builds a shared resource database in which every machine matches a single
/// aggregation criterion (the hot-spot scenarios).
pub fn homogeneous_fleet(machines: usize, arch: &str, memory_mb: u64, seed: u64) -> SharedDatabase {
    SyntheticFleet::new(FleetSpec::homogeneous(machines, arch, memory_mb), seed)
        .generate()
        .into_shared()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The minimal end-to-end canary CI relies on: a fleet, one query, a
    /// non-empty allocation, and a clean release — through the unified
    /// `ResourceManager` surface.
    #[test]
    fn workspace_smoke_query_through_engine() {
        use actyp_pipeline::{BackendKind, PipelineBuilder};
        use actyp_query::Query;

        let db = demo_fleet(200, 42);
        let manager = PipelineBuilder::new()
            .database(db)
            .build(BackendKind::Embedded)
            .unwrap();
        let allocations = manager.submit_wait(&Query::paper_example()).unwrap();
        assert!(!allocations.is_empty(), "query must allocate a machine");
        assert!(allocations[0].machine_name.contains("sun"));
        for allocation in &allocations {
            manager.release(allocation).unwrap();
        }
        manager.shutdown().unwrap();
    }

    #[test]
    fn helpers_build_the_requested_fleets() {
        assert_eq!(demo_fleet(25, 1).read().len(), 25);
        let db = homogeneous_fleet(10, "sun", 128, 2);
        assert!(db.read().iter().all(|m| {
            m.attribute("arch").unwrap().contains("sun")
                && m.attribute("memory").unwrap().as_num() == Some(128.0)
        }));
    }
}
