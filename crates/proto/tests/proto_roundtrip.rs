//! Property tests for the wire protocol: every frame round-trips through
//! the codec (`decode(encode(msg)) == msg`), encodings are canonical, and
//! truncated or corrupted byte strings produce decode *errors* — never
//! panics — which is what a daemon reading from untrusted sockets relies
//! on.

use proptest::prelude::*;

use actyp_grid::MachineId;
use actyp_proto::{
    AdvertDelta, AdvertEntry, AdvertVersion, Allocation, AllocationError, ClientFrame, EncodeError,
    RequestId, ServerFrame, SessionKey, StatsSnapshot, WireDecode, WireEncode, MAX_SEQUENCE_LEN,
};

fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            'a', 'z', 'A', '0', '9', ' ', '\n', ':', '=', '|', '.', '-', 'ü', '→',
        ]),
        0..16,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn allocation_strategy() -> impl Strategy<Value = Allocation> {
    (
        (0u64..1 << 48, 0u64..10_000, text_strategy(), 1u16..65535),
        (
            prop::option::of(1000u32..9000),
            text_strategy(),
            text_strategy(),
            0u32..64,
            0usize..100_000,
        ),
    )
        .prop_map(
            |((request, machine, name, port), (shadow, key, pool, instance, examined))| {
                Allocation {
                    request: RequestId(request),
                    machine: MachineId(machine),
                    machine_name: name,
                    execution_port: port,
                    mount_port: port.wrapping_add(1),
                    shadow_uid: shadow,
                    access_key: SessionKey(key),
                    pool,
                    pool_instance: instance,
                    examined,
                }
            },
        )
}

fn error_strategy() -> impl Strategy<Value = AllocationError> {
    (0usize..12, text_strategy()).prop_map(|(variant, text)| match variant {
        0 => AllocationError::Parse(text),
        1 => AllocationError::Schema(text),
        2 => AllocationError::NoSuchResources,
        3 => AllocationError::NoneAvailable,
        4 => AllocationError::PolicyDenied,
        5 => AllocationError::ShadowAccountsExhausted,
        6 => AllocationError::TtlExpired,
        7 => AllocationError::UnknownAllocation,
        8 => AllocationError::UnknownTicket,
        9 => AllocationError::Internal(text),
        10 => AllocationError::Network(text),
        _ => AllocationError::Protocol(text),
    })
}

fn stats_strategy() -> impl Strategy<Value = StatsSnapshot> {
    (0u64..1 << 40).prop_map(|seed| StatsSnapshot {
        requests: seed,
        fragments: seed.wrapping_mul(3),
        allocations: seed / 2,
        failures: seed % 7,
        delegations: seed % 11,
        forwards: seed % 13,
        delegations_out: seed % 19,
        delegations_in: seed % 23,
        releases: seed / 3,
        records_examined: seed.wrapping_mul(17),
        in_flight: (seed % 1024) as usize,
        gossip_deltas_in: seed % 29,
        gossip_deltas_out: seed % 31,
        route_hits: seed % 37,
        route_misses: seed % 41,
        peer_redials: seed % 43,
        shard_contention: seed % 47,
        frames_batched: seed % 53,
        writes_coalesced: seed % 59,
    })
}

fn advert_version_strategy() -> impl Strategy<Value = AdvertVersion> {
    (text_strategy(), 0u64..1 << 20, 0u64..1 << 20).prop_map(|(origin, epoch, seq)| AdvertVersion {
        origin,
        epoch,
        seq,
    })
}

fn advert_delta_strategy() -> impl Strategy<Value = AdvertDelta> {
    (
        text_strategy(),
        0u64..1 << 20,
        0u64..1 << 20,
        prop::collection::vec((0u64..1 << 20, text_strategy(), prop::bool::ANY), 0..4),
        prop::bool::ANY,
    )
        .prop_map(|(origin, epoch, head, entries, full)| AdvertDelta {
            origin,
            epoch,
            head,
            entries: entries
                .into_iter()
                .map(|(seq, pool, alive)| AdvertEntry { seq, pool, alive })
                .collect(),
            full,
        })
}

/// Every [`ClientFrame`] variant, driven by a variant selector so each of
/// the twelve shapes is generated.
fn client_frame_strategy() -> impl Strategy<Value = ClientFrame> {
    (
        (0u8..12, 0u64..1 << 32, text_strategy()),
        (
            prop::collection::vec(text_strategy(), 0..5),
            0u64..1 << 20,
            prop::option::of(0u64..100_000),
            allocation_strategy(),
        ),
        (
            prop::collection::vec(advert_delta_strategy(), 0..3),
            prop::collection::vec(advert_version_strategy(), 0..3),
        ),
    )
        .prop_map(
            |((variant, corr, query), (queries, ticket, deadline, allocation), (deltas, have))| {
                let corr = RequestId(corr);
                match variant {
                    0 => ClientFrame::Hello {
                        min_version: (corr.0 % 4) as u16,
                        max_version: (corr.0 % 4) as u16 + (ticket % 4) as u16,
                    },
                    1 => ClientFrame::Submit { corr, query },
                    2 => ClientFrame::SubmitBatch { corr, queries },
                    3 => ClientFrame::Wait {
                        corr,
                        ticket,
                        deadline_ms: deadline,
                    },
                    4 => ClientFrame::Poll { corr, ticket },
                    5 => ClientFrame::Release { corr, allocation },
                    6 => ClientFrame::Stats { corr },
                    7 => ClientFrame::Shutdown { corr },
                    8 => ClientFrame::Halt { corr },
                    9 => ClientFrame::Delegate {
                        corr,
                        query,
                        ttl: (ticket % 32) as u32,
                        visited: queries,
                    },
                    10 => ClientFrame::SyncPools {
                        corr,
                        domain: query,
                        pools: queries,
                        have,
                    },
                    _ => ClientFrame::AdvertDelta {
                        corr,
                        domain: query,
                        deltas,
                        have,
                    },
                }
            },
        )
}

/// Every [`ServerFrame`] variant.
fn server_frame_strategy() -> impl Strategy<Value = ServerFrame> {
    (
        (0u8..14, 0u64..1 << 32, text_strategy()),
        (
            0u64..1 << 20,
            prop::collection::vec(0u64..1 << 20, 0..6),
            prop::collection::vec(allocation_strategy(), 0..3),
            error_strategy(),
            stats_strategy(),
        ),
        (
            prop::bool::ANY,
            prop::collection::vec(text_strategy(), 0..4),
            prop::collection::vec(advert_delta_strategy(), 0..3),
        ),
    )
        .prop_map(
            |(
                (variant, corr, message),
                (ticket, tickets, allocations, error, stats),
                (ok, names, deltas),
            )| {
                let corr = RequestId(corr);
                match variant {
                    0 => ServerFrame::HelloAck {
                        version: (ticket % 8) as u16,
                    },
                    1 => ServerFrame::HelloReject { message },
                    2 => ServerFrame::Submitted { corr, ticket },
                    3 => ServerFrame::BatchSubmitted { corr, tickets },
                    4 => ServerFrame::Outcome {
                        corr,
                        outcome: if ok { Ok(allocations) } else { Err(error) },
                    },
                    5 => ServerFrame::Pending { corr },
                    6 => ServerFrame::TimedOut { corr },
                    7 => ServerFrame::Released { corr },
                    8 => ServerFrame::StatsReply { corr, stats },
                    9 => ServerFrame::Ack { corr },
                    10 => ServerFrame::Error { corr, error },
                    11 => ServerFrame::Delegated {
                        corr,
                        outcome: if ok { Ok(allocations) } else { Err(error) },
                        ttl: (ticket % 32) as u32,
                        visited: names,
                        deltas,
                    },
                    12 => ServerFrame::PoolsSynced {
                        corr,
                        domain: message,
                        pools: names,
                        deltas,
                    },
                    _ => ServerFrame::AdvertAck {
                        corr,
                        domain: message,
                        deltas,
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// decode(encode(frame)) == frame, for every client frame.
    #[test]
    fn client_frames_round_trip(frame in client_frame_strategy()) {
        let bytes = frame.to_wire_bytes().unwrap();
        prop_assert_eq!(ClientFrame::from_wire_bytes(&bytes).unwrap(), frame);
    }

    /// decode(encode(frame)) == frame, for every server frame.
    #[test]
    fn server_frames_round_trip(frame in server_frame_strategy()) {
        let bytes = frame.to_wire_bytes().unwrap();
        prop_assert_eq!(ServerFrame::from_wire_bytes(&bytes).unwrap(), frame);
    }

    /// Framed stream round trip: write_frame → read_*_frame is lossless.
    #[test]
    fn framed_stream_round_trip(
        client in client_frame_strategy(),
        server in server_frame_strategy(),
    ) {
        let mut stream = Vec::new();
        actyp_proto::write_frame(&mut stream, &client).unwrap();
        let mut cursor = &stream[..];
        prop_assert_eq!(
            actyp_proto::read_client_frame(&mut cursor).unwrap(),
            Some(client)
        );

        let mut stream = Vec::new();
        actyp_proto::write_frame(&mut stream, &server).unwrap();
        let mut cursor = &stream[..];
        prop_assert_eq!(
            actyp_proto::read_server_frame(&mut cursor).unwrap(),
            Some(server)
        );
    }

    /// Every strict prefix of a valid encoding fails to decode (no panic,
    /// no silent acceptance).
    #[test]
    fn truncated_client_frames_error_cleanly(
        frame in client_frame_strategy(),
        cut_seed in 0usize..10_000,
    ) {
        let bytes = frame.to_wire_bytes().unwrap();
        let cut = cut_seed % bytes.len();
        prop_assert!(ClientFrame::from_wire_bytes(&bytes[..cut]).is_err());
    }

    /// Same for server frames.
    #[test]
    fn truncated_server_frames_error_cleanly(
        frame in server_frame_strategy(),
        cut_seed in 0usize..10_000,
    ) {
        let bytes = frame.to_wire_bytes().unwrap();
        let cut = cut_seed % bytes.len();
        prop_assert!(ServerFrame::from_wire_bytes(&bytes[..cut]).is_err());
    }

    /// Garbage bytes never panic the decoder, and anything it *does*
    /// accept re-encodes to exactly the input (the encoding is canonical).
    #[test]
    fn garbage_never_panics_and_accepts_are_canonical(
        bytes in prop::collection::vec(0u16..256, 0..64)
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        if let Ok(frame) = ClientFrame::from_wire_bytes(&bytes) {
            prop_assert_eq!(frame.to_wire_bytes().unwrap(), bytes.clone());
        }
        if let Ok(frame) = ServerFrame::from_wire_bytes(&bytes) {
            prop_assert_eq!(frame.to_wire_bytes().unwrap(), bytes);
        }
    }

    /// Single-byte corruption anywhere in a frame never panics the decoder:
    /// it either still decodes (the flip hit a payload byte) or errors.
    #[test]
    fn corrupted_frames_never_panic(
        frame in client_frame_strategy(),
        position_seed in 0usize..10_000,
        flip in 1u16..256,
    ) {
        let mut bytes = frame.to_wire_bytes().unwrap();
        let position = position_seed % bytes.len();
        bytes[position] ^= flip as u8;
        let _ = ClientFrame::from_wire_bytes(&bytes);
    }
}

// At-cap payloads are megabyte-sized, so these properties run fewer cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A frame carrying a string *exactly* at the codec cap encodes and
    /// round-trips — the encode-side check is not off by one.
    #[test]
    fn at_cap_strings_round_trip_inside_frames(
        corr in 0u64..1 << 32,
        ttl in 0u32..16,
        byte in prop::sample::select(vec!['a', 'q', '0']),
    ) {
        let frame = ClientFrame::Delegate {
            corr: RequestId(corr),
            query: byte.to_string().repeat(MAX_SEQUENCE_LEN),
            ttl,
            visited: vec!["purdue".to_string()],
        };
        let bytes = frame.to_wire_bytes().unwrap();
        prop_assert_eq!(ClientFrame::from_wire_bytes(&bytes).unwrap(), frame);
    }

    /// Any frame carrying an over-cap string fails at *encode* time with
    /// `EncodeError::TooLong` — the asymmetry regression: the pre-fix codec
    /// encoded these into bytes every conforming decoder rejects.
    #[test]
    fn over_cap_strings_are_rejected_at_encode(
        corr in 0u64..1 << 32,
        excess in 1usize..64,
        variant in 0u8..3,
    ) {
        let oversized = "q".repeat(MAX_SEQUENCE_LEN + excess);
        let corr = RequestId(corr);
        let frame = match variant {
            0 => ClientFrame::Submit { corr, query: oversized },
            1 => ClientFrame::Delegate {
                corr,
                query: oversized,
                ttl: 4,
                visited: Vec::new(),
            },
            _ => ClientFrame::SubmitBatch {
                corr,
                queries: vec![String::new(), oversized],
            },
        };
        prop_assert!(matches!(
            frame.to_wire_bytes(),
            Err(EncodeError::TooLong { .. })
        ));
    }
}
