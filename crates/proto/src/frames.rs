//! Protocol frames: the request/response vocabulary of the `ypd` wire
//! protocol, with length-prefixed framing and version negotiation.
//!
//! # Framing
//!
//! Every frame is `[u32 length (big endian)][body]`, where the body is one
//! encoded [`ClientFrame`] or [`ServerFrame`] (a tag byte followed by the
//! variant's payload).  The declared length must match the body exactly:
//! decoders reject both truncated and over-long payloads, so a corrupted
//! stream surfaces as a [`DecodeError`] instead of silent desynchronisation.
//!
//! # Version negotiation
//!
//! The first frame on a connection must be [`ClientFrame::Hello`], carrying
//! the closed range of protocol versions the client speaks.  The server
//! answers [`ServerFrame::HelloAck`] with the highest version both sides
//! support (see [`negotiate`]) or [`ServerFrame::HelloReject`] and closes
//! the connection.  All subsequent frames are interpreted under the agreed
//! version.
//!
//! # Correlation and pipelining
//!
//! Every request after the hello carries a [`RequestId`]; the response that
//! answers it echoes the same id.  Responses may arrive in any order, which
//! is what lets a client keep many tickets in flight on one socket — the
//! paper's pipelining, spanning a real network hop.

use std::io::{self, Read, Write};

use crate::types::{Allocation, AllocationError, RequestId, StatsSnapshot};
use crate::wire::{DecodeError, EncodeError, Reader, WireDecode, WireEncode};

/// Current (and highest supported) protocol version.
///
/// Version 2 added the wide-area federation vocabulary —
/// [`ClientFrame::Delegate`] / [`ServerFrame::Delegated`] for inter-daemon
/// query delegation, and [`ClientFrame::SyncPools`] /
/// [`ServerFrame::PoolsSynced`] for pool-advertisement exchange between
/// peered daemons — and extended the [`StatsSnapshot`] wire layout with
/// the federation counters.
///
/// Version 3 added the anti-entropy gossip plane:
/// [`ClientFrame::AdvertDelta`] / [`ServerFrame::AdvertAck`] carry
/// versioned advertisement-log deltas ([`AdvertDelta`]) between peered
/// daemons, the delegation and pool-sync replies piggyback the same
/// deltas on traffic already flowing, and the [`StatsSnapshot`] layout
/// gained the gossip and route-cache counters.
pub const PROTOCOL_VERSION: u16 = 3;

/// Oldest protocol version this build still speaks.  Versions 2 and 3
/// each changed the layout of [`StatsSnapshot`] (not only added frames),
/// so an older peer would mis-decode every `StatsReply` — and a v2 peer
/// would also mis-decode the delta fields v3 appends to `Delegated`,
/// `SyncPools` and `PoolsSynced`.  Honest negotiation refuses the
/// connection at the hello instead of desynchronising mid-session.
pub const MIN_SUPPORTED_VERSION: u16 = 3;

/// Hard upper bound on one frame's body length (16 MiB).  A peer declaring
/// more is protocol-violating; the connection should be dropped.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Picks the protocol version for a connection: the highest version inside
/// both the client's offered range and this build's supported range, or
/// `None` when the ranges do not overlap.
pub fn negotiate(client_min: u16, client_max: u16) -> Option<u16> {
    let high = client_max.min(PROTOCOL_VERSION);
    (high >= client_min && high >= MIN_SUPPORTED_VERSION).then_some(high)
}

/// The outcome payload of a redeemed ticket, as carried on the wire.
pub type WireOutcome = Result<Vec<Allocation>, AllocationError>;

/// One event in a domain's advertisement log: at sequence number `seq`
/// the origin domain's pool `pool` came up (`alive`) or went away
/// (`!alive`).  Protocol version 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvertEntry {
    /// Position in the origin's log; strictly increasing per origin
    /// within one epoch.
    pub seq: u64,
    /// Full pool name (`signature/identifier`).
    pub pool: String,
    /// `true` when the pool came up, `false` when it was retired.
    pub alive: bool,
}

/// A slice of one origin domain's versioned advertisement log.
///
/// Receivers apply entries whose `seq` is beyond what they already hold
/// for `(origin, epoch)`; a higher `epoch` (the origin restarted)
/// invalidates everything previously known about the origin.  A delta
/// with `full` set carries the origin's complete live pool set — pools
/// the receiver holds for that origin but that are absent from the delta
/// are dead (the origin compacted its log past the receiver's floor).
/// Protocol version 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvertDelta {
    /// The domain whose log this is a slice of (not necessarily the
    /// sender: daemons relay third-party origins transitively).
    pub origin: String,
    /// The origin's log epoch; bumped when the origin restarts.
    pub epoch: u64,
    /// The origin's log head (highest sequence assigned) as of this
    /// delta.  For a `full` snapshot this is the horizon the live set is
    /// complete up to — it can exceed every entry's `seq`, since entries
    /// record when each pool *came up*, not the deaths compacted away
    /// after.
    pub head: u64,
    /// Log entries, in increasing `seq` order.
    pub entries: Vec<AdvertEntry>,
    /// `true` when `entries` is the origin's complete live set rather
    /// than an incremental tail.
    pub full: bool,
}

/// What one daemon holds of one origin's advertisement log — the version
/// vectors exchanged so peers ship only the missing tail.  Protocol
/// version 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvertVersion {
    /// The origin domain.
    pub origin: String,
    /// The epoch of the origin's log the holder has.
    pub epoch: u64,
    /// Highest sequence number the holder has applied in that epoch.
    pub seq: u64,
}

impl WireEncode for AdvertEntry {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.seq.encode(out)?;
        self.pool.encode(out)?;
        self.alive.encode(out)
    }
}

impl WireDecode for AdvertEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AdvertEntry {
            seq: u64::decode(r)?,
            pool: String::decode(r)?,
            alive: bool::decode(r)?,
        })
    }
}

impl WireEncode for AdvertDelta {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.origin.encode(out)?;
        self.epoch.encode(out)?;
        self.head.encode(out)?;
        self.entries.encode(out)?;
        self.full.encode(out)
    }
}

impl WireDecode for AdvertDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AdvertDelta {
            origin: String::decode(r)?,
            epoch: u64::decode(r)?,
            head: u64::decode(r)?,
            entries: Vec::<AdvertEntry>::decode(r)?,
            full: bool::decode(r)?,
        })
    }
}

impl WireEncode for AdvertVersion {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.origin.encode(out)?;
        self.epoch.encode(out)?;
        self.seq.encode(out)
    }
}

impl WireDecode for AdvertVersion {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AdvertVersion {
            origin: String::decode(r)?,
            epoch: u64::decode(r)?,
            seq: u64::decode(r)?,
        })
    }
}

/// Frames a client sends to a `ypd` daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Mandatory first frame: the closed range of protocol versions the
    /// client can speak.
    Hello {
        /// Oldest version the client accepts.
        min_version: u16,
        /// Newest version the client accepts.
        max_version: u16,
    },
    /// Submit one query (in the native key/value text form) for a ticket.
    Submit {
        /// Correlation id echoed by the response.
        corr: RequestId,
        /// The query, rendered in the native text format.
        query: String,
    },
    /// Submit a batch of queries, all-or-nothing, for one ticket each.
    SubmitBatch {
        /// Correlation id echoed by the response.
        corr: RequestId,
        /// The queries, each rendered in the native text format.
        queries: Vec<String>,
    },
    /// Redeem a ticket, blocking server-side until it resolves or the
    /// optional deadline elapses.
    Wait {
        /// Correlation id echoed by the response.
        corr: RequestId,
        /// The server-issued ticket id to redeem.
        ticket: u64,
        /// Give up after this many milliseconds (the ticket stays live);
        /// `None` blocks until the outcome is ready.
        deadline_ms: Option<u64>,
    },
    /// Non-blocking redemption probe.
    Poll {
        /// Correlation id echoed by the response.
        corr: RequestId,
        /// The server-issued ticket id to probe.
        ticket: u64,
    },
    /// Hand an allocation back to the resource manager.
    Release {
        /// Correlation id echoed by the response.
        corr: RequestId,
        /// The allocation being returned (self-describing).
        allocation: Allocation,
    },
    /// Request a snapshot of the backend's lifetime counters.
    Stats {
        /// Correlation id echoed by the response.
        corr: RequestId,
    },
    /// End this session gracefully: the server settles any tickets the
    /// session still holds and closes the connection after acknowledging.
    Shutdown {
        /// Correlation id echoed by the response.
        corr: RequestId,
    },
    /// Ask the daemon itself to drain: stop accepting connections, let the
    /// open sessions finish, then exit.  Used by operators and CI.
    Halt {
        /// Correlation id echoed by the response.
        corr: RequestId,
    },
    /// Peer-to-peer (daemon-to-daemon) delegation of a query another
    /// domain could not satisfy, carrying the paper's routing state with
    /// it — "all state information is carried with the query itself".
    /// Answered by [`ServerFrame::Delegated`].  Protocol version 2.
    Delegate {
        /// Correlation id echoed by the response.
        corr: RequestId,
        /// The query, rendered in the native text format.
        query: String,
        /// Remaining delegation time-to-live (hops still allowed).  The
        /// receiving daemon spends one visiting itself.
        ttl: u32,
        /// Domains that have already handled this query; the receiver must
        /// never forward the query back to any of them.
        visited: Vec<String>,
    },
    /// Pool-advertisement exchange between peered daemons: the sender
    /// announces its domain name and the pool names it currently hosts;
    /// the receiver records them and answers [`ServerFrame::PoolsSynced`]
    /// with its own.  Sent once per peer connection, after the hello.
    /// Protocol version 2.
    SyncPools {
        /// Correlation id echoed by the response.
        corr: RequestId,
        /// The advertising daemon's domain name.
        domain: String,
        /// Full pool names the advertising daemon currently hosts.
        pools: Vec<String>,
        /// The sender's advertisement-log version vector, so the reply's
        /// piggybacked deltas carry only what the sender lacks.  Protocol
        /// version 3.
        have: Vec<AdvertVersion>,
    },
    /// Anti-entropy exchange between peered daemons: the sender ships the
    /// advertisement-log deltas it believes the receiver lacks together
    /// with its own version vector; the receiver applies them and answers
    /// [`ServerFrame::AdvertAck`] with the deltas the *sender* lacks —
    /// one round syncs both directions.  Sent by the periodic gossip tick
    /// on idle peer links.  Protocol version 3.
    AdvertDelta {
        /// Correlation id echoed by the response.
        corr: RequestId,
        /// The sending daemon's domain name.
        domain: String,
        /// Log slices the sender believes the receiver lacks.
        deltas: Vec<AdvertDelta>,
        /// The sender's advertisement-log version vector.
        have: Vec<AdvertVersion>,
    },
}

/// Frames a `ypd` daemon sends back to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Version negotiation succeeded; all further frames use `version`.
    HelloAck {
        /// The agreed protocol version.
        version: u16,
    },
    /// Version negotiation failed; the server closes the connection.
    HelloReject {
        /// Human-readable explanation (supported range, etc.).
        message: String,
    },
    /// A `Submit` was accepted; the query is now in flight.
    Submitted {
        /// Correlation id of the `Submit` this answers.
        corr: RequestId,
        /// Server-issued ticket id redeemable with `Wait` / `Poll`.
        ticket: u64,
    },
    /// A `SubmitBatch` was accepted in full.
    BatchSubmitted {
        /// Correlation id of the `SubmitBatch` this answers.
        corr: RequestId,
        /// One server-issued ticket id per query, in submission order.
        tickets: Vec<u64>,
    },
    /// A ticket resolved (answers `Wait`, or `Poll` when ready).  The
    /// ticket is now spent.
    Outcome {
        /// Correlation id of the request this answers.
        corr: RequestId,
        /// The query's outcome.
        outcome: WireOutcome,
    },
    /// Answers `Poll` while the ticket is still in flight (ticket stays
    /// live).
    Pending {
        /// Correlation id of the `Poll` this answers.
        corr: RequestId,
    },
    /// Answers `Wait` whose deadline elapsed first (ticket stays live).
    TimedOut {
        /// Correlation id of the `Wait` this answers.
        corr: RequestId,
    },
    /// A `Release` succeeded.
    Released {
        /// Correlation id of the `Release` this answers.
        corr: RequestId,
    },
    /// Answers `Stats`.
    StatsReply {
        /// Correlation id of the `Stats` this answers.
        corr: RequestId,
        /// The backend's lifetime counters.
        stats: StatsSnapshot,
    },
    /// Generic success acknowledgement (`Shutdown`, `Halt`).
    Ack {
        /// Correlation id of the request this answers.
        corr: RequestId,
    },
    /// The request failed; carries the full error taxonomy.
    Error {
        /// Correlation id of the request this answers.
        corr: RequestId,
        /// Why it failed.
        error: AllocationError,
    },
    /// Answers [`ClientFrame::Delegate`]: the outcome of the delegated
    /// query together with the routing state after the receiver's whole
    /// delegation chain finished, so the requester continues its own
    /// search without revisiting any domain or resetting the TTL.
    /// Protocol version 2.
    Delegated {
        /// Correlation id of the `Delegate` this answers.
        corr: RequestId,
        /// The delegated query's outcome.
        outcome: WireOutcome,
        /// Remaining TTL after the receiver's chain.
        ttl: u32,
        /// Every domain visited once the receiver's chain finished
        /// (superset of the request's list).
        visited: Vec<String>,
        /// Advertisement-log deltas piggybacked on the reply — news rides
        /// on traffic already flowing, the periodic anti-entropy exchange
        /// corrects anything missed.  Protocol version 3.
        deltas: Vec<AdvertDelta>,
    },
    /// Answers [`ClientFrame::SyncPools`] with the receiving daemon's own
    /// advertisement.  Protocol version 2.
    PoolsSynced {
        /// Correlation id of the `SyncPools` this answers.
        corr: RequestId,
        /// The receiving daemon's domain name.
        domain: String,
        /// Full pool names the receiving daemon currently hosts.
        pools: Vec<String>,
        /// Advertisement-log deltas beyond the request's `have` vector —
        /// a fresh link learns third-party origins in the same handshake.
        /// Protocol version 3.
        deltas: Vec<AdvertDelta>,
    },
    /// Answers [`ClientFrame::AdvertDelta`]: the receiver's domain name
    /// and the log slices the requester lacks, judged against the
    /// request's `have` vector.  Protocol version 3.
    AdvertAck {
        /// Correlation id of the `AdvertDelta` this answers.
        corr: RequestId,
        /// The answering daemon's domain name.
        domain: String,
        /// Log slices the requester lacks.
        deltas: Vec<AdvertDelta>,
    },
}

impl WireEncode for ClientFrame {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        match self {
            ClientFrame::Hello {
                min_version,
                max_version,
            } => {
                out.push(0);
                min_version.encode(out)?;
                max_version.encode(out)?;
            }
            ClientFrame::Submit { corr, query } => {
                out.push(1);
                corr.encode(out)?;
                query.encode(out)?;
            }
            ClientFrame::SubmitBatch { corr, queries } => {
                out.push(2);
                corr.encode(out)?;
                queries.encode(out)?;
            }
            ClientFrame::Wait {
                corr,
                ticket,
                deadline_ms,
            } => {
                out.push(3);
                corr.encode(out)?;
                ticket.encode(out)?;
                deadline_ms.encode(out)?;
            }
            ClientFrame::Poll { corr, ticket } => {
                out.push(4);
                corr.encode(out)?;
                ticket.encode(out)?;
            }
            ClientFrame::Release { corr, allocation } => {
                out.push(5);
                corr.encode(out)?;
                allocation.encode(out)?;
            }
            ClientFrame::Stats { corr } => {
                out.push(6);
                corr.encode(out)?;
            }
            ClientFrame::Shutdown { corr } => {
                out.push(7);
                corr.encode(out)?;
            }
            ClientFrame::Halt { corr } => {
                out.push(8);
                corr.encode(out)?;
            }
            ClientFrame::Delegate {
                corr,
                query,
                ttl,
                visited,
            } => {
                out.push(9);
                corr.encode(out)?;
                query.encode(out)?;
                ttl.encode(out)?;
                visited.encode(out)?;
            }
            ClientFrame::SyncPools {
                corr,
                domain,
                pools,
                have,
            } => {
                out.push(10);
                corr.encode(out)?;
                domain.encode(out)?;
                pools.encode(out)?;
                have.encode(out)?;
            }
            ClientFrame::AdvertDelta {
                corr,
                domain,
                deltas,
                have,
            } => {
                out.push(11);
                corr.encode(out)?;
                domain.encode(out)?;
                deltas.encode(out)?;
                have.encode(out)?;
            }
        }
        Ok(())
    }
}

impl WireDecode for ClientFrame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ClientFrame::Hello {
                min_version: u16::decode(r)?,
                max_version: u16::decode(r)?,
            },
            1 => ClientFrame::Submit {
                corr: RequestId::decode(r)?,
                query: String::decode(r)?,
            },
            2 => ClientFrame::SubmitBatch {
                corr: RequestId::decode(r)?,
                queries: Vec::<String>::decode(r)?,
            },
            3 => ClientFrame::Wait {
                corr: RequestId::decode(r)?,
                ticket: u64::decode(r)?,
                deadline_ms: Option::<u64>::decode(r)?,
            },
            4 => ClientFrame::Poll {
                corr: RequestId::decode(r)?,
                ticket: u64::decode(r)?,
            },
            5 => ClientFrame::Release {
                corr: RequestId::decode(r)?,
                allocation: Allocation::decode(r)?,
            },
            6 => ClientFrame::Stats {
                corr: RequestId::decode(r)?,
            },
            7 => ClientFrame::Shutdown {
                corr: RequestId::decode(r)?,
            },
            8 => ClientFrame::Halt {
                corr: RequestId::decode(r)?,
            },
            9 => ClientFrame::Delegate {
                corr: RequestId::decode(r)?,
                query: String::decode(r)?,
                ttl: u32::decode(r)?,
                visited: Vec::<String>::decode(r)?,
            },
            10 => ClientFrame::SyncPools {
                corr: RequestId::decode(r)?,
                domain: String::decode(r)?,
                pools: Vec::<String>::decode(r)?,
                have: Vec::<AdvertVersion>::decode(r)?,
            },
            11 => ClientFrame::AdvertDelta {
                corr: RequestId::decode(r)?,
                domain: String::decode(r)?,
                deltas: Vec::<AdvertDelta>::decode(r)?,
                have: Vec::<AdvertVersion>::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    context: "ClientFrame",
                    tag,
                })
            }
        })
    }
}

impl WireEncode for ServerFrame {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        match self {
            ServerFrame::HelloAck { version } => {
                out.push(0);
                version.encode(out)?;
            }
            ServerFrame::HelloReject { message } => {
                out.push(1);
                message.encode(out)?;
            }
            ServerFrame::Submitted { corr, ticket } => {
                out.push(2);
                corr.encode(out)?;
                ticket.encode(out)?;
            }
            ServerFrame::BatchSubmitted { corr, tickets } => {
                out.push(3);
                corr.encode(out)?;
                tickets.encode(out)?;
            }
            ServerFrame::Outcome { corr, outcome } => {
                out.push(4);
                corr.encode(out)?;
                outcome.encode(out)?;
            }
            ServerFrame::Pending { corr } => {
                out.push(5);
                corr.encode(out)?;
            }
            ServerFrame::TimedOut { corr } => {
                out.push(6);
                corr.encode(out)?;
            }
            ServerFrame::Released { corr } => {
                out.push(7);
                corr.encode(out)?;
            }
            ServerFrame::StatsReply { corr, stats } => {
                out.push(8);
                corr.encode(out)?;
                stats.encode(out)?;
            }
            ServerFrame::Ack { corr } => {
                out.push(9);
                corr.encode(out)?;
            }
            ServerFrame::Error { corr, error } => {
                out.push(10);
                corr.encode(out)?;
                error.encode(out)?;
            }
            ServerFrame::Delegated {
                corr,
                outcome,
                ttl,
                visited,
                deltas,
            } => {
                out.push(11);
                corr.encode(out)?;
                outcome.encode(out)?;
                ttl.encode(out)?;
                visited.encode(out)?;
                deltas.encode(out)?;
            }
            ServerFrame::PoolsSynced {
                corr,
                domain,
                pools,
                deltas,
            } => {
                out.push(12);
                corr.encode(out)?;
                domain.encode(out)?;
                pools.encode(out)?;
                deltas.encode(out)?;
            }
            ServerFrame::AdvertAck {
                corr,
                domain,
                deltas,
            } => {
                out.push(13);
                corr.encode(out)?;
                domain.encode(out)?;
                deltas.encode(out)?;
            }
        }
        Ok(())
    }
}

impl WireDecode for ServerFrame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ServerFrame::HelloAck {
                version: u16::decode(r)?,
            },
            1 => ServerFrame::HelloReject {
                message: String::decode(r)?,
            },
            2 => ServerFrame::Submitted {
                corr: RequestId::decode(r)?,
                ticket: u64::decode(r)?,
            },
            3 => ServerFrame::BatchSubmitted {
                corr: RequestId::decode(r)?,
                tickets: Vec::<u64>::decode(r)?,
            },
            4 => ServerFrame::Outcome {
                corr: RequestId::decode(r)?,
                outcome: WireOutcome::decode(r)?,
            },
            5 => ServerFrame::Pending {
                corr: RequestId::decode(r)?,
            },
            6 => ServerFrame::TimedOut {
                corr: RequestId::decode(r)?,
            },
            7 => ServerFrame::Released {
                corr: RequestId::decode(r)?,
            },
            8 => ServerFrame::StatsReply {
                corr: RequestId::decode(r)?,
                stats: StatsSnapshot::decode(r)?,
            },
            9 => ServerFrame::Ack {
                corr: RequestId::decode(r)?,
            },
            10 => ServerFrame::Error {
                corr: RequestId::decode(r)?,
                error: AllocationError::decode(r)?,
            },
            11 => ServerFrame::Delegated {
                corr: RequestId::decode(r)?,
                outcome: WireOutcome::decode(r)?,
                ttl: u32::decode(r)?,
                visited: Vec::<String>::decode(r)?,
                deltas: Vec::<AdvertDelta>::decode(r)?,
            },
            12 => ServerFrame::PoolsSynced {
                corr: RequestId::decode(r)?,
                domain: String::decode(r)?,
                pools: Vec::<String>::decode(r)?,
                deltas: Vec::<AdvertDelta>::decode(r)?,
            },
            13 => ServerFrame::AdvertAck {
                corr: RequestId::decode(r)?,
                domain: String::decode(r)?,
                deltas: Vec::<AdvertDelta>::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    context: "ServerFrame",
                    tag,
                })
            }
        })
    }
}

/// Transport-level failure while reading or writing frames.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket / stream failed.
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Decode(DecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Decode(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Decode(e)
    }
}

/// Writes one length-prefixed frame.
///
/// A frame whose body would exceed [`MAX_FRAME_LEN`] — or that contains a
/// string or sequence over the codec's cap, which the encoder now refuses
/// ([`EncodeError`]) — is rejected with `InvalidData` *before* any byte
/// hits the stream: sending it would make the peer drop the whole
/// connection (taking every other in-flight request with it), and a body
/// over `u32::MAX` would silently corrupt the length prefix and
/// desynchronise the stream.
pub fn write_frame<W: Write, F: WireEncode>(w: &mut W, frame: &F) -> io::Result<()> {
    let body = frame
        .to_wire_bytes()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if body.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "outgoing frame body of {} bytes exceeds the protocol limit of {MAX_FRAME_LEN}",
                body.len()
            ),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Reads one length-prefixed frame body.  Returns `Ok(None)` on a clean end
/// of stream (the peer closed the connection between frames).
pub fn read_frame_body<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before any length byte means the peer hung up politely.
    match r.read(&mut len_bytes) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_bytes[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_bytes)?;
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Decode(DecodeError::TooLarge {
            declared: len,
            limit: MAX_FRAME_LEN,
        }));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Reads one [`ClientFrame`]; `Ok(None)` on clean end of stream.
pub fn read_client_frame<R: Read>(r: &mut R) -> Result<Option<ClientFrame>, FrameError> {
    match read_frame_body(r)? {
        None => Ok(None),
        Some(body) => Ok(Some(ClientFrame::from_wire_bytes(&body)?)),
    }
}

/// Reads one [`ServerFrame`]; `Ok(None)` on clean end of stream.
pub fn read_server_frame<R: Read>(r: &mut R) -> Result<Option<ServerFrame>, FrameError> {
    match read_frame_body(r)? {
        None => Ok(None),
        Some(body) => Ok(Some(ServerFrame::from_wire_bytes(&body)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SessionKey;
    use crate::wire::MAX_SEQUENCE_LEN;
    use actyp_grid::MachineId;

    fn allocation() -> Allocation {
        Allocation {
            request: RequestId(9),
            machine: MachineId(4),
            machine_name: "hp-00004.upc.es".to_string(),
            execution_port: 7070,
            mount_port: 7071,
            shadow_uid: None,
            access_key: SessionKey::derive(RequestId(9), 0, 77),
            pool: "arch,==/hp".to_string(),
            pool_instance: 0,
            examined: 12,
        }
    }

    #[test]
    fn negotiation_picks_the_highest_common_version() {
        assert_eq!(negotiate(3, 3), Some(3));
        assert_eq!(negotiate(1, 99), Some(PROTOCOL_VERSION));
        assert_eq!(
            negotiate(MIN_SUPPORTED_VERSION, PROTOCOL_VERSION),
            Some(PROTOCOL_VERSION)
        );
        // A client that only speaks future versions is rejected.
        assert_eq!(negotiate(PROTOCOL_VERSION + 1, PROTOCOL_VERSION + 5), None);
        // A client that only speaks retired versions is rejected: v2 and
        // v3 each changed the StatsSnapshot layout (and v3 the delegation
        // reply layout), so serving an older client would desynchronise
        // its decoder mid-session.
        assert_eq!(negotiate(1, 1), None);
        assert_eq!(negotiate(2, 2), None);
        assert_eq!(negotiate(1, 2), None);
        // An inverted range is rejected.
        assert_eq!(negotiate(4, 3), None);
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let frames = vec![
            ClientFrame::Hello {
                min_version: 1,
                max_version: 1,
            },
            ClientFrame::Submit {
                corr: RequestId(1),
                query: "punch.rsrc.arch = sun\n".to_string(),
            },
            ClientFrame::Wait {
                corr: RequestId(2),
                ticket: 0,
                deadline_ms: Some(250),
            },
            ClientFrame::Release {
                corr: RequestId(3),
                allocation: allocation(),
            },
            ClientFrame::Halt { corr: RequestId(4) },
            ClientFrame::Delegate {
                corr: RequestId(5),
                query: "punch.rsrc.arch = hp\n".to_string(),
                ttl: 3,
                visited: vec!["purdue".to_string(), "upc".to_string()],
            },
            ClientFrame::SyncPools {
                corr: RequestId(6),
                domain: "purdue".to_string(),
                pools: vec!["arch,==/sun".to_string()],
                have: vec![AdvertVersion {
                    origin: "upc".to_string(),
                    epoch: 4,
                    seq: 17,
                }],
            },
            ClientFrame::AdvertDelta {
                corr: RequestId(7),
                domain: "purdue".to_string(),
                deltas: vec![AdvertDelta {
                    origin: "purdue".to_string(),
                    epoch: 2,
                    head: 6,
                    entries: vec![
                        AdvertEntry {
                            seq: 5,
                            pool: "arch,==/sun".to_string(),
                            alive: true,
                        },
                        AdvertEntry {
                            seq: 6,
                            pool: "arch,==/sgi".to_string(),
                            alive: false,
                        },
                    ],
                    full: false,
                }],
                have: vec![],
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        let mut cursor = &stream[..];
        for f in &frames {
            assert_eq!(read_client_frame(&mut cursor).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_client_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn server_frames_round_trip_through_a_stream() {
        let frames = vec![
            ServerFrame::HelloAck { version: 1 },
            ServerFrame::Submitted {
                corr: RequestId(1),
                ticket: 3,
            },
            ServerFrame::Outcome {
                corr: RequestId(2),
                outcome: Ok(vec![allocation()]),
            },
            ServerFrame::Outcome {
                corr: RequestId(3),
                outcome: Err(AllocationError::NoSuchResources),
            },
            ServerFrame::TimedOut { corr: RequestId(4) },
            ServerFrame::Error {
                corr: RequestId(5),
                error: AllocationError::Protocol("x".into()),
            },
            ServerFrame::Delegated {
                corr: RequestId(6),
                outcome: Ok(vec![allocation()]),
                ttl: 2,
                visited: vec!["purdue".to_string(), "upc".to_string()],
                deltas: vec![AdvertDelta {
                    origin: "upc".to_string(),
                    epoch: 1,
                    head: 1,
                    entries: vec![AdvertEntry {
                        seq: 1,
                        pool: "arch,==/hp".to_string(),
                        alive: true,
                    }],
                    full: true,
                }],
            },
            ServerFrame::Delegated {
                corr: RequestId(7),
                outcome: Err(AllocationError::TtlExpired),
                ttl: 0,
                visited: vec!["purdue".to_string()],
                deltas: vec![],
            },
            ServerFrame::PoolsSynced {
                corr: RequestId(8),
                domain: "upc".to_string(),
                pools: vec!["arch,==/hp".to_string(), "arch,==/sun".to_string()],
                deltas: vec![],
            },
            ServerFrame::AdvertAck {
                corr: RequestId(9),
                domain: "upc".to_string(),
                deltas: vec![AdvertDelta {
                    origin: "cern".to_string(),
                    epoch: 3,
                    head: 0,
                    entries: vec![],
                    full: false,
                }],
            },
        ];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        let mut cursor = &stream[..];
        for f in &frames {
            assert_eq!(read_server_frame(&mut cursor).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_server_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_outgoing_frames_are_refused_before_any_byte_is_sent() {
        // A batch whose rendered queries together exceed MAX_FRAME_LEN.
        let frame = ClientFrame::SubmitBatch {
            corr: RequestId(1),
            queries: vec!["q".repeat(MAX_SEQUENCE_LEN - 1); 17],
        };
        let mut stream = Vec::new();
        let err = write_frame(&mut stream, &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(stream.is_empty(), "nothing reached the stream");
    }

    #[test]
    fn oversized_frame_lengths_are_rejected_before_allocation() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes());
        let mut cursor = &stream[..];
        assert!(matches!(
            read_client_frame(&mut cursor),
            Err(FrameError::Decode(DecodeError::TooLarge { .. }))
        ));
    }

    #[test]
    fn a_frame_cut_mid_body_is_an_io_error() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &ClientFrame::Stats { corr: RequestId(0) }).unwrap();
        stream.truncate(stream.len() - 1);
        let mut cursor = &stream[..];
        assert!(matches!(
            read_client_frame(&mut cursor),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn over_cap_values_are_refused_at_the_frame_writer() {
        // A single over-cap string inside a frame is an *encode* failure,
        // caught before any byte is written.  On the pre-fix codec this
        // frame encoded fine and only the peer's decoder rejected it.
        let frame = ClientFrame::Delegate {
            corr: RequestId(1),
            query: "q".repeat(MAX_SEQUENCE_LEN + 1),
            ttl: 4,
            visited: Vec::new(),
        };
        let mut stream = Vec::new();
        let err = write_frame(&mut stream, &frame).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(stream.is_empty(), "nothing reached the stream");
        assert!(matches!(
            frame.to_wire_bytes(),
            Err(EncodeError::TooLong { .. })
        ));
    }

    #[test]
    fn frame_length_must_match_payload_exactly() {
        // A valid body with a spare byte appended inside the frame.
        let mut body = ClientFrame::Stats { corr: RequestId(7) }
            .to_wire_bytes()
            .unwrap();
        body.push(0xAB);
        let mut stream = Vec::new();
        stream.extend_from_slice(&(body.len() as u32).to_be_bytes());
        stream.extend_from_slice(&body);
        let mut cursor = &stream[..];
        assert!(matches!(
            read_client_frame(&mut cursor),
            Err(FrameError::Decode(DecodeError::TrailingBytes { .. }))
        ));
    }
}
