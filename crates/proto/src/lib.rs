//! # actyp-proto — the ActYP resource-management wire protocol
//!
//! The paper's stages are *network* services: "queries propagate from one
//! stage to the next via TCP or UDP", and clients talk to the resource
//! manager over a socket.  This crate is the contract that makes the
//! repository's unified `ResourceManager` API a protocol rather than a
//! trait object:
//!
//! * [`wire`] — a hand-rolled, length-prefixed binary codec (no external
//!   serialisation dependency): [`wire::WireEncode`] / [`wire::WireDecode`]
//!   over big-endian integers, UTF-8 strings, options and sequences, with
//!   total (never-panicking) decoding and *symmetric* limits — every cap
//!   the decoder enforces is enforced at encode time too, so a value no
//!   peer could decode fails at the sender ([`wire::EncodeError`]).
//! * [`types`] — the client-visible data model shared by every deployment:
//!   [`RequestId`], [`StageAddress`] (with a `host:port` `FromStr` /
//!   `Display` round trip), [`SessionKey`], [`Allocation`], the
//!   [`AllocationError`] taxonomy (extended with [`AllocationError::Network`]
//!   and [`AllocationError::Protocol`] for the wire deployment) and
//!   [`StatsSnapshot`].
//! * [`frames`] — the protocol itself: [`ClientFrame`] / [`ServerFrame`]
//!   covering the full `ResourceManager` surface (submit, batch submit,
//!   wait-with-deadline, poll, release, stats, session shutdown, daemon
//!   halt), framed as `[u32 length][body]` with explicit version
//!   negotiation ([`ClientFrame::Hello`] → [`ServerFrame::HelloAck`]) and
//!   response correlation by [`RequestId`] so requests pipeline on one
//!   connection.  Version 2 adds the wide-area federation vocabulary:
//!   [`ClientFrame::Delegate`] / [`ServerFrame::Delegated`] carry a query,
//!   its remaining TTL and the visited-domain list between peered daemons,
//!   and [`ClientFrame::SyncPools`] / [`ServerFrame::PoolsSynced`]
//!   exchange pool advertisements so peers learn each other's pool names.
//!   Version 3 adds the anti-entropy gossip plane:
//!   [`ClientFrame::AdvertDelta`] / [`ServerFrame::AdvertAck`] exchange
//!   versioned advertisement-log deltas ([`AdvertDelta`], [`AdvertEntry`],
//!   [`AdvertVersion`]), and the same deltas piggyback on `Delegated` and
//!   `PoolsSynced` replies so directory news rides on traffic already
//!   flowing.
//!
//! The protocol deliberately carries queries in the native key/value *text*
//! form: the query language is the paper's client-facing interface, its
//! rendering round-trips through the parser, and it keeps the wire format
//! independent of the query crate's internal AST.
//!
//! Consumers: `actyp_pipeline::api::RemoteBackend` (client side),
//! `actyp_pipeline::remote::YpServer` and the `ypd` daemon binary (server
//! side).

pub mod frames;
pub mod types;
pub mod wire;

pub use frames::{
    negotiate, read_client_frame, read_frame_body, read_server_frame, write_frame, AdvertDelta,
    AdvertEntry, AdvertVersion, ClientFrame, FrameError, ServerFrame, WireOutcome, MAX_FRAME_LEN,
    MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
pub use types::{
    AddressParseError, Allocation, AllocationError, RequestId, RequestIdGenerator, SessionKey,
    StageAddress, StatsSnapshot,
};
pub use wire::{DecodeError, EncodeError, Reader, WireDecode, WireEncode, MAX_SEQUENCE_LEN};
