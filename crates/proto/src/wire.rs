//! The hand-rolled binary codec every protocol type builds on.
//!
//! The build environment has no access to crates.io, so there is no serde
//! here: each wire type implements [`WireEncode`] / [`WireDecode`] by hand
//! over a small set of primitives — big-endian fixed-width integers,
//! length-prefixed UTF-8 strings, tagged options and counted sequences.
//! Decoding is *total*: any byte string either decodes to a value that
//! re-encodes to the same bytes, or returns a [`DecodeError`] — it never
//! panics, which is what lets a daemon read frames from untrusted sockets.
//!
//! Encoding is *symmetric* with decoding: every limit the decoder enforces
//! is enforced at encode time too, as an [`EncodeError`].  The codec used
//! to check [`MAX_SEQUENCE_LEN`] only on the way in, so an over-cap string
//! or sequence would encode locally into bytes that *no* conforming peer
//! could ever decode (and a length beyond `u32::MAX` would silently
//! truncate its prefix, desynchronising the stream).  A value that cannot
//! be represented on the wire now fails at the sender, against the request
//! that carried it, instead of poisoning the connection at the receiver.

use std::fmt;

/// Why a byte string could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// A tag byte does not name any variant of the expected type.
    BadTag {
        /// The type whose tag was invalid.
        context: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A declared frame or sequence length exceeds the protocol limit.
    TooLarge {
        /// The declared length.
        declared: usize,
        /// The limit it exceeds.
        limit: usize,
    },
    /// The value decoded cleanly but bytes were left over — the frame
    /// length and the payload disagree.
    TrailingBytes {
        /// How many bytes remained unconsumed.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { context } => {
                write!(f, "input truncated while decoding {context}")
            }
            DecodeError::BadTag { context, tag } => {
                write!(f, "invalid tag {tag:#04x} for {context}")
            }
            DecodeError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            DecodeError::TooLarge { declared, limit } => {
                write!(f, "declared length {declared} exceeds the limit {limit}")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a value could not be encoded: it exceeds a limit every conforming
/// decoder rejects, so the bytes would be useless to any peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A string or sequence is longer than [`MAX_SEQUENCE_LEN`].
    TooLong {
        /// What was being encoded.
        context: &'static str,
        /// The actual length.
        actual: usize,
        /// The limit it exceeds.
        limit: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooLong {
                context,
                actual,
                limit,
            } => write!(
                f,
                "{context} of length {actual} exceeds the wire limit {limit}; \
                 no peer could decode it"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Longest string / sequence a peer may declare (guards a malicious or
/// corrupt length prefix from forcing a giant allocation).  Enforced on
/// both sides of the codec: decoders reject a longer declared length, and
/// encoders refuse to produce one.
pub const MAX_SEQUENCE_LEN: usize = 1 << 20;

/// A cursor over the bytes of one frame body.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes off the front.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Errors with [`DecodeError::TrailingBytes`] unless every byte was
    /// consumed.  Call after decoding a frame body: the frame length and
    /// its payload must agree exactly.
    pub fn finish(&self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(DecodeError::TrailingBytes { remaining }),
        }
    }
}

/// Serialises a value into the wire representation.
///
/// Encoding is fallible for the same reason decoding is: the protocol caps
/// string and sequence lengths, and a value over the cap must fail *here*,
/// at the sender, rather than encode into bytes every peer will reject.
pub trait WireEncode {
    /// Appends this value's wire bytes to `out`.
    ///
    /// On error, `out` may hold a partial encoding — callers that reuse
    /// buffers must truncate back to the pre-call length (the frame writer
    /// does; it never sends a failed body).
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError>;

    /// This value's wire bytes as a fresh buffer.
    fn to_wire_bytes(&self) -> Result<Vec<u8>, EncodeError> {
        let mut out = Vec::new();
        self.encode(&mut out)?;
        Ok(out)
    }
}

/// Reconstructs a value from the wire representation.
pub trait WireDecode: Sized {
    /// Reads one value off the front of `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;

    /// Decodes a value that must span the whole buffer exactly.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

/// Checks a length against [`MAX_SEQUENCE_LEN`] before it becomes a `u32`
/// prefix, so an over-cap (or prefix-truncating) length never reaches the
/// wire.
fn check_len(len: usize, context: &'static str) -> Result<u32, EncodeError> {
    if len > MAX_SEQUENCE_LEN {
        return Err(EncodeError::TooLong {
            context,
            actual: len,
            limit: MAX_SEQUENCE_LEN,
        });
    }
    Ok(len as u32)
}

macro_rules! int_wire {
    ($($t:ty),+) => {$(
        impl WireEncode for $t {
            fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
                out.extend_from_slice(&self.to_be_bytes());
                Ok(())
            }
        }

        impl WireDecode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let bytes = r.take(std::mem::size_of::<$t>(), stringify!($t))?;
                Ok(<$t>::from_be_bytes(bytes.try_into().expect("exact slice")))
            }
        }
    )+};
}

int_wire!(u8, u16, u32, u64);

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        out.push(u8::from(*self));
        Ok(())
    }
}

impl WireDecode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        check_len(self.len(), "string")?.encode(out)?;
        out.extend_from_slice(self.as_bytes());
        Ok(())
    }
}

impl WireDecode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u32::decode(r)? as usize;
        if len > MAX_SEQUENCE_LEN {
            return Err(DecodeError::TooLarge {
                declared: len,
                limit: MAX_SEQUENCE_LEN,
            });
        }
        let bytes = r.take(len, "string payload")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out)?;
            }
        }
        Ok(())
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        check_len(self.len(), "sequence")?.encode(out)?;
        for item in self {
            item.encode(out)?;
        }
        Ok(())
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u32::decode(r)? as usize;
        if len > MAX_SEQUENCE_LEN {
            return Err(DecodeError::TooLarge {
                declared: len,
                limit: MAX_SEQUENCE_LEN,
            });
        }
        // Cap the pre-allocation by what the input could possibly hold so a
        // lying length prefix cannot force a huge reservation.
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: WireEncode, E: WireEncode> WireEncode for Result<T, E> {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        match self {
            Ok(value) => {
                out.push(0);
                value.encode(out)?;
            }
            Err(error) => {
                out.push(1);
                error.encode(out)?;
            }
        }
        Ok(())
    }
}

impl<T: WireDecode, E: WireDecode> WireDecode for Result<T, E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(E::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                context: "Result",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_wire_bytes().unwrap();
        assert_eq!(T::from_wire_bytes(&bytes).unwrap(), value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(String::new());
        round_trip("actyp über alles — ünïcødé".to_string());
        round_trip(Option::<u64>::None);
        round_trip(Some("x".to_string()));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Result::<u32, String>::Ok(7));
        round_trip(Result::<u32, String>::Err("nope".to_string()));
    }

    #[test]
    fn integers_are_big_endian() {
        assert_eq!(0x0102u16.to_wire_bytes().unwrap(), vec![0x01, 0x02]);
        assert_eq!(
            0x01020304u32.to_wire_bytes().unwrap(),
            vec![0x01, 0x02, 0x03, 0x04]
        );
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = 0xDEAD_BEEF_u64.to_wire_bytes().unwrap();
        for cut in 0..bytes.len() {
            assert!(matches!(
                u64::from_wire_bytes(&bytes[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 7u32.to_wire_bytes().unwrap();
        bytes.push(0);
        assert_eq!(
            u32::from_wire_bytes(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(matches!(
            bool::from_wire_bytes(&[2]),
            Err(DecodeError::BadTag { .. })
        ));
        assert!(matches!(
            Option::<u8>::from_wire_bytes(&[9, 0]),
            Err(DecodeError::BadTag { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes).unwrap();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(String::from_wire_bytes(&bytes), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn lying_length_prefixes_do_not_overallocate() {
        // Declares 2^20 - 1 elements but provides none: must error, fast.
        let mut bytes = Vec::new();
        ((MAX_SEQUENCE_LEN - 1) as u32).encode(&mut bytes).unwrap();
        assert!(matches!(
            Vec::<u64>::from_wire_bytes(&bytes),
            Err(DecodeError::Truncated { .. })
        ));
        // Over the cap: rejected outright.
        let mut bytes = Vec::new();
        ((MAX_SEQUENCE_LEN + 1) as u32).encode(&mut bytes).unwrap();
        assert!(matches!(
            String::from_wire_bytes(&bytes),
            Err(DecodeError::TooLarge { .. })
        ));
    }

    /// The headline regression: the codec used to encode over-cap values
    /// that no conforming decoder (including our own) would accept.  The
    /// cap is now symmetric — encode succeeds exactly up to the boundary
    /// the decoder enforces, and fails one past it.
    #[test]
    fn encode_enforces_the_cap_the_decoder_enforces() {
        // A string exactly at the cap round-trips.
        let at_cap = "x".repeat(MAX_SEQUENCE_LEN);
        let bytes = at_cap.to_wire_bytes().unwrap();
        assert_eq!(String::from_wire_bytes(&bytes).unwrap(), at_cap);

        // One byte over: refused at *encode* time (this assertion fails on
        // the pre-fix codec, which happily produced undecodable bytes).
        let over_cap = "x".repeat(MAX_SEQUENCE_LEN + 1);
        assert_eq!(
            over_cap.to_wire_bytes(),
            Err(EncodeError::TooLong {
                context: "string",
                actual: MAX_SEQUENCE_LEN + 1,
                limit: MAX_SEQUENCE_LEN,
            })
        );

        // Sequences: at-cap encodes and round-trips, over-cap is refused.
        let at_cap = vec![0u8; MAX_SEQUENCE_LEN];
        let bytes = at_cap.to_wire_bytes().unwrap();
        assert_eq!(Vec::<u8>::from_wire_bytes(&bytes).unwrap(), at_cap);
        let over_cap = vec![0u8; MAX_SEQUENCE_LEN + 1];
        assert!(matches!(
            over_cap.to_wire_bytes(),
            Err(EncodeError::TooLong {
                context: "sequence",
                ..
            })
        ));
    }

    #[test]
    fn nested_over_cap_values_fail_wherever_they_sit() {
        // The cap applies to inner values too, not just the outermost.
        let nested = vec![String::new(), "y".repeat(MAX_SEQUENCE_LEN + 1)];
        assert!(matches!(
            nested.to_wire_bytes(),
            Err(EncodeError::TooLong { .. })
        ));
        let inside_option = Some("z".repeat(MAX_SEQUENCE_LEN + 1));
        assert!(matches!(
            inside_option.to_wire_bytes(),
            Err(EncodeError::TooLong { .. })
        ));
        let inside_result: Result<String, u8> = Ok("w".repeat(MAX_SEQUENCE_LEN + 1));
        assert!(matches!(
            inside_result.to_wire_bytes(),
            Err(EncodeError::TooLong { .. })
        ));
    }

    #[test]
    fn encode_errors_name_the_problem() {
        let message = EncodeError::TooLong {
            context: "string",
            actual: MAX_SEQUENCE_LEN + 1,
            limit: MAX_SEQUENCE_LEN,
        }
        .to_string();
        assert!(message.contains("string"));
        assert!(message.contains(&MAX_SEQUENCE_LEN.to_string()));
    }
}
