//! The client-visible data model of the resource manager, shared by every
//! deployment and carried verbatim on the wire.
//!
//! These types used to live inside the pipeline crate; they moved here when
//! the `ResourceManager` API became a network protocol, because a request
//! identifier, a stage address, an allocation and an error taxonomy are
//! exactly the things a client and a daemon must agree on.
//! `actyp_pipeline` re-exports them, so in-process code is unaffected.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use actyp_grid::MachineId;

use crate::wire::{DecodeError, EncodeError, Reader, WireDecode, WireEncode};

/// Globally unique identifier of a client request.
///
/// On the wire this doubles as the correlation id that matches a response
/// frame to the request frame that caused it, which is what lets several
/// requests be in flight on one connection at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

impl WireEncode for RequestId {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.0.encode(out)
    }
}

impl WireDecode for RequestId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RequestId(u64::decode(r)?))
    }
}

/// Monotonic generator of request identifiers, shared by query managers and
/// protocol clients.
#[derive(Debug, Default)]
pub struct RequestIdGenerator {
    next: AtomicU64,
}

impl RequestIdGenerator {
    /// A generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh identifier.
    pub fn next(&self) -> RequestId {
        RequestId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Why a textual stage address could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressParseError {
    /// The input was empty or all whitespace.
    Empty,
    /// No `:` separates the host from the port.
    MissingPort,
    /// The host part before the `:` is empty.
    EmptyHost,
    /// The port part is not a number in `0..=65535`.
    InvalidPort(String),
}

impl fmt::Display for AddressParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressParseError::Empty => write!(f, "empty address"),
            AddressParseError::MissingPort => {
                write!(f, "address must be host:port (no `:` found)")
            }
            AddressParseError::EmptyHost => write!(f, "address has an empty host part"),
            AddressParseError::InvalidPort(raw) => {
                write!(f, "invalid port `{raw}` (expected 0..=65535)")
            }
        }
    }
}

impl std::error::Error for AddressParseError {}

/// Logical network address of a pipeline stage (host name and TCP/UDP port).
/// The live deployment maps these to channels; the simulated deployment maps
/// them to latency-model endpoints; the remote deployment connects to them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StageAddress {
    /// Host the stage runs on.
    pub host: String,
    /// Port the stage listens on.
    pub port: u16,
}

impl StageAddress {
    /// Convenience constructor.
    pub fn new(host: impl Into<String>, port: u16) -> Self {
        StageAddress {
            host: host.into(),
            port,
        }
    }
}

impl fmt::Display for StageAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

impl FromStr for StageAddress {
    type Err = AddressParseError;

    /// Parses `host:port`, the inverse of [`Display`](StageAddress#impl-Display-for-StageAddress).
    /// The port is the part after the *last* `:`, so a numeric IPv6 host can
    /// be given in bracket-free form as long as the trailing component is
    /// the port.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Err(AddressParseError::Empty);
        }
        let (host, port) = s.rsplit_once(':').ok_or(AddressParseError::MissingPort)?;
        if host.is_empty() {
            return Err(AddressParseError::EmptyHost);
        }
        let port = port
            .parse::<u16>()
            .map_err(|_| AddressParseError::InvalidPort(port.to_string()))?;
        Ok(StageAddress::new(host, port))
    }
}

impl WireEncode for StageAddress {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.host.encode(out)?;
        self.port.encode(out)
    }
}

impl WireDecode for StageAddress {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StageAddress {
            host: String::decode(r)?,
            port: u16::decode(r)?,
        })
    }
}

/// A session-specific access key exchanged among the resources taking part
/// in a run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey(pub String);

impl SessionKey {
    /// Derives a key from a request id, an instance number and a nonce.
    /// (The production system exchanged cryptographic material; a unique
    /// opaque token preserves the interface.)
    pub fn derive(request: RequestId, instance: u32, nonce: u64) -> Self {
        SessionKey(format!(
            "actyp-{:08x}-{instance:02x}-{nonce:016x}",
            request.0
        ))
    }
}

impl fmt::Display for SessionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl WireEncode for SessionKey {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.0.encode(out)
    }
}

impl WireDecode for SessionKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SessionKey(String::decode(r)?))
    }
}

impl WireEncode for MachineId {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.0.encode(out)
    }
}

impl WireDecode for MachineId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MachineId(u64::decode(r)?))
    }
}

/// A successful resource allocation returned to the client.
///
/// The contract the paper describes is simple: "the network desktop simply
/// asks ActYP for resources (via a query language); and it gets back an IP
/// address, a TCP port number, and a session-specific access key."  An
/// `Allocation` is that reply, extended with the bookkeeping the desktop
/// needs to later release the resources (machine id, pool name, shadow
/// account uid).  It is fully self-describing, which is what lets a client
/// hand it back over the wire to release it.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The request this allocation answers.
    pub request: RequestId,
    /// Database id of the selected machine.
    pub machine: MachineId,
    /// Host name of the selected machine.
    pub machine_name: String,
    /// TCP port of the PUNCH execution unit on the machine.
    pub execution_port: u16,
    /// TCP port of the PVFS mount manager on the machine.
    pub mount_port: u16,
    /// The shadow-account uid selected for the run, when one was needed
    /// (runs in the shared account carry `None`).
    pub shadow_uid: Option<u32>,
    /// Session-specific access key.
    pub access_key: SessionKey,
    /// Full name (`signature/identifier`) of the pool that served the query.
    pub pool: String,
    /// Instance number of that pool.
    pub pool_instance: u32,
    /// Number of cached machines the scheduling process examined (used by
    /// the evaluation; the paper's response times are dominated by this
    /// linear search).
    pub examined: usize,
}

impl WireEncode for Allocation {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.request.encode(out)?;
        self.machine.encode(out)?;
        self.machine_name.encode(out)?;
        self.execution_port.encode(out)?;
        self.mount_port.encode(out)?;
        self.shadow_uid.encode(out)?;
        self.access_key.encode(out)?;
        self.pool.encode(out)?;
        self.pool_instance.encode(out)?;
        (self.examined as u64).encode(out)
    }
}

impl WireDecode for Allocation {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Allocation {
            request: RequestId::decode(r)?,
            machine: MachineId::decode(r)?,
            machine_name: String::decode(r)?,
            execution_port: u16::decode(r)?,
            mount_port: u16::decode(r)?,
            shadow_uid: Option::<u32>::decode(r)?,
            access_key: SessionKey::decode(r)?,
            pool: String::decode(r)?,
            pool_instance: u32::decode(r)?,
            examined: u64::decode(r)? as usize,
        })
    }
}

/// Why an allocation (or a protocol operation) failed.
///
/// The first group mirrors the failure modes of the paper's pipeline; the
/// last three belong to the network deployment, where the transport and the
/// protocol itself can fail independently of resource management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// The query could not be parsed.
    Parse(String),
    /// The query violates the schema of its family.
    Schema(String),
    /// No pool exists or can be created for the requested aggregation (no
    /// machine in the white pages satisfies the constraints).
    NoSuchResources,
    /// The pool exists but every matching machine is busy, down or denied by
    /// policy at the moment.
    NoneAvailable,
    /// All matching machines rejected the user (user-group or usage policy).
    PolicyDenied,
    /// A shadow account was required but none are free on the candidates.
    ShadowAccountsExhausted,
    /// The delegation time-to-live reached zero before any pool manager
    /// could satisfy the request.
    TtlExpired,
    /// The referenced allocation is unknown (double release, bad handle).
    UnknownAllocation,
    /// The referenced ticket is unknown (already waited, or issued by a
    /// different backend).
    UnknownTicket,
    /// Internal failure (a stage died, a channel closed).
    Internal(String),
    /// The transport to a remote resource manager failed (connect, read or
    /// write error, connection closed mid-request).
    Network(String),
    /// The peer violated the wire protocol (bad frame, unexpected reply,
    /// failed version negotiation).
    Protocol(String),
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::Parse(m) => write!(f, "query parse error: {m}"),
            AllocationError::Schema(m) => write!(f, "query schema violation: {m}"),
            AllocationError::NoSuchResources => {
                write!(f, "no resources of the requested type exist")
            }
            AllocationError::NoneAvailable => {
                write!(f, "no matching resource is currently available")
            }
            AllocationError::PolicyDenied => {
                write!(f, "access denied by machine usage policies")
            }
            AllocationError::ShadowAccountsExhausted => {
                write!(f, "no shadow accounts available on matching machines")
            }
            AllocationError::TtlExpired => {
                write!(f, "request time-to-live expired during delegation")
            }
            AllocationError::UnknownAllocation => write!(f, "unknown allocation handle"),
            AllocationError::UnknownTicket => write!(f, "unknown submission ticket"),
            AllocationError::Internal(m) => write!(f, "internal pipeline error: {m}"),
            AllocationError::Network(m) => write!(f, "network transport error: {m}"),
            AllocationError::Protocol(m) => write!(f, "wire protocol violation: {m}"),
        }
    }
}

impl std::error::Error for AllocationError {}

impl WireEncode for AllocationError {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        match self {
            AllocationError::Parse(m) => {
                out.push(0);
                m.encode(out)?;
            }
            AllocationError::Schema(m) => {
                out.push(1);
                m.encode(out)?;
            }
            AllocationError::NoSuchResources => out.push(2),
            AllocationError::NoneAvailable => out.push(3),
            AllocationError::PolicyDenied => out.push(4),
            AllocationError::ShadowAccountsExhausted => out.push(5),
            AllocationError::TtlExpired => out.push(6),
            AllocationError::UnknownAllocation => out.push(7),
            AllocationError::UnknownTicket => out.push(8),
            AllocationError::Internal(m) => {
                out.push(9);
                m.encode(out)?;
            }
            AllocationError::Network(m) => {
                out.push(10);
                m.encode(out)?;
            }
            AllocationError::Protocol(m) => {
                out.push(11);
                m.encode(out)?;
            }
        }
        Ok(())
    }
}

impl WireDecode for AllocationError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => AllocationError::Parse(String::decode(r)?),
            1 => AllocationError::Schema(String::decode(r)?),
            2 => AllocationError::NoSuchResources,
            3 => AllocationError::NoneAvailable,
            4 => AllocationError::PolicyDenied,
            5 => AllocationError::ShadowAccountsExhausted,
            6 => AllocationError::TtlExpired,
            7 => AllocationError::UnknownAllocation,
            8 => AllocationError::UnknownTicket,
            9 => AllocationError::Internal(String::decode(r)?),
            10 => AllocationError::Network(String::decode(r)?),
            11 => AllocationError::Protocol(String::decode(r)?),
            tag => {
                return Err(DecodeError::BadTag {
                    context: "AllocationError",
                    tag,
                })
            }
        })
    }
}

/// A unified snapshot of the counters every backend reports.
///
/// The pipeline backends fill the per-stage counters (fragments,
/// delegations, forwards); the centralized baselines leave those at zero —
/// they have no stages to delegate between, which is exactly the
/// architectural contrast the paper draws.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Client requests submitted.
    pub requests: u64,
    /// Basic queries produced by decomposition.
    pub fragments: u64,
    /// Successful allocations handed to clients.
    pub allocations: u64,
    /// Failed requests or fragments.
    pub failures: u64,
    /// Delegations between pool managers (pipeline backends only).
    pub delegations: u64,
    /// Forwards to pool instances hosted elsewhere (pipeline backends only).
    pub forwards: u64,
    /// Queries this daemon delegated to peer domains over the wire after
    /// the local backend could not satisfy them (federated daemons only).
    pub delegations_out: u64,
    /// Peer delegation requests this daemon served, whether it satisfied
    /// them locally or forwarded them further (federated daemons only).
    pub delegations_in: u64,
    /// Allocations released by clients.
    pub releases: u64,
    /// Machine records examined — the quantity the paper's comparison
    /// figures plot.  Pool caches keep it small for the pipeline; the
    /// centralized baselines scan the full table per decision.  The
    /// pipeline backends attribute scans to the successful allocations they
    /// return (`Allocation::examined`); the baselines report their central
    /// component's lifetime scan total, which includes decisions that found
    /// no machine — that asymmetry is inherited from the figure accounting
    /// the paper's evaluation uses.
    pub records_examined: u64,
    /// Tickets submitted but not yet redeemed.
    pub in_flight: usize,
    /// Advertisement-log deltas applied from peers — piggybacked on
    /// delegation traffic or pulled by the anti-entropy tick (federated
    /// daemons only).
    pub gossip_deltas_in: u64,
    /// Advertisement-log deltas shipped to peers (federated daemons only).
    pub gossip_deltas_out: u64,
    /// Delegations routed straight to a cached satisfying domain
    /// (federated daemons only).
    pub route_hits: u64,
    /// Delegations that fell back to the TTL-bounded chain walk because no
    /// cached route existed (federated daemons only).
    pub route_misses: u64,
    /// Peer links re-dialed after a previously-established connection
    /// dropped.  Zero on a healthy federation — gossip keeps directories
    /// fresh without tearing links down.
    pub peer_redials: u64,
    /// Times a hot-path shard (directory shard, admission-window lane,
    /// pending-ticket shard) was found contended and the caller had to
    /// fall back to a blocking acquire.  Zero when the shard count
    /// matches the offered concurrency.
    pub shard_contention: u64,
    /// Frames that arrived as part of a multi-frame batch dispatched with
    /// a single lane wakeup (the reactor decodes every complete frame per
    /// readable event, not one).
    pub frames_batched: u64,
    /// Flushes that drained more than one queued frame with a single
    /// coalesced socket write.
    pub writes_coalesced: u64,
}

impl WireEncode for StatsSnapshot {
    fn encode(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        self.requests.encode(out)?;
        self.fragments.encode(out)?;
        self.allocations.encode(out)?;
        self.failures.encode(out)?;
        self.delegations.encode(out)?;
        self.forwards.encode(out)?;
        self.delegations_out.encode(out)?;
        self.delegations_in.encode(out)?;
        self.releases.encode(out)?;
        self.records_examined.encode(out)?;
        (self.in_flight as u64).encode(out)?;
        self.gossip_deltas_in.encode(out)?;
        self.gossip_deltas_out.encode(out)?;
        self.route_hits.encode(out)?;
        self.route_misses.encode(out)?;
        self.peer_redials.encode(out)?;
        self.shard_contention.encode(out)?;
        self.frames_batched.encode(out)?;
        self.writes_coalesced.encode(out)
    }
}

impl WireDecode for StatsSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(StatsSnapshot {
            requests: u64::decode(r)?,
            fragments: u64::decode(r)?,
            allocations: u64::decode(r)?,
            failures: u64::decode(r)?,
            delegations: u64::decode(r)?,
            forwards: u64::decode(r)?,
            delegations_out: u64::decode(r)?,
            delegations_in: u64::decode(r)?,
            releases: u64::decode(r)?,
            records_examined: u64::decode(r)?,
            in_flight: u64::decode(r)? as usize,
            gossip_deltas_in: u64::decode(r)?,
            gossip_deltas_out: u64::decode(r)?,
            route_hits: u64::decode(r)?,
            route_misses: u64::decode(r)?,
            peer_redials: u64::decode(r)?,
            shard_contention: u64::decode(r)?,
            frames_batched: u64::decode(r)?,
            writes_coalesced: u64::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireDecode, WireEncode};

    #[test]
    fn stage_address_display_parse_round_trip() {
        let a = StageAddress::new("actyp.ecn.purdue.edu", 7200);
        assert_eq!(a.to_string(), "actyp.ecn.purdue.edu:7200");
        assert_eq!(a.to_string().parse::<StageAddress>().unwrap(), a);
        // Whitespace is tolerated; the last colon splits host from port.
        assert_eq!(
            " 127.0.0.1:7411 ".parse::<StageAddress>().unwrap(),
            StageAddress::new("127.0.0.1", 7411)
        );
        assert_eq!(
            "::1:7411".parse::<StageAddress>().unwrap(),
            StageAddress::new("::1", 7411)
        );
    }

    #[test]
    fn stage_address_parse_errors_are_typed() {
        assert_eq!("".parse::<StageAddress>(), Err(AddressParseError::Empty));
        assert_eq!("   ".parse::<StageAddress>(), Err(AddressParseError::Empty));
        assert_eq!(
            "localhost".parse::<StageAddress>(),
            Err(AddressParseError::MissingPort)
        );
        assert_eq!(
            ":7411".parse::<StageAddress>(),
            Err(AddressParseError::EmptyHost)
        );
        assert_eq!(
            "host:".parse::<StageAddress>(),
            Err(AddressParseError::InvalidPort(String::new()))
        );
        assert_eq!(
            "host:notaport".parse::<StageAddress>(),
            Err(AddressParseError::InvalidPort("notaport".to_string()))
        );
        assert_eq!(
            "host:65536".parse::<StageAddress>(),
            Err(AddressParseError::InvalidPort("65536".to_string()))
        );
        assert_eq!(
            "host:-1".parse::<StageAddress>(),
            Err(AddressParseError::InvalidPort("-1".to_string()))
        );
        // The error messages name the problem.
        assert!(AddressParseError::MissingPort
            .to_string()
            .contains("host:port"));
        assert!(AddressParseError::InvalidPort("99999".into())
            .to_string()
            .contains("99999"));
    }

    fn sample_allocation() -> Allocation {
        Allocation {
            request: RequestId(5),
            machine: MachineId(10),
            machine_name: "sun-00010.purdue.edu".to_string(),
            execution_port: 7070,
            mount_port: 7071,
            shadow_uid: Some(6003),
            access_key: SessionKey::derive(RequestId(5), 1, 7),
            pool: "arch,==/sun".to_string(),
            pool_instance: 1,
            examined: 37,
        }
    }

    #[test]
    fn allocation_round_trips_on_the_wire() {
        let a = sample_allocation();
        let bytes = a.to_wire_bytes().unwrap();
        assert_eq!(Allocation::from_wire_bytes(&bytes).unwrap(), a);
        // Without a shadow uid too (different Option arm).
        let mut b = sample_allocation();
        b.shadow_uid = None;
        assert_eq!(
            Allocation::from_wire_bytes(&b.to_wire_bytes().unwrap()).unwrap(),
            b
        );
    }

    #[test]
    fn every_error_variant_round_trips_on_the_wire() {
        let variants = vec![
            AllocationError::Parse("line 3".into()),
            AllocationError::Schema("bad key".into()),
            AllocationError::NoSuchResources,
            AllocationError::NoneAvailable,
            AllocationError::PolicyDenied,
            AllocationError::ShadowAccountsExhausted,
            AllocationError::TtlExpired,
            AllocationError::UnknownAllocation,
            AllocationError::UnknownTicket,
            AllocationError::Internal("stage died".into()),
            AllocationError::Network("connection reset".into()),
            AllocationError::Protocol("bad frame".into()),
        ];
        for e in variants {
            let bytes = e.to_wire_bytes().unwrap();
            assert_eq!(AllocationError::from_wire_bytes(&bytes).unwrap(), e);
        }
    }

    #[test]
    fn stats_snapshot_round_trips_on_the_wire() {
        let s = StatsSnapshot {
            requests: 1,
            fragments: 2,
            allocations: 3,
            failures: 4,
            delegations: 5,
            forwards: 6,
            delegations_out: 10,
            delegations_in: 11,
            releases: 7,
            records_examined: 8,
            in_flight: 9,
            gossip_deltas_in: 12,
            gossip_deltas_out: 13,
            route_hits: 14,
            route_misses: 15,
            peer_redials: 16,
            shard_contention: 17,
            frames_batched: 18,
            writes_coalesced: 19,
        };
        assert_eq!(
            StatsSnapshot::from_wire_bytes(&s.to_wire_bytes().unwrap()).unwrap(),
            s
        );
    }
}
