//! Every rule proven live against a seeded fixture tree: one violation
//! per rule at a known file:line, one allowlisted site that must be
//! suppressed, one stale allow that must be reported.  A rule that
//! silently stops firing fails here, not in production review.

use std::path::{Path, PathBuf};

use actyp_lint::rules::{parse_hierarchy, FramesSpec, SiteKind, SiteSpec, StatsSpec};
use actyp_lint::{lint_workspace, Finding, LintConfig, LintReport};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree")
}

fn fixture_config() -> LintConfig {
    let root = fixture_root();
    let doc = std::fs::read_to_string(root.join("docs/CONCURRENCY.md"))
        .expect("fixture hierarchy doc exists");
    LintConfig {
        hierarchy: parse_hierarchy(&doc),
        reactor_entry_points: vec!["io_thread_main".to_string()],
        frames: Some(FramesSpec {
            file: PathBuf::from("src/frames.rs"),
            enums: vec!["ClientFrame".to_string()],
            protocol_doc: PathBuf::from("docs/PROTOCOL.md"),
        }),
        stats: Some(StatsSpec {
            struct_file: PathBuf::from("src/stats.rs"),
            struct_name: "StatsSnapshot".to_string(),
            sites: vec![
                SiteSpec {
                    file: PathBuf::from("src/stats.rs"),
                    kind: SiteKind::ImplFor("WireEncode".to_string()),
                    label: "wire encode".to_string(),
                },
                SiteSpec {
                    file: PathBuf::from("src/stats.rs"),
                    kind: SiteKind::FnBody("merge_snapshot".to_string()),
                    label: "merge".to_string(),
                },
            ],
        }),
        skip_dirs: Vec::new(),
        root,
    }
}

fn run() -> LintReport {
    lint_workspace(&fixture_config()).expect("fixture tree lints")
}

fn find<'r>(report: &'r LintReport, rule: &str) -> Vec<&'r Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn fixture_hierarchy_parses() {
    let config = fixture_config();
    assert_eq!(
        config.hierarchy,
        vec!["alpha".to_string(), "beta".to_string()]
    );
}

#[test]
fn lock_order_fires_once_at_the_seeded_span() {
    let report = run();
    let hits = find(&report, "lock-order");
    assert_eq!(hits.len(), 1, "exactly the seeded violation: {hits:?}");
    assert_eq!(hits[0].file, PathBuf::from("src/locks.rs"));
    assert_eq!(hits[0].line, 13);
    assert!(hits[0].message.contains("alpha"), "{}", hits[0].message);
    assert!(hits[0].message.contains("beta"), "{}", hits[0].message);
}

#[test]
fn lock_across_blocking_fires_once_at_the_seeded_span() {
    let report = run();
    let hits = find(&report, "lock-across-blocking");
    assert_eq!(hits.len(), 1, "exactly the seeded violation: {hits:?}");
    assert_eq!(hits[0].file, PathBuf::from("src/locks.rs"));
    assert_eq!(hits[0].line, 20);
}

#[test]
fn reactor_blocking_fires_once_through_the_call_graph() {
    let report = run();
    let hits = find(&report, "reactor-blocking");
    assert_eq!(hits.len(), 1, "exactly the seeded violation: {hits:?}");
    assert_eq!(hits[0].file, PathBuf::from("src/reactor.rs"));
    assert_eq!(hits[0].line, 14);
    assert!(
        hits[0].message.contains("io_thread_main -> drain_lane"),
        "the path must name the chain: {}",
        hits[0].message
    );
}

#[test]
fn frame_tags_fires_once_on_the_mismatched_decode_arm() {
    let report = run();
    let hits = find(&report, "frame-tags");
    assert_eq!(hits.len(), 1, "exactly the seeded violation: {hits:?}");
    assert_eq!(hits[0].file, PathBuf::from("src/frames.rs"));
    assert_eq!(hits[0].line, 22);
    assert!(
        hits[0].message.contains("encodes tag 1 but decodes tag 2"),
        "{}",
        hits[0].message
    );
}

#[test]
fn stats_fields_fires_once_on_the_missing_field() {
    let report = run();
    let hits = find(&report, "stats-fields");
    assert_eq!(hits.len(), 1, "exactly the seeded violation: {hits:?}");
    assert_eq!(hits[0].file, PathBuf::from("src/stats.rs"));
    assert_eq!(hits[0].line, 6);
    assert!(hits[0].message.contains("completed"), "{}", hits[0].message);
}

#[test]
fn allowlist_suppresses_exactly_one_finding_and_stale_allows_surface() {
    let report = run();
    assert_eq!(report.suppressed, 1, "the annotated send and nothing else");
    assert_eq!(
        report.unused_allows,
        vec![(PathBuf::from("src/locks.rs"), 32, "lock-order".to_string())],
        "the stale allow must be reported for cleanup"
    );
}

#[test]
fn the_fixture_tree_has_no_extra_findings() {
    let report = run();
    assert_eq!(
        report.findings.len(),
        5,
        "one finding per rule, nothing else: {:#?}",
        report.findings
    );
}
