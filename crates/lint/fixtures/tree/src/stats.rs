//! Seeded stats-fields violation: `completed` never reaches the merge
//! site, so federation-wide stats would show it as zero forever.

pub struct StatsSnapshot {
    pub submitted: u64,
    pub completed: u64, // seeded stats-fields violation anchors here
}

impl WireEncode for StatsSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        push_u64(out, self.submitted);
        push_u64(out, self.completed);
    }
}

fn merge_snapshot(snapshot: &StatsSnapshot) -> u64 {
    snapshot.submitted
}
