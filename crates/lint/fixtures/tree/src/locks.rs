//! Seeded guard-rule violations.  This file is lexed, never compiled:
//! the idents only need the shapes the rules look for.

fn well_ordered() {
    let a = alpha.lock();
    let b = beta.lock();
    drop(b);
    drop(a);
}

fn inverted() {
    let b = beta.lock();
    let a = alpha.lock(); // seeded lock-order violation (this line)
    drop(a);
    drop(b);
}

fn blocks_under_guard() {
    let g = alpha.lock();
    lane.send(1); // seeded lock-across-blocking violation (this line)
    drop(g);
}

fn allowed_block() {
    let g = alpha.lock();
    // lint-allow(lock-across-blocking): fixture proves suppression
    lane.send(2);
    drop(g);
}

fn stale_allow() {
    // lint-allow(lock-order): nothing below violates; must be reported unused
    let a = alpha.lock();
    drop(a);
}

fn released_before_blocking() {
    let g = alpha.lock();
    drop(g);
    lane.send(3);
}

fn plain_if_condition_is_a_terminating_scope() {
    if beta.lock().is_empty() {
        lane.send(4); // guard dropped at the `{` — no finding here
    }
}
