//! Seeded reactor-blocking violation: the blocking call is one hop away
//! from the entry point, proving the call-graph walk follows edges.

fn io_thread_main() {
    poll_sessions();
    drain_lane();
}

fn poll_sessions() {
    sessions.try_recv();
}

fn drain_lane() {
    let job = lane.recv(); // seeded reactor-blocking violation (this line)
    run(job);
}

fn off_reactor_worker() {
    let job = lane.recv(); // not reachable from the entry: no finding
    run(job);
}
