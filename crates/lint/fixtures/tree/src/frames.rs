//! Seeded frame-tags violation: `Query` encodes tag 1 but decodes tag 2.

pub enum ClientFrame {
    Hello,
    Query,
}

fn encode(frame: &ClientFrame, out: &mut Vec<u8>) {
    match frame {
        ClientFrame::Hello => {
            out.push(0);
        }
        ClientFrame::Query => {
            out.push(1);
        }
    }
}

fn decode(tag: u8) -> ClientFrame {
    match tag {
        0 => ClientFrame::Hello,
        2 => ClientFrame::Query, // seeded frame-tags violation (this line)
        _ => unreachable!(),
    }
}
