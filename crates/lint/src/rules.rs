//! The rule engine: five named, allowlist-able rules over lexed token
//! streams.  `docs/CONCURRENCY.md` documents each rule and the
//! historical bug behind it; the lock hierarchy lives there too, in a
//! ```` ```lock-hierarchy ```` fence this module parses.
//!
//! | rule | checks |
//! |---|---|
//! | `lock-order` | nested guard acquisitions against the declared hierarchy |
//! | `lock-across-blocking` | no blocking call while holding a guard |
//! | `reactor-blocking` | no blocking lane op reachable from reactor I/O entry points |
//! | `frame-tags` | ClientFrame/ServerFrame tag uniqueness + encode/decode/docs exhaustiveness |
//! | `stats-fields` | every StatsSnapshot field present at encode/decode/merge/display sites |
//!
//! A finding is suppressed by `// lint-allow(<rule>): <reason>` on the
//! same line or the line above.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// The rules this linter knows.  `lint-allow` annotations naming
/// anything else are ignored outright (doc prose mentioning the syntax
/// must not become load-bearing annotations); a typo'd rule name simply
/// fails to suppress, which `--deny` surfaces via the finding itself.
pub const RULES: &[&str] = &[
    "lock-order",
    "lock-across-blocking",
    "reactor-blocking",
    "frame-tags",
    "stats-fields",
];

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Where a StatsSnapshot field must appear.
#[derive(Debug, Clone)]
pub enum SiteKind {
    /// The body of `fn <name>`.
    FnBody(String),
    /// The body of `impl <trait> for <struct>`.
    ImplFor(String),
}

/// One required usage site for the stats-fields rule.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    pub file: PathBuf,
    pub kind: SiteKind,
    pub label: String,
}

/// Configuration for the frame-tags rule.
#[derive(Debug, Clone)]
pub struct FramesSpec {
    pub file: PathBuf,
    pub enums: Vec<String>,
    pub protocol_doc: PathBuf,
}

/// Configuration for the stats-fields rule.
#[derive(Debug, Clone)]
pub struct StatsSpec {
    pub struct_file: PathBuf,
    pub struct_name: String,
    pub sites: Vec<SiteSpec>,
}

/// Everything a lint run needs.  Paths are relative to `root`.
#[derive(Debug, Clone)]
pub struct LintConfig {
    pub root: PathBuf,
    /// Lock names, outermost first.  Empty disables lock-order ranking.
    pub hierarchy: Vec<String>,
    /// Function names treated as reactor I/O-thread entry points.
    pub reactor_entry_points: Vec<String>,
    pub frames: Option<FramesSpec>,
    pub stats: Option<StatsSpec>,
    /// Directory names skipped while walking (besides hidden dirs).
    pub skip_dirs: Vec<String>,
}

impl LintConfig {
    /// The workspace configuration: hierarchy from `docs/CONCURRENCY.md`,
    /// the real protocol and stats sites.
    pub fn for_workspace(root: &Path) -> std::io::Result<Self> {
        let doc = std::fs::read_to_string(root.join("docs/CONCURRENCY.md"))?;
        let hierarchy = parse_hierarchy(&doc);
        Ok(LintConfig {
            root: root.to_path_buf(),
            hierarchy,
            reactor_entry_points: vec!["io_thread_main".to_string()],
            frames: Some(FramesSpec {
                file: PathBuf::from("crates/proto/src/frames.rs"),
                enums: vec!["ClientFrame".to_string(), "ServerFrame".to_string()],
                protocol_doc: PathBuf::from("docs/PROTOCOL.md"),
            }),
            stats: Some(StatsSpec {
                struct_file: PathBuf::from("crates/proto/src/types.rs"),
                struct_name: "StatsSnapshot".to_string(),
                sites: vec![
                    SiteSpec {
                        file: PathBuf::from("crates/proto/src/types.rs"),
                        kind: SiteKind::ImplFor("WireEncode".to_string()),
                        label: "wire encode (impl WireEncode for StatsSnapshot)".to_string(),
                    },
                    SiteSpec {
                        file: PathBuf::from("crates/proto/src/types.rs"),
                        kind: SiteKind::ImplFor("WireDecode".to_string()),
                        label: "wire decode (impl WireDecode for StatsSnapshot)".to_string(),
                    },
                    SiteSpec {
                        file: PathBuf::from("crates/pipeline/src/api.rs"),
                        kind: SiteKind::FnBody("snapshot_from_engine".to_string()),
                        label: "engine merge (snapshot_from_engine)".to_string(),
                    },
                    SiteSpec {
                        file: PathBuf::from("crates/ypd/src/main.rs"),
                        kind: SiteKind::FnBody("spawn_stats_reporter".to_string()),
                        label: "operator display (spawn_stats_reporter)".to_string(),
                    },
                ],
            }),
            skip_dirs: vec![
                "target".to_string(),
                "fixtures".to_string(),
                ".git".to_string(),
            ],
        })
    }
}

/// Parses the ```` ```lock-hierarchy ```` fence: one lock name per line,
/// outermost first; `#` comments and blank lines ignored.
pub fn parse_hierarchy(doc: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut inside = false;
    for line in doc.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("```") {
            if inside {
                break;
            }
            inside = trimmed == "```lock-hierarchy";
            continue;
        }
        if !inside || trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let name = trimmed.split_whitespace().next().unwrap_or("");
        if !name.is_empty() {
            names.push(name.to_string());
        }
    }
    names
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint-allow` annotations.
    pub suppressed: usize,
    /// Annotations that suppressed nothing (kept visible so stale
    /// allows get cleaned up).
    pub unused_allows: Vec<(PathBuf, usize, String)>,
    pub files_scanned: usize,
}

/// Runs every rule over the workspace described by `config`.
pub fn lint_workspace(config: &LintConfig) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(&config.root, &config.root, &config.skip_dirs, &mut files)?;
    files.sort();

    let mut lexed_files = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(config.root.join(rel))?;
        lexed_files.push((rel.clone(), lex(&source)));
    }

    let mut findings = Vec::new();
    let ranks: HashMap<&str, usize> = config
        .hierarchy
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    for (rel, lexed) in &lexed_files {
        check_guards(rel, lexed, &ranks, &mut findings);
    }
    check_reactor(&lexed_files, &config.reactor_entry_points, &mut findings);
    if let Some(spec) = &config.frames {
        check_frames(config, spec, &lexed_files, &mut findings)?;
    }
    if let Some(spec) = &config.stats {
        check_stats(spec, &lexed_files, &mut findings);
    }

    // Apply allowlist: an annotation licenses findings of its rule on
    // the annotation's own line or the next line, in the same file.
    let mut suppressed = 0;
    let mut used: HashSet<(PathBuf, usize)> = HashSet::new();
    let mut kept = Vec::new();
    for finding in findings {
        let allow = lexed_files
            .iter()
            .find(|(rel, _)| *rel == finding.file)
            .and_then(|(_, lexed)| {
                lexed.allows.iter().find(|a| {
                    RULES.contains(&a.rule.as_str())
                        && a.rule == finding.rule
                        && (a.line == finding.line || a.line + 1 == finding.line)
                })
            });
        match allow {
            Some(a) => {
                suppressed += 1;
                used.insert((finding.file.clone(), a.line));
            }
            None => kept.push(finding),
        }
    }
    let mut unused_allows = Vec::new();
    for (rel, lexed) in &lexed_files {
        for a in &lexed.allows {
            if RULES.contains(&a.rule.as_str()) && !used.contains(&(rel.clone(), a.line)) {
                unused_allows.push((rel.clone(), a.line, a.rule.clone()));
            }
        }
    }
    kept.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    Ok(LintReport {
        findings: kept,
        suppressed,
        unused_allows,
        files_scanned: lexed_files.len(),
    })
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    skip: &[String],
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if name.starts_with('.') || skip.contains(&name) {
                continue;
            }
            collect_rs_files(root, &path, skip, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Rules 1+2: lock-order and lock-across-blocking (one guard-tracking pass)
// ---------------------------------------------------------------------------

/// Methods that block while the caller may hold a guard.  `recv` and
/// `join` only in their zero-argument form (disambiguates from
/// `io::Read::read`-style and `slice::join` calls).
const BLOCKING_METHODS_ANY_ARGS: &[&str] = &["send", "recv_timeout"];
const BLOCKING_METHODS_ZERO_ARGS: &[&str] = &["recv", "join"];
/// Free functions that block (frame I/O over sockets).
const BLOCKING_FREE_FNS: &[&str] = &["write_frame", "read_frame"];
/// Condvar waits: blocking, but exempt when their first argument is a
/// tracked guard binding — the wait *releases* that guard.
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout"];

#[derive(Debug)]
struct Guard {
    /// Receiver name the guard was taken from (`pending` in
    /// `self.pending.lock()`), used for hierarchy ranking.
    name: String,
    rank: Option<usize>,
    /// Let-binding, when the guard is nameable (and `drop`-able).
    binding: Option<String>,
    /// Guard of a temporary: expires at the statement's `;`.
    transient: bool,
    depth: usize,
    line: usize,
}

fn is_acquisition(tokens: &[Token], i: usize) -> Option<&'static str> {
    if tokens[i].text != "." {
        return None;
    }
    let method = match tokens.get(i + 1) {
        Some(t) if t.kind == TokenKind::Ident => t.text.as_str(),
        _ => return None,
    };
    let method = match method {
        "lock" => "lock",
        "read" => "read",
        "write" => "write",
        _ => return None,
    };
    if tokens.get(i + 2).map(|t| t.text.as_str()) == Some("(")
        && tokens.get(i + 3).map(|t| t.text.as_str()) == Some(")")
    {
        Some(method)
    } else {
        None
    }
}

fn check_guards(
    file: &Path,
    lexed: &Lexed,
    ranks: &HashMap<&str, usize>,
    findings: &mut Vec<Finding>,
) {
    let tokens = &lexed.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: usize = 0;
    // For each open paren: the identifier called, if any.
    let mut paren_stack: Vec<Option<String>> = Vec::new();
    // `let <ident> =` binding currently in flight (cleared at `;`).
    let mut pending_let: Option<String> = None;
    // Brace depth of an in-flight plain `if`/`while` condition: such a
    // condition is a terminating scope in Rust, so guards of temporaries
    // born in it drop at the body's `{` (unlike `if let`/`match`
    // scrutinees, whose temporaries live through the whole expression).
    let mut plain_cond_at: Option<usize> = None;

    let mut i = 0;
    while i < tokens.len() {
        let text = tokens[i].text.as_str();
        match text {
            "{" => {
                if plain_cond_at == Some(depth) {
                    guards.retain(|g| !(g.transient && g.depth == depth));
                    plain_cond_at = None;
                }
                depth += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                // Closing back to a transient guard's depth ends the
                // statement that spawned it (`if let`/`match` bodies).
                guards.retain(|g| g.depth <= depth && !(g.transient && g.depth == depth));
            }
            "(" => {
                let callee = match i.checked_sub(1).map(|j| &tokens[j]) {
                    Some(t) if t.kind == TokenKind::Ident => Some(t.text.clone()),
                    _ => None,
                };
                paren_stack.push(callee);
            }
            ")" => {
                paren_stack.pop();
            }
            ";" => {
                pending_let = None;
                plain_cond_at = None;
                guards.retain(|g| !(g.transient && g.depth == depth));
            }
            "if" | "while"
                if tokens[i].kind == TokenKind::Ident
                    && tokens.get(i + 1).map(|t| t.text.as_str()) != Some("let") =>
            {
                plain_cond_at = Some(depth);
            }
            "let" if tokens[i].kind == TokenKind::Ident => {
                // `let [mut] name =` — anything fancier is treated as a
                // transient-guard statement.
                let mut j = i + 1;
                if tokens.get(j).map(|t| t.text.as_str()) == Some("mut") {
                    j += 1;
                }
                pending_let = match (tokens.get(j), tokens.get(j + 1)) {
                    (Some(name), Some(eq)) if name.kind == TokenKind::Ident && eq.text == "=" => {
                        Some(name.text.clone())
                    }
                    _ => None,
                };
            }
            "drop" if tokens[i].kind == TokenKind::Ident => {
                if let (Some(open), Some(arg), Some(close)) =
                    (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3))
                {
                    if open.text == "(" && close.text == ")" && arg.kind == TokenKind::Ident {
                        if let Some(pos) = guards
                            .iter()
                            .rposition(|g| g.binding.as_deref() == Some(arg.text.as_str()))
                        {
                            guards.remove(pos);
                        }
                    }
                }
            }
            _ => {}
        }

        if let Some(method) = is_acquisition(tokens, i) {
            let line = tokens[i + 1].line;
            let receiver = match i.checked_sub(1).map(|j| &tokens[j]) {
                Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
                _ => "?".to_string(),
            };
            let rank = ranks.get(receiver.as_str()).copied();

            // lock-order: acquiring an outer-ranked lock while holding an
            // inner-ranked one inverts the declared hierarchy.
            if let Some(new_rank) = rank {
                for held in &guards {
                    if let Some(held_rank) = held.rank {
                        if new_rank < held_rank {
                            findings.push(Finding {
                                rule: "lock-order",
                                file: file.to_path_buf(),
                                line,
                                message: format!(
                                    "acquires '{receiver}' (hierarchy rank {new_rank}) while \
                                     holding '{}' (rank {held_rank}, taken line {}); the declared \
                                     order requires '{receiver}' first",
                                    held.name, held.line
                                ),
                            });
                        }
                    }
                }
            }

            // lock-across-blocking, inverted form: the guard is born
            // inside the argument list of a blocking call
            // (`write_frame(&mut *writer.lock(), ..)`), so the lock is
            // held for the whole blocking call.
            if let Some(callee) = paren_stack.iter().flatten().find(|c| {
                BLOCKING_FREE_FNS.contains(&c.as_str())
                    || BLOCKING_METHODS_ANY_ARGS.contains(&c.as_str())
            }) {
                findings.push(Finding {
                    rule: "lock-across-blocking",
                    file: file.to_path_buf(),
                    line,
                    message: format!(
                        "guard from '{receiver}.{method}()' lives inside the argument list of \
                         blocking call '{callee}' — the lock is held across the entire call"
                    ),
                });
            }

            // Register the guard.  Scoped when let-bound to a plain name
            // with nothing chained after the call; transient otherwise.
            let after = tokens.get(i + 4).map(|t| t.text.as_str());
            let chained = after == Some(".");
            let deref_before = pending_let.is_some()
                && i.checked_sub(2)
                    .map(|j| tokens[j].text == "*")
                    .unwrap_or(false);
            let binding = if chained || deref_before {
                None
            } else {
                pending_let.clone()
            };
            guards.push(Guard {
                name: receiver,
                rank,
                transient: binding.is_none(),
                binding,
                depth,
                line,
            });
            i += 4; // past `.method()`
            continue;
        }

        // lock-across-blocking, direct form: a blocking call while any
        // guard is held.
        if !guards.is_empty() && text == "." {
            if let Some(callee) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                let name = callee.text.as_str();
                let open = tokens.get(i + 2).map(|t| t.text.as_str()) == Some("(");
                let zero_args = open && tokens.get(i + 3).map(|t| t.text.as_str()) == Some(")");
                let blocking = open
                    && (BLOCKING_METHODS_ANY_ARGS.contains(&name)
                        || (zero_args && BLOCKING_METHODS_ZERO_ARGS.contains(&name)));
                let is_wait = open && CONDVAR_WAITS.contains(&name);
                let wait_on_guard = is_wait
                    && tokens
                        .get(i + 3)
                        .map(|t| {
                            t.kind == TokenKind::Ident
                                && guards
                                    .iter()
                                    .any(|g| g.binding.as_deref() == Some(t.text.as_str()))
                        })
                        .unwrap_or(false);
                if blocking || (is_wait && !wait_on_guard) {
                    let held = guards.last().expect("guards non-empty");
                    findings.push(Finding {
                        rule: "lock-across-blocking",
                        file: file.to_path_buf(),
                        line: callee.line,
                        message: format!(
                            "blocking call '.{name}(..)' while holding guard on '{}' \
                             (taken line {})",
                            held.name, held.line
                        ),
                    });
                }
            }
        }
        if !guards.is_empty()
            && tokens[i].kind == TokenKind::Ident
            && BLOCKING_FREE_FNS.contains(&text)
            && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && i.checked_sub(1)
                .map(|j| tokens[j].text != "." && tokens[j].text != "fn")
                .unwrap_or(true)
        {
            let held = guards.last().expect("guards non-empty");
            findings.push(Finding {
                rule: "lock-across-blocking",
                file: file.to_path_buf(),
                line: tokens[i].line,
                message: format!(
                    "blocking call '{text}(..)' while holding guard on '{}' (taken line {})",
                    held.name, held.line
                ),
            });
        }

        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule 3: reactor-blocking (name-based call-graph reachability)
// ---------------------------------------------------------------------------

/// Lane/thread operations that park the calling thread — forbidden on
/// reactor I/O threads, whose stall freezes every session on that
/// thread.  (`try_recv` and friends are fine.)
const REACTOR_BLOCKING_ZERO_ARGS: &[&str] = &["recv", "join"];
const REACTOR_BLOCKING_ANY_ARGS: &[&str] = &["recv_timeout", "recv_deadline"];

/// Calls whose argument (a closure) runs on a *different* thread: the
/// worker-lane queue and thread spawns.  Their argument lists are
/// skipped entirely — blocking inside them is the lane's business, not
/// the reactor thread's.
const DISPATCH_CALLS: &[&str] = &["spawn", "spawn_job", "execute", "execute_batch"];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "move", "fn", "pub", "use", "mod", "struct", "enum", "trait", "impl", "type", "where",
    "unsafe", "dyn", "as", "in", "crate", "super", "self", "Self", "true", "false", "Some", "None",
    "Ok", "Err", "Box", "Vec", "String",
];

#[derive(Debug, Default)]
struct FnInfo {
    calls: BTreeSet<String>,
    blocking: Vec<(String, usize)>,
}

/// Function identity: defining file + name.  Name-only resolution
/// merges every `fn drain` in the workspace into one node, which
/// manufactures call chains no thread ever runs; a call is resolved to
/// the same file first, then to a globally unique definition, and
/// dropped as ambiguous otherwise.
type FnId = (PathBuf, String);

fn check_reactor(files: &[(PathBuf, Lexed)], entry_points: &[String], findings: &mut Vec<Finding>) {
    let mut graph: HashMap<FnId, FnInfo> = HashMap::new();
    let mut files_defining: HashMap<String, BTreeSet<PathBuf>> = HashMap::new();

    for (rel, lexed) in files {
        let tokens = &lexed.tokens;
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].kind == TokenKind::Ident && tokens[i].text == "fn" {
                if let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                    let name = name_tok.text.clone();
                    // Find the body's opening brace (signatures carry no
                    // braces in this codebase) and walk it.
                    let mut j = i + 2;
                    while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                        j += 1;
                    }
                    if j < tokens.len() && tokens[j].text == "{" {
                        files_defining
                            .entry(name.clone())
                            .or_default()
                            .insert(rel.clone());
                        let info = graph.entry((rel.clone(), name)).or_default();
                        let mut depth = 1;
                        let mut k = j + 1;
                        while k < tokens.len() && depth > 0 {
                            match tokens[k].text.as_str() {
                                "{" => depth += 1,
                                "}" => depth -= 1,
                                _ => {
                                    if let Some(skip_to) = dispatch_call_end(tokens, k) {
                                        k = skip_to;
                                        continue;
                                    }
                                    record_call(tokens, k, info);
                                }
                            }
                            k += 1;
                        }
                        i = j;
                    }
                }
            }
            i += 1;
        }
    }

    // BFS from the entry points over workspace-defined functions.
    let mut queue: VecDeque<FnId> = VecDeque::new();
    let mut path_to: BTreeMap<FnId, Vec<String>> = BTreeMap::new();
    for entry in entry_points {
        for file in files_defining.get(entry).into_iter().flatten() {
            let id = (file.clone(), entry.clone());
            path_to.insert(id.clone(), vec![entry.clone()]);
            queue.push_back(id);
        }
    }
    let mut reported: HashSet<(PathBuf, usize)> = HashSet::new();
    while let Some(id) = queue.pop_front() {
        let path = path_to[&id].clone();
        let Some(info) = graph.get(&id) else {
            continue;
        };
        for (op, line) in &info.blocking {
            if reported.insert((id.0.clone(), *line)) {
                findings.push(Finding {
                    rule: "reactor-blocking",
                    file: id.0.clone(),
                    line: *line,
                    message: format!(
                        "blocking '{op}' reachable from reactor I/O entry via {}",
                        path.join(" -> ")
                    ),
                });
            }
        }
        for callee in &info.calls {
            let Some(defined_in) = files_defining.get(callee) else {
                continue;
            };
            let target = if defined_in.contains(&id.0) {
                Some(id.0.clone())
            } else if defined_in.len() == 1 {
                defined_in.iter().next().cloned()
            } else {
                None // ambiguous cross-file name: don't invent an edge
            };
            if let Some(file) = target {
                let next_id = (file, callee.clone());
                if !path_to.contains_key(&next_id) {
                    let mut next = path.clone();
                    next.push(callee.clone());
                    path_to.insert(next_id.clone(), next);
                    queue.push_back(next_id);
                }
            }
        }
    }
}

/// If token `k` opens a dispatch call (`spawn(..)` / `.execute(..)`),
/// returns the index of its closing paren so the caller skips the whole
/// argument list — that closure runs on another thread.
fn dispatch_call_end(tokens: &[Token], k: usize) -> Option<usize> {
    if tokens[k].kind != TokenKind::Ident || !DISPATCH_CALLS.contains(&tokens[k].text.as_str()) {
        return None;
    }
    if tokens.get(k + 1).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut depth = 1usize;
    let mut j = k + 2;
    while j < tokens.len() && depth > 0 {
        match tokens[j].text.as_str() {
            "(" => depth += 1,
            ")" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    Some(j)
}

fn record_call(tokens: &[Token], k: usize, info: &mut FnInfo) {
    if tokens[k].kind != TokenKind::Ident {
        return;
    }
    let name = tokens[k].text.as_str();
    let called = tokens.get(k + 1).map(|t| t.text.as_str()) == Some("(");
    if !called {
        return;
    }
    let prev = k.checked_sub(1).map(|j| tokens[j].text.as_str());
    let is_method = prev == Some(".");
    if prev == Some("fn") || KEYWORDS.contains(&name) {
        return;
    }
    let zero_args = tokens.get(k + 2).map(|t| t.text.as_str()) == Some(")");
    // A method call with arguments is almost always a std/library method
    // (`stream.shutdown(Both)`, `vec.push(x)`); following it by bare
    // name fabricates edges to unrelated workspace functions.  Free
    // functions and zero-arg methods resolve well enough to follow.
    if !is_method || zero_args {
        info.calls.insert(name.to_string());
    }
    if is_method {
        let blocking = (zero_args && REACTOR_BLOCKING_ZERO_ARGS.contains(&name))
            || REACTOR_BLOCKING_ANY_ARGS.contains(&name);
        if blocking {
            info.blocking.push((format!(".{name}()"), tokens[k].line));
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: frame-tags
// ---------------------------------------------------------------------------

fn parse_int(text: &str) -> Option<u64> {
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    let cleaned = cleaned
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_string();
    // Suffix trimming may eat hex digits; retry with the prefix intact.
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        return u64::from_str_radix(&digits, 16).ok();
    }
    cleaned.parse().ok()
}

/// Variant names (with lines) of `enum <name>` in the token stream.
fn enum_variants(tokens: &[Token], name: &str) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "enum"
            && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(name)
            && tokens.get(i + 2).map(|t| t.text.as_str()) == Some("{")
        {
            let mut depth = 1;
            let mut j = i + 3;
            let mut prev = "{".to_string();
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    _ => {}
                }
                if depth == 1
                    && t.kind == TokenKind::Ident
                    && (prev == "{" || prev == "," || prev == "]")
                    && t.text.chars().next().is_some_and(|c| c.is_uppercase())
                {
                    variants.push((t.text.clone(), t.line));
                }
                prev = t.text.clone();
                j += 1;
            }
            break;
        }
        i += 1;
    }
    variants
}

fn check_frames(
    config: &LintConfig,
    spec: &FramesSpec,
    files: &[(PathBuf, Lexed)],
    findings: &mut Vec<Finding>,
) -> std::io::Result<()> {
    let Some((_, lexed)) = files.iter().find(|(rel, _)| *rel == spec.file) else {
        return Ok(());
    };
    let tokens = &lexed.tokens;
    let doc = std::fs::read_to_string(config.root.join(&spec.protocol_doc)).unwrap_or_default();
    let doc_tags = doc_name_tags(&doc);

    for enum_name in &spec.enums {
        let variants = enum_variants(tokens, enum_name);
        if variants.is_empty() {
            findings.push(Finding {
                rule: "frame-tags",
                file: spec.file.clone(),
                line: 1,
                message: format!("enum '{enum_name}' not found"),
            });
            continue;
        }
        let variant_lines: HashMap<&str, usize> =
            variants.iter().map(|(n, l)| (n.as_str(), *l)).collect();

        // Scan for encode arms (`Enum::Variant .. => { out.push(N) }`)
        // and decode arms (`N => Enum::Variant`).
        let mut encode: BTreeMap<String, (u64, usize)> = BTreeMap::new();
        let mut decode: BTreeMap<String, (u64, usize)> = BTreeMap::new();
        let mut i = 0;
        while i + 3 < tokens.len() {
            let here = tokens[i].text == *enum_name
                && tokens[i + 1].text == ":"
                && tokens[i + 2].text == ":"
                && tokens[i + 3].kind == TokenKind::Ident
                && tokens[i + 3]
                    .text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_uppercase());
            if !here {
                i += 1;
                continue;
            }
            let variant = tokens[i + 3].text.clone();
            let line = tokens[i + 3].line;
            // Decode arm: immediately preceded by `<number> =>`.
            let decode_arm = i >= 3
                && tokens[i - 1].text == ">"
                && tokens[i - 2].text == "="
                && tokens[i - 3].kind == TokenKind::Number;
            if decode_arm {
                if let Some(tag) = parse_int(&tokens[i - 3].text) {
                    if decode.contains_key(&variant) {
                        findings.push(Finding {
                            rule: "frame-tags",
                            file: spec.file.clone(),
                            line,
                            message: format!("{enum_name}::{variant} has more than one decode arm"),
                        });
                    } else {
                        decode.insert(variant.clone(), (tag, line));
                    }
                }
                i += 4;
                continue;
            }
            // Encode arm: `out.push(N)` before the next `Enum::` mention.
            let mut j = i + 4;
            while j + 4 < tokens.len() {
                if spec.enums.iter().any(|e| tokens[j].text == *e)
                    && tokens[j + 1].text == ":"
                    && tokens[j + 2].text == ":"
                {
                    break;
                }
                if tokens[j].text == "out"
                    && tokens[j + 1].text == "."
                    && tokens[j + 2].text == "push"
                    && tokens[j + 3].text == "("
                    && tokens[j + 4].kind == TokenKind::Number
                {
                    if let Some(tag) = parse_int(&tokens[j + 4].text) {
                        encode.entry(variant.clone()).or_insert((tag, line));
                    }
                    break;
                }
                j += 1;
            }
            i += 4;
        }

        // Tag uniqueness on the encode side.
        let mut by_tag: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
        for (variant, (tag, _)) in &encode {
            by_tag.entry(*tag).or_default().push(variant);
        }
        for (tag, users) in &by_tag {
            if users.len() > 1 {
                findings.push(Finding {
                    rule: "frame-tags",
                    file: spec.file.clone(),
                    line: *variant_lines.get(users[1]).unwrap_or(&1),
                    message: format!(
                        "{enum_name} tag {tag} encoded by more than one variant: {}",
                        users.join(", ")
                    ),
                });
            }
        }

        for (variant, line) in &variants {
            let enc = encode.get(variant);
            let dec = decode.get(variant);
            match (enc, dec) {
                (None, _) => findings.push(Finding {
                    rule: "frame-tags",
                    file: spec.file.clone(),
                    line: *line,
                    message: format!("{enum_name}::{variant} has no encode arm pushing a tag"),
                }),
                (_, None) => findings.push(Finding {
                    rule: "frame-tags",
                    file: spec.file.clone(),
                    line: *line,
                    message: format!("{enum_name}::{variant} has no decode arm"),
                }),
                (Some((etag, _)), Some((dtag, dline))) if etag != dtag => {
                    findings.push(Finding {
                        rule: "frame-tags",
                        file: spec.file.clone(),
                        line: *dline,
                        message: format!(
                            "{enum_name}::{variant} encodes tag {etag} but decodes tag {dtag}"
                        ),
                    });
                }
                _ => {}
            }
            if let Some((etag, _)) = enc {
                match doc_tags.get(variant.as_str()) {
                    Some(tags) if tags.contains(etag) => {}
                    Some(tags) => findings.push(Finding {
                        rule: "frame-tags",
                        file: spec.protocol_doc.clone(),
                        line: 1,
                        message: format!(
                            "{enum_name}::{variant} is tag {etag} in code but {tags:?} in {}",
                            spec.protocol_doc.display()
                        ),
                    }),
                    None => findings.push(Finding {
                        rule: "frame-tags",
                        file: spec.protocol_doc.clone(),
                        line: 1,
                        message: format!(
                            "{enum_name}::{variant} (tag {etag}) missing from the frame table in {}",
                            spec.protocol_doc.display()
                        ),
                    }),
                }
            }
        }
        for variant in decode.keys() {
            if !variant_lines.contains_key(variant.as_str()) {
                findings.push(Finding {
                    rule: "frame-tags",
                    file: spec.file.clone(),
                    line: decode[variant].1,
                    message: format!("decode arm names unknown variant {enum_name}::{variant}"),
                });
            }
        }
    }
    Ok(())
}

/// `` `Name` (N) `` occurrences in the protocol doc: name → tag set.
fn doc_name_tags(doc: &str) -> HashMap<String, BTreeSet<u64>> {
    let mut map: HashMap<String, BTreeSet<u64>> = HashMap::new();
    let bytes = doc.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'`' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let Some(end_rel) = doc[start..].find('`') else {
            break;
        };
        let name = &doc[start..start + end_rel];
        let mut j = start + end_rel + 1;
        while j < bytes.len() && (bytes[j] == b' ') {
            j += 1;
        }
        if bytes.get(j) == Some(&b'(') {
            let digits_start = j + 1;
            let mut k = digits_start;
            while k < bytes.len() && bytes[k].is_ascii_digit() {
                k += 1;
            }
            if k > digits_start && bytes.get(k) == Some(&b')') {
                if let Ok(tag) = doc[digits_start..k].parse::<u64>() {
                    if name.chars().all(|c| c.is_ascii_alphanumeric()) && !name.is_empty() {
                        map.entry(name.to_string()).or_default().insert(tag);
                    }
                }
            }
        }
        i = start + end_rel + 1;
    }
    map
}

// ---------------------------------------------------------------------------
// Rule 5: stats-fields
// ---------------------------------------------------------------------------

fn struct_fields(tokens: &[Token], name: &str) -> Vec<(String, usize)> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "struct"
            && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(name)
            && tokens.get(i + 2).map(|t| t.text.as_str()) == Some("{")
        {
            let mut depth = 1;
            let mut j = i + 3;
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "{" | "(" | "[" | "<" => depth += 1,
                    "}" | ")" | "]" | ">" => depth -= 1,
                    _ => {
                        if depth == 1
                            && tokens[j].kind == TokenKind::Ident
                            && tokens[j].text != "pub"
                            && tokens.get(j + 1).map(|t| t.text.as_str()) == Some(":")
                            && tokens.get(j + 2).map(|t| t.text.as_str()) != Some(":")
                        {
                            fields.push((tokens[j].text.clone(), tokens[j].line));
                        }
                    }
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    fields
}

/// Identifier set within a site's region (fn body or `impl T for S`).
fn site_idents(tokens: &[Token], kind: &SiteKind, struct_name: &str) -> Option<HashSet<String>> {
    let mut i = 0;
    while i < tokens.len() {
        let hit = match kind {
            SiteKind::FnBody(name) => {
                tokens[i].text == "fn" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(name)
            }
            SiteKind::ImplFor(trait_name) => {
                tokens[i].text == "impl"
                    && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(trait_name)
                    && tokens.get(i + 2).map(|t| t.text.as_str()) == Some("for")
                    && tokens.get(i + 3).map(|t| t.text.as_str()) == Some(struct_name)
            }
        };
        if hit {
            let mut j = i + 1;
            while j < tokens.len() && tokens[j].text != "{" {
                j += 1;
            }
            let mut depth = 1;
            let mut idents = HashSet::new();
            j += 1;
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {
                        if tokens[j].kind == TokenKind::Ident {
                            idents.insert(tokens[j].text.clone());
                        }
                    }
                }
                j += 1;
            }
            return Some(idents);
        }
        i += 1;
    }
    None
}

fn check_stats(spec: &StatsSpec, files: &[(PathBuf, Lexed)], findings: &mut Vec<Finding>) {
    let Some((_, struct_lexed)) = files.iter().find(|(rel, _)| *rel == spec.struct_file) else {
        return;
    };
    let fields = struct_fields(&struct_lexed.tokens, &spec.struct_name);
    if fields.is_empty() {
        findings.push(Finding {
            rule: "stats-fields",
            file: spec.struct_file.clone(),
            line: 1,
            message: format!("struct '{}' not found or has no fields", spec.struct_name),
        });
        return;
    }
    for site in &spec.sites {
        let Some((_, lexed)) = files.iter().find(|(rel, _)| *rel == site.file) else {
            findings.push(Finding {
                rule: "stats-fields",
                file: site.file.clone(),
                line: 1,
                message: format!("stats site file missing for '{}'", site.label),
            });
            continue;
        };
        let Some(idents) = site_idents(&lexed.tokens, &site.kind, &spec.struct_name) else {
            findings.push(Finding {
                rule: "stats-fields",
                file: site.file.clone(),
                line: 1,
                message: format!("stats site '{}' not found", site.label),
            });
            continue;
        };
        for (field, line) in &fields {
            if !idents.contains(field) {
                findings.push(Finding {
                    rule: "stats-fields",
                    file: spec.struct_file.clone(),
                    line: *line,
                    message: format!(
                        "field '{field}' of {} missing from {}",
                        spec.struct_name, site.label
                    ),
                });
            }
        }
    }
}
