//! `actyp-lint` — run the workspace invariant rules from the repo root.
//!
//! ```text
//! actyp-lint [--root <dir>] [--deny]
//! ```
//!
//! `--deny` exits non-zero when any finding survives the allowlist
//! (the CI mode).  Unused `lint-allow` annotations are reported either
//! way so stale exemptions get cleaned up, and fail `--deny` too.

use std::path::PathBuf;
use std::process::ExitCode;

use actyp_lint::{lint_workspace, LintConfig};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: actyp-lint [--root <dir>] [--deny]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let config = match LintConfig::for_workspace(&root) {
        Ok(config) => config,
        Err(err) => {
            eprintln!(
                "actyp-lint: cannot load workspace config from {}: {err}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if config.hierarchy.is_empty() {
        eprintln!("actyp-lint: no lock-hierarchy fence found in docs/CONCURRENCY.md");
        return ExitCode::from(2);
    }

    let report = match lint_workspace(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("actyp-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        println!("{finding}");
    }
    for (file, line, rule) in &report.unused_allows {
        println!(
            "{}:{}: unused lint-allow({rule}) — remove or fix the rule name",
            file.display(),
            line
        );
    }
    println!(
        "actyp-lint: {} file(s), {} finding(s), {} suppressed by lint-allow, {} unused allow(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed,
        report.unused_allows.len()
    );

    if deny && (!report.findings.is_empty() || !report.unused_allows.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
