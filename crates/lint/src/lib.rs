//! actyp-lint — static analysis for actyp's concurrency and protocol
//! invariants.  See `docs/CONCURRENCY.md` for the rule catalog.

pub mod lexer;
pub mod rules;

pub use rules::{lint_workspace, Finding, LintConfig, LintReport};
