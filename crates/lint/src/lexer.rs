//! A minimal Rust lexer: enough fidelity for line-accurate token
//! streams (identifiers, punctuation, literals) with comments and
//! strings handled correctly, which is all the rules need.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`) — distinguished so it is never confused with a
    /// char literal.
    Lifetime,
    /// Numeric literal.
    Number,
    /// String, raw-string, char, or byte literal (contents dropped).
    Literal,
    /// Single punctuation character (`.`, `(`, `{`, `;`, …).
    Punct,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

/// A `// lint-allow(rule): reason` annotation found while lexing.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    /// Line the annotation sits on; it licenses findings on this line
    /// and the next non-comment line.
    pub line: usize,
}

/// A lexed source file: token stream plus the allow-annotations that
/// were embedded in its comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

/// Lexes Rust source, discarding comments (except `lint-allow`
/// annotations, which are collected) and literal contents.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                scan_allow(&source[start..i], line, &mut out.allows);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                scan_allow(&source[start..i.min(source.len())], line, &mut out.allows);
            }
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"...", r#"..."#, br"...", b"..." — scan to the close.
                let mut j = i;
                if bytes[j] == b'b' {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'r' {
                    j += 1;
                    let mut hashes = 0;
                    while j < bytes.len() && bytes[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    // Opening quote.
                    j += 1;
                    loop {
                        if j >= bytes.len() {
                            break;
                        }
                        if bytes[j] == b'\n' {
                            line += 1;
                            j += 1;
                            continue;
                        }
                        if bytes[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break;
                            }
                        }
                        j += 1;
                    }
                } else {
                    // b"..." plain byte string.
                    j += 1;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'\\' => j += 2,
                            b'"' => {
                                j += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                j += 1;
                            }
                            _ => j += 1,
                        }
                    }
                }
                i = j;
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal.  A lifetime is `'ident` not
                // followed by a closing quote.
                if is_lifetime(bytes, i) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[start..i].to_string(),
                        line,
                    });
                } else {
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a number at `..` (range) so punct stays intact.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    match bytes.get(j) {
        Some(b'r') => {
            let mut k = j + 1;
            while bytes.get(k) == Some(&b'#') {
                k += 1;
            }
            bytes.get(k) == Some(&b'"')
        }
        Some(b'"') => bytes[i] == b'b',
        _ => false,
    }
}

fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    // 'x followed by another ' is a char literal; 'ident without a
    // closing quote right after is a lifetime.  `'_'` is a char.
    let Some(&next) = bytes.get(i + 1) else {
        return false;
    };
    if !(next.is_ascii_alphabetic() || next == b'_') {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
        j += 1;
    }
    bytes.get(j) != Some(&b'\'')
}

fn scan_allow(comment: &str, line: usize, allows: &mut Vec<Allow>) {
    let Some(pos) = comment.find("lint-allow(") else {
        return;
    };
    let rest = &comment[pos + "lint-allow(".len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    let rule = rest[..close].trim().to_string();
    if !rule.is_empty() {
        allows.push(Allow { rule, line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_carry_lines() {
        let lexed = lex("let a = 1;\nb.lock();\n");
        let on_line_2: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.line == 2)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(on_line_2, vec!["b", ".", "lock", "(", ")", ";"]);
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let lexed = lex("// x.lock()\nlet s = \"y.lock()\";\n/* z.lock() */\n");
        assert!(!lexed.tokens.iter().any(|t| t.text == "lock"));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let lexed = lex("let s = r#\"a.lock() \"quoted\" \"#; next");
        assert!(lexed.tokens.iter().any(|t| t.text == "next"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "lock"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Literal));
    }

    #[test]
    fn allow_annotations_are_collected() {
        let lexed = lex("// lint-allow(lock-order): peer map before pool map\nx.lock();\n");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rule, "lock-order");
        assert_eq!(lexed.allows[0].line, 1);
    }
}
