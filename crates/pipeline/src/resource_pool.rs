//! Resource pools: dynamically created aggregation objects.
//!
//! "Resource pools are dynamically-created objects that consist of 1)
//! machines aggregated according to specified criteria (e.g., software, user
//! group, machine architecture, etc.), and 2) processes (or threads) that
//! order the machines on the basis of specified scheduling objectives"
//! (Section 5.2.3).
//!
//! A pool is created by a pool manager when a query maps to a pool name that
//! has no live instance.  At initialisation the pool walks the white-pages
//! database for machines matching the criteria encoded in its name, caches
//! them locally, and marks them *taken* in the main database.  Queries are
//! answered by the pool's scheduling process ([`crate::scheduler`]); pools
//! can be **split** into disjoint parts searched concurrently (Figure 7) or
//! **replicated** with an instance-specific bias (Figure 8).

use std::collections::HashMap;

use actyp_grid::{MachineId, SharedDatabase, TakenBy};
use actyp_query::ast::{BasicClause, QueryKey};
use actyp_query::{matches_machine, BasicQuery, Constraint, PoolName};
use actyp_simnet::Rng;

use crate::allocation::{Allocation, AllocationError, SessionKey};
use crate::message::RequestId;
use crate::scheduler::{ReplicaBias, ScheduleRequest, Scheduler, SchedulingObjective};

/// Internal record of an outstanding allocation, needed to undo its effects
/// at release time.
#[derive(Debug, Clone)]
struct ActiveAllocation {
    machine: MachineId,
    shadow_uid: Option<u32>,
}

/// A resource pool instance.
#[derive(Debug)]
pub struct ResourcePool {
    name: PoolName,
    instance: u32,
    cache: Vec<MachineId>,
    db: SharedDatabase,
    scheduler: Scheduler,
    active: HashMap<String, ActiveAllocation>,
    nonce: Rng,
    claims_machines: bool,
}

impl ResourcePool {
    /// Creates and initialises a pool: walks the white pages for machines
    /// satisfying the constraints encoded in `name`, caches them and marks
    /// them taken.  Fails with [`AllocationError::NoSuchResources`] when no
    /// machine matches (the pool manager then delegates the query).
    pub fn create(
        name: PoolName,
        instance: u32,
        bias: ReplicaBias,
        db: SharedDatabase,
        objective: SchedulingObjective,
        seed: u64,
    ) -> Result<Self, AllocationError> {
        let probe = Self::probe_query(&name);
        let cache = {
            let guard = db.read();
            guard.walk(|m| matches_machine(&probe, m).is_match())
        };
        if cache.is_empty() {
            return Err(AllocationError::NoSuchResources);
        }
        let pool = ResourcePool {
            scheduler: Scheduler::new(objective, bias, seed),
            name,
            instance,
            cache,
            db,
            active: HashMap::new(),
            nonce: Rng::new(seed ^ 0xACC0_5EED),
            claims_machines: true,
        };
        pool.claim_cache();
        Ok(pool)
    }

    /// Builds a pool directly from an explicit machine cache.  Used by
    /// [`ResourcePool::split_into`], by replication, and by tests.
    #[allow(clippy::too_many_arguments)]
    pub fn from_cache(
        name: PoolName,
        instance: u32,
        bias: ReplicaBias,
        cache: Vec<MachineId>,
        db: SharedDatabase,
        objective: SchedulingObjective,
        seed: u64,
        claims_machines: bool,
    ) -> Result<Self, AllocationError> {
        if cache.is_empty() {
            return Err(AllocationError::NoSuchResources);
        }
        let pool = ResourcePool {
            scheduler: Scheduler::new(objective, bias, seed),
            name,
            instance,
            cache,
            db,
            active: HashMap::new(),
            nonce: Rng::new(seed ^ 0xACC0_5EED),
            claims_machines,
        };
        if pool.claims_machines {
            pool.claim_cache();
        }
        Ok(pool)
    }

    /// Reconstructs the aggregation predicate from the pool name: a basic
    /// query containing exactly the `rsrc` constraints encoded in the name.
    fn probe_query(name: &PoolName) -> BasicQuery {
        BasicQuery {
            clauses: name
                .constraints
                .iter()
                .map(|(key, op, value)| BasicClause {
                    key: QueryKey::rsrc(key.clone()),
                    constraint: Constraint {
                        op: *op,
                        value: value.clone(),
                    },
                })
                .collect(),
        }
    }

    fn claim_cache(&self) {
        let mut guard = self.db.write();
        for &id in &self.cache {
            guard.mark_taken(
                id,
                TakenBy {
                    pool_name: self.name.full(),
                    instance: self.instance,
                },
            );
        }
    }

    /// The pool's name.
    pub fn name(&self) -> &PoolName {
        &self.name
    }

    /// The pool's instance number.
    pub fn instance(&self) -> u32 {
        self.instance
    }

    /// Number of machines aggregated in the pool.
    pub fn size(&self) -> usize {
        self.cache.len()
    }

    /// Number of outstanding allocations served by this instance.
    pub fn active_allocations(&self) -> usize {
        self.active.len()
    }

    /// The machine ids in the pool cache (in cache order).
    pub fn cached_machines(&self) -> &[MachineId] {
        &self.cache
    }

    /// Serves an allocation query.  On success the machine's PUNCH job count
    /// and load are bumped in the database, a shadow account (or the shared
    /// account) is selected, and a session key is generated.
    pub fn allocate(
        &mut self,
        request: RequestId,
        query: &BasicQuery,
        hour_of_day: u8,
    ) -> Result<Allocation, AllocationError> {
        let outcome = {
            let guard = self.db.read();
            self.scheduler
                .select(&self.cache, &guard, &ScheduleRequest { query, hour_of_day })?
        };

        let mut guard = self.db.write();
        let machine = guard
            .get_mut(outcome.machine)
            .ok_or(AllocationError::Internal("machine vanished".to_string()))?;

        // Select the account to run in: the shared account when the machine
        // has one (short "safe" jobs), otherwise a shadow account.
        let shadow_uid = if machine.shared_account.is_some() {
            None
        } else {
            match machine.shadow_accounts.allocate() {
                Some(account) => Some(account.uid),
                None => return Err(AllocationError::ShadowAccountsExhausted),
            }
        };

        machine.dynamic.active_jobs += 1;
        machine.dynamic.current_load += 1.0 / machine.num_cpus.max(1) as f64;

        let access_key = SessionKey::derive(request, self.instance, self.nonce.next_u64());
        let allocation = Allocation {
            request,
            machine: machine.id,
            machine_name: machine.name.clone(),
            execution_port: machine.execution_unit_port,
            mount_port: machine.pvfs_mount_port,
            shadow_uid,
            access_key: access_key.clone(),
            pool: self.name.full(),
            pool_instance: self.instance,
            examined: outcome.examined,
        };
        self.active.insert(
            access_key.0,
            ActiveAllocation {
                machine: allocation.machine,
                shadow_uid,
            },
        );
        Ok(allocation)
    }

    /// Releases a previously granted allocation: the shadow account returns
    /// to its pool and the machine's job count and load are decremented.
    pub fn release(&mut self, allocation: &Allocation) -> Result<(), AllocationError> {
        let record = self
            .active
            .remove(&allocation.access_key.0)
            .ok_or(AllocationError::UnknownAllocation)?;
        let mut guard = self.db.write();
        if let Some(machine) = guard.get_mut(record.machine) {
            machine.dynamic.active_jobs = machine.dynamic.active_jobs.saturating_sub(1);
            machine.dynamic.current_load =
                (machine.dynamic.current_load - 1.0 / machine.num_cpus.max(1) as f64).max(0.0);
            if let Some(uid) = record.shadow_uid {
                machine.shadow_accounts.release(uid);
            }
        }
        Ok(())
    }

    /// Splits the pool into `parts` disjoint pools of (nearly) equal size.
    /// Splitting is the paper's answer to oversized pools (Figure 7): the
    /// parts can be searched concurrently and their results aggregated.
    pub fn split_into(self, parts: usize, objective: SchedulingObjective) -> Vec<ResourcePool> {
        let parts = parts.max(1);
        let chunk = self.cache.len().div_ceil(parts);
        let mut result = Vec::new();
        for (i, machines) in self.cache.chunks(chunk.max(1)).enumerate() {
            let pool = ResourcePool::from_cache(
                self.name.clone(),
                i as u32,
                ReplicaBias::none(),
                machines.to_vec(),
                self.db.clone(),
                objective,
                0x5917 + i as u64,
                self.claims_machines,
            )
            .expect("non-empty chunk");
            result.push(pool);
        }
        result
    }

    /// Creates `replicas` instances that share this pool's machine set, each
    /// biased toward its own stripe of the cache (Figure 8).  The original
    /// pool keeps instance number 0 and is returned first.
    pub fn replicate(self, replicas: u32, objective: SchedulingObjective) -> Vec<ResourcePool> {
        let replicas = replicas.max(1);
        let mut result = Vec::new();
        for i in 0..replicas {
            let pool = ResourcePool::from_cache(
                self.name.clone(),
                i,
                ReplicaBias {
                    instance: i,
                    replicas,
                },
                self.cache.clone(),
                self.db.clone(),
                objective,
                0x5EED_7001u64.wrapping_add(i as u64),
                self.claims_machines && i == 0,
            )
            .expect("non-empty cache");
            result.push(pool);
        }
        result
    }

    /// Dissolves the pool: releases the taken marks so other pools may
    /// aggregate the machines again.  Outstanding allocations are left
    /// untouched (the desktop still holds them).
    pub fn dissolve(self) {
        if !self.claims_machines {
            return;
        }
        let mut guard = self.db.write();
        for id in &self.cache {
            if guard
                .taken_by(*id)
                .map(|t| t.pool_name == self.name.full())
                .unwrap_or(false)
            {
                guard.release_taken(*id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_grid::{FleetSpec, ResourceDatabase, SyntheticFleet};
    use actyp_query::{Constraint, Query, QueryKey};

    fn shared_db(machines: usize) -> SharedDatabase {
        SyntheticFleet::new(FleetSpec::homogeneous(machines, "sun", 256), 11)
            .generate()
            .into_shared()
    }

    fn sun_name() -> PoolName {
        let q = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .decompose(1)
            .remove(0);
        PoolName::from_query(&q)
    }

    fn sun_basic() -> BasicQuery {
        Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .with(QueryKey::user("accessgroup"), Constraint::eq("ece"))
            .with(QueryKey::user("login"), Constraint::eq("kapadia"))
            .decompose(1)
            .remove(0)
    }

    fn make_pool(db: &SharedDatabase) -> ResourcePool {
        ResourcePool::create(
            sun_name(),
            0,
            ReplicaBias::none(),
            db.clone(),
            SchedulingObjective::LeastLoaded,
            7,
        )
        .unwrap()
    }

    #[test]
    fn create_walks_white_pages_and_marks_taken() {
        let db = shared_db(50);
        let pool = make_pool(&db);
        assert_eq!(pool.size(), 50);
        assert_eq!(db.read().taken_count(), 50);
        assert!(db
            .read()
            .taken_by(pool.cached_machines()[0])
            .map(|t| t.pool_name == pool.name().full())
            .unwrap_or(false));
    }

    #[test]
    fn create_fails_when_nothing_matches() {
        let db = shared_db(10);
        let hp_name = PoolName::from_query(
            &Query::new()
                .with(QueryKey::rsrc("arch"), Constraint::eq("hp"))
                .decompose(1)
                .remove(0),
        );
        let err = ResourcePool::create(
            hp_name,
            0,
            ReplicaBias::none(),
            db,
            SchedulingObjective::LeastLoaded,
            1,
        )
        .unwrap_err();
        assert_eq!(err, AllocationError::NoSuchResources);
    }

    #[test]
    fn allocate_returns_contactable_machine_and_bumps_load() {
        let db = shared_db(20);
        let mut pool = make_pool(&db);
        let query = sun_basic();
        let allocation = pool.allocate(RequestId(1), &query, 12).unwrap();
        assert!(allocation.machine_name.contains("sun"));
        assert_eq!(allocation.pool, pool.name().full());
        assert!(allocation.shadow_uid.is_some());
        assert_eq!(allocation.examined, 20);
        let m = db.read().get(allocation.machine).cloned().unwrap();
        assert_eq!(m.dynamic.active_jobs, 1);
        assert!(m.dynamic.current_load > 0.0);
        assert_eq!(pool.active_allocations(), 1);
    }

    #[test]
    fn release_undoes_allocation_effects() {
        let db = shared_db(5);
        let mut pool = make_pool(&db);
        let query = sun_basic();
        let before_load = {
            let guard = db.read();
            guard.iter().map(|m| m.dynamic.current_load).sum::<f64>()
        };
        let allocation = pool.allocate(RequestId(1), &query, 12).unwrap();
        pool.release(&allocation).unwrap();
        let after = db.read().get(allocation.machine).cloned().unwrap();
        assert_eq!(after.dynamic.active_jobs, 0);
        assert_eq!(after.shadow_accounts.allocated(), 0);
        let after_load = {
            let guard = db.read();
            guard.iter().map(|m| m.dynamic.current_load).sum::<f64>()
        };
        assert!((before_load - after_load).abs() < 1e-9);
        assert_eq!(pool.active_allocations(), 0);
    }

    #[test]
    fn double_release_is_rejected() {
        let db = shared_db(5);
        let mut pool = make_pool(&db);
        let allocation = pool.allocate(RequestId(1), &sun_basic(), 12).unwrap();
        assert!(pool.release(&allocation).is_ok());
        assert_eq!(
            pool.release(&allocation),
            Err(AllocationError::UnknownAllocation)
        );
    }

    #[test]
    fn allocations_spread_across_machines_under_load() {
        let db = shared_db(10);
        let mut pool = make_pool(&db);
        let query = sun_basic();
        let mut machines = std::collections::HashSet::new();
        for i in 0..10 {
            let a = pool.allocate(RequestId(i), &query, 12).unwrap();
            machines.insert(a.machine);
        }
        // Least-loaded scheduling must not pile everything on one machine.
        assert!(
            machines.len() >= 5,
            "got {} distinct machines",
            machines.len()
        );
    }

    #[test]
    fn allocation_fails_when_everything_is_saturated() {
        let db = shared_db(2);
        // Lower the load ceiling so saturation happens quickly.
        {
            let mut guard = db.write();
            let ids: Vec<_> = guard.iter().map(|m| m.id).collect();
            for id in ids {
                guard.get_mut(id).unwrap().max_allowed_load = 0.5;
                guard.get_mut(id).unwrap().num_cpus = 1;
            }
        }
        let mut pool = make_pool(&db);
        let query = sun_basic();
        let mut failures = 0;
        for i in 0..5 {
            if pool.allocate(RequestId(i), &query, 12).is_err() {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "saturated machines must eventually refuse work"
        );
    }

    #[test]
    fn session_keys_are_unique_across_allocations() {
        let db = shared_db(10);
        let mut pool = make_pool(&db);
        let query = sun_basic();
        let mut keys = std::collections::HashSet::new();
        for i in 0..8 {
            let a = pool.allocate(RequestId(i), &query, 12).unwrap();
            assert!(keys.insert(a.access_key.0.clone()));
        }
    }

    #[test]
    fn split_produces_disjoint_parts_covering_the_pool() {
        let db = shared_db(100);
        let pool = make_pool(&db);
        let all: std::collections::HashSet<_> = pool.cached_machines().iter().copied().collect();
        let parts = pool.split_into(4, SchedulingObjective::LeastLoaded);
        assert_eq!(parts.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for part in &parts {
            assert_eq!(part.size(), 25);
            for &m in part.cached_machines() {
                assert!(seen.insert(m), "machine appears in two parts");
            }
        }
        assert_eq!(seen, all);
    }

    #[test]
    fn replicas_share_machines_but_prefer_distinct_stripes() {
        let db = shared_db(40);
        let pool = make_pool(&db);
        let replicas = pool.replicate(4, SchedulingObjective::FirstFit);
        assert_eq!(replicas.len(), 4);
        let query = sun_basic();
        let mut picks = Vec::new();
        for (i, replica) in replicas.into_iter().enumerate() {
            let mut replica = replica;
            assert_eq!(replica.size(), 40);
            let a = replica.allocate(RequestId(i as u64), &query, 12).unwrap();
            picks.push(a.machine);
        }
        // With first-fit and per-instance bias, the four replicas pick four
        // different machines even though they share the cache.
        let distinct: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn dissolve_releases_taken_marks() {
        let db = shared_db(10);
        let pool = make_pool(&db);
        assert_eq!(db.read().taken_count(), 10);
        pool.dissolve();
        assert_eq!(db.read().taken_count(), 0);
    }

    #[test]
    fn pools_do_not_steal_machines_taken_by_other_pools() {
        let db = ResourceDatabase::new().into_shared();
        {
            let mut fleet = SyntheticFleet::new(FleetSpec::homogeneous(10, "sun", 256), 3);
            let mut guard = db.write();
            fleet.generate_into(&mut guard);
        }
        let first = make_pool(&db);
        assert_eq!(first.size(), 10);
        // A second pool with the same aggregation criteria still sees the
        // machines in its walk (same pool name ⇒ idempotent claim), but a
        // pool claiming for a *different* name must not flip the marks.
        let other_name = PoolName::from_query(
            &Query::new()
                .with(QueryKey::rsrc("memory"), Constraint::ge(10u64))
                .decompose(1)
                .remove(0),
        );
        let second = ResourcePool::create(
            other_name.clone(),
            0,
            ReplicaBias::none(),
            db.clone(),
            SchedulingObjective::LeastLoaded,
            5,
        )
        .unwrap();
        assert_eq!(second.size(), 10);
        // The original claims survive.
        let guard = db.read();
        let kept = guard
            .iter()
            .filter(|m| {
                guard
                    .taken_by(m.id)
                    .map(|t| t.pool_name == first.name().full())
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(kept, 10);
    }
}
