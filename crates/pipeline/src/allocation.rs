//! Allocation results and errors.
//!
//! The contract the paper describes is simple: "the network desktop simply
//! asks ActYP for resources (via a query language); and it gets back an IP
//! address, a TCP port number, and a session-specific access key."  An
//! [`Allocation`] is that reply, extended with the bookkeeping the desktop
//! needs to later release the resources (machine id, pool name, shadow
//! account uid).

use std::fmt;

use actyp_grid::MachineId;

use crate::message::RequestId;

/// A session-specific access key exchanged among the resources taking part
/// in a run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey(pub String);

impl SessionKey {
    /// Derives a key from a request id, an instance number and a nonce.
    /// (The production system exchanged cryptographic material; a unique
    /// opaque token preserves the interface.)
    pub fn derive(request: RequestId, instance: u32, nonce: u64) -> Self {
        SessionKey(format!(
            "actyp-{:08x}-{instance:02x}-{nonce:016x}",
            request.0
        ))
    }
}

impl fmt::Display for SessionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A successful resource allocation returned to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// The request this allocation answers.
    pub request: RequestId,
    /// Database id of the selected machine.
    pub machine: MachineId,
    /// Host name of the selected machine.
    pub machine_name: String,
    /// TCP port of the PUNCH execution unit on the machine.
    pub execution_port: u16,
    /// TCP port of the PVFS mount manager on the machine.
    pub mount_port: u16,
    /// The shadow-account uid selected for the run, when one was needed
    /// (runs in the shared account carry `None`).
    pub shadow_uid: Option<u32>,
    /// Session-specific access key.
    pub access_key: SessionKey,
    /// Full name (`signature/identifier`) of the pool that served the query.
    pub pool: String,
    /// Instance number of that pool.
    pub pool_instance: u32,
    /// Number of cached machines the scheduling process examined (used by
    /// the evaluation; the paper's response times are dominated by this
    /// linear search).
    pub examined: usize,
}

/// Why an allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// The query could not be parsed.
    Parse(String),
    /// The query violates the schema of its family.
    Schema(String),
    /// No pool exists or can be created for the requested aggregation (no
    /// machine in the white pages satisfies the constraints).
    NoSuchResources,
    /// The pool exists but every matching machine is busy, down or denied by
    /// policy at the moment.
    NoneAvailable,
    /// All matching machines rejected the user (user-group or usage policy).
    PolicyDenied,
    /// A shadow account was required but none are free on the candidates.
    ShadowAccountsExhausted,
    /// The delegation time-to-live reached zero before any pool manager
    /// could satisfy the request.
    TtlExpired,
    /// The referenced allocation is unknown (double release, bad handle).
    UnknownAllocation,
    /// The referenced ticket is unknown (already waited, or issued by a
    /// different backend).
    UnknownTicket,
    /// Internal failure (a stage died, a channel closed).
    Internal(String),
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::Parse(m) => write!(f, "query parse error: {m}"),
            AllocationError::Schema(m) => write!(f, "query schema violation: {m}"),
            AllocationError::NoSuchResources => {
                write!(f, "no resources of the requested type exist")
            }
            AllocationError::NoneAvailable => {
                write!(f, "no matching resource is currently available")
            }
            AllocationError::PolicyDenied => {
                write!(f, "access denied by machine usage policies")
            }
            AllocationError::ShadowAccountsExhausted => {
                write!(f, "no shadow accounts available on matching machines")
            }
            AllocationError::TtlExpired => {
                write!(f, "request time-to-live expired during delegation")
            }
            AllocationError::UnknownAllocation => write!(f, "unknown allocation handle"),
            AllocationError::UnknownTicket => write!(f, "unknown submission ticket"),
            AllocationError::Internal(m) => write!(f, "internal pipeline error: {m}"),
        }
    }
}

impl std::error::Error for AllocationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_keys_are_unique_per_nonce() {
        let a = SessionKey::derive(RequestId(1), 0, 42);
        let b = SessionKey::derive(RequestId(1), 0, 43);
        let c = SessionKey::derive(RequestId(2), 0, 42);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.to_string().starts_with("actyp-"));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(AllocationError::NoSuchResources
            .to_string()
            .contains("no resources"));
        assert!(AllocationError::TtlExpired
            .to_string()
            .contains("time-to-live"));
        assert!(AllocationError::Parse("line 3".into())
            .to_string()
            .contains("line 3"));
    }

    #[test]
    fn allocation_is_cloneable_and_comparable() {
        let a = Allocation {
            request: RequestId(5),
            machine: MachineId(10),
            machine_name: "sun-00010.purdue.edu".to_string(),
            execution_port: 7070,
            mount_port: 7071,
            shadow_uid: Some(6003),
            access_key: SessionKey::derive(RequestId(5), 1, 7),
            pool: "arch,==/sun".to_string(),
            pool_instance: 1,
            examined: 37,
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
