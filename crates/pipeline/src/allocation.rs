//! Allocation results and errors.
//!
//! The contract the paper describes is simple: "the network desktop simply
//! asks ActYP for resources (via a query language); and it gets back an IP
//! address, a TCP port number, and a session-specific access key."  An
//! [`Allocation`] is that reply, extended with the bookkeeping the desktop
//! needs to later release the resources (machine id, pool name, shadow
//! account uid).
//!
//! Since the API went over the wire these types are *protocol* types: they
//! are defined (with their binary codec) in [`actyp_proto::types`] and
//! re-exported here, so a client and a `ypd` daemon agree on them by
//! construction and in-process code keeps its familiar paths.

pub use actyp_proto::types::{Allocation, AllocationError, SessionKey};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RequestId;
    use actyp_grid::MachineId;

    #[test]
    fn session_keys_are_unique_per_nonce() {
        let a = SessionKey::derive(RequestId(1), 0, 42);
        let b = SessionKey::derive(RequestId(1), 0, 43);
        let c = SessionKey::derive(RequestId(2), 0, 42);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.to_string().starts_with("actyp-"));
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(AllocationError::NoSuchResources
            .to_string()
            .contains("no resources"));
        assert!(AllocationError::TtlExpired
            .to_string()
            .contains("time-to-live"));
        assert!(AllocationError::Parse("line 3".into())
            .to_string()
            .contains("line 3"));
        assert!(AllocationError::Network("reset".into())
            .to_string()
            .contains("reset"));
        assert!(AllocationError::Protocol("bad frame".into())
            .to_string()
            .contains("bad frame"));
    }

    #[test]
    fn allocation_is_cloneable_and_comparable() {
        let a = Allocation {
            request: RequestId(5),
            machine: MachineId(10),
            machine_name: "sun-00010.purdue.edu".to_string(),
            execution_port: 7070,
            mount_port: 7071,
            shadow_uid: Some(6003),
            access_key: SessionKey::derive(RequestId(5), 1, 7),
            pool: "arch,==/sun".to_string(),
            pool_instance: 1,
            examined: 37,
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
