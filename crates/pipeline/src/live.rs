//! Live (threaded) deployment of the pipeline.
//!
//! "All stages in the resource management pipeline can be independently
//! distributed and replicated across machines.  Queries propagate from one
//! stage to the next via TCP or UDP" (Section 6).  This module realises that
//! deployment inside one process: every query-manager and pool-manager stage
//! runs on its own thread and stages exchange messages over channels, so
//! queries are genuinely pipelined — a query manager can be decomposing one
//! request while pool managers serve another and resource pools scan their
//! caches for a third.
//!
//! Clients reach the pipeline through the ticket-based
//! [`crate::api::ResourceManager`] surface (the former blocking `submit*`
//! shims are gone).  The underlying primitive is
//! [`submit_async`](LivePipeline::submit_async): it launches a query into
//! the pipeline and returns immediately with a receiver for the eventual
//! reply, so several queries can be in flight at once.
//!
//! The channel hop stands in for the TCP/UDP hop of the paper's deployment;
//! the simulated deployment ([`crate::sim`]) is where wire latency is
//! modelled explicitly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use actyp_grid::SharedDatabase;
use actyp_query::{BasicQuery, Query, QuerySchema};

use crate::allocation::{Allocation, AllocationError};
use crate::directory::{LocalDirectoryService, SharedDirectory};
use crate::engine::{EngineStats, PipelineConfig};
use crate::message::{RequestId, RequestIdGenerator, RoutingState};
use crate::pool_manager::{HandleOutcome, PoolManager, PoolManagerConfig};
use crate::query_manager::QueryManager;

type AllocationReply = Sender<Result<Allocation, AllocationError>>;

/// Per-stage counters shared by every worker thread; the live deployment's
/// equivalent of [`EngineStats`].
#[derive(Debug, Default)]
struct LiveCounters {
    requests: AtomicU64,
    fragments: AtomicU64,
    allocations: AtomicU64,
    failures: AtomicU64,
    delegations: AtomicU64,
    forwards: AtomicU64,
    releases: AtomicU64,
}

impl LiveCounters {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            fragments: self.fragments.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            delegations: self.delegations.load(Ordering::Relaxed),
            forwards: self.forwards.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
        }
    }
}

enum QmMsg {
    Submit {
        query: Query,
        reply: Sender<Result<Vec<Allocation>, AllocationError>>,
    },
    Shutdown,
    /// Test hook: makes the receiving worker panic so teardown reporting can
    /// be exercised.
    #[cfg(test)]
    Panic,
}

enum PmMsg {
    Query {
        request: RequestId,
        basic: BasicQuery,
        routing: RoutingState,
        hour: u8,
        reply: AllocationReply,
    },
    AllocateFrom {
        pool: String,
        instance: u32,
        request: RequestId,
        basic: BasicQuery,
        hour: u8,
        reply: AllocationReply,
    },
    Release {
        allocation: Allocation,
        reply: Sender<Result<(), AllocationError>>,
    },
    Shutdown,
}

struct PmWorker {
    manager: PoolManager,
    rx: Receiver<PmMsg>,
    peers: HashMap<String, Sender<PmMsg>>,
    peer_order: Vec<String>,
    counters: Arc<LiveCounters>,
}

impl PmWorker {
    fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                PmMsg::Shutdown => break,
                PmMsg::Release { allocation, reply } => {
                    let _ = reply.send(self.manager.release(&allocation));
                }
                PmMsg::AllocateFrom {
                    pool,
                    instance,
                    request,
                    basic,
                    hour,
                    reply,
                } => {
                    let result = self
                        .manager
                        .allocate_from(&pool, instance, request, &basic, hour);
                    let _ = reply.send(result);
                }
                PmMsg::Query {
                    request,
                    basic,
                    mut routing,
                    hour,
                    reply,
                } => {
                    if !routing.visit(self.manager.name()) {
                        let _ = reply.send(Err(AllocationError::TtlExpired));
                        continue;
                    }
                    match self.manager.handle(request, &basic, hour) {
                        HandleOutcome::Allocated(a) => {
                            let _ = reply.send(Ok(a));
                        }
                        HandleOutcome::Failed(err) => {
                            let _ = reply.send(Err(err));
                        }
                        HandleOutcome::Forward {
                            manager,
                            pool,
                            instance,
                        } => {
                            self.counters.forwards.fetch_add(1, Ordering::Relaxed);
                            if manager == self.manager.name() {
                                let result = self
                                    .manager
                                    .allocate_from(&pool, instance, request, &basic, hour);
                                let _ = reply.send(result);
                            } else if let Some(peer) = self.peers.get(&manager) {
                                let _ = peer.send(PmMsg::AllocateFrom {
                                    pool,
                                    instance,
                                    request,
                                    basic,
                                    hour,
                                    reply,
                                });
                            } else {
                                let _ = reply.send(Err(AllocationError::Internal(format!(
                                    "unknown pool manager {manager}"
                                ))));
                            }
                        }
                        HandleOutcome::CannotCreate => {
                            // Delegate to a peer that has not yet seen the
                            // query, carrying the routing state along.
                            self.counters.delegations.fetch_add(1, Ordering::Relaxed);
                            let next = self
                                .peer_order
                                .iter()
                                .find(|name| {
                                    !routing.has_visited(name)
                                        && name.as_str() != self.manager.name()
                                })
                                .cloned();
                            match next {
                                Some(name) if routing.alive() => {
                                    let peer = self.peers.get(&name).expect("peer sender exists");
                                    let _ = peer.send(PmMsg::Query {
                                        request,
                                        basic,
                                        routing,
                                        hour,
                                        reply,
                                    });
                                }
                                _ => {
                                    let _ = reply.send(Err(AllocationError::NoSuchResources));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

struct QmWorker {
    manager: QueryManager,
    rx: Receiver<QmMsg>,
    pm_txs: HashMap<String, Sender<PmMsg>>,
    pm_names: Vec<String>,
    config: PipelineConfig,
    counters: Arc<LiveCounters>,
}

impl QmWorker {
    fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                QmMsg::Shutdown => break,
                QmMsg::Submit { query, reply } => {
                    let _ = reply.send(self.process(&query));
                }
                #[cfg(test)]
                QmMsg::Panic => panic!("injected query-manager panic"),
            }
        }
    }

    fn process(&mut self, query: &Query) -> Result<Vec<Allocation>, AllocationError> {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let prepared = self.manager.prepare(query)?;
        let hour = self.config.hour_of_day;

        // Launch every fragment into the pipeline, then collect replies.
        let mut pending = Vec::with_capacity(prepared.fragments.len());
        for (tag, basic) in prepared.fragments {
            self.counters.fragments.fetch_add(1, Ordering::Relaxed);
            let target = self
                .manager
                .select_pool_manager(&basic, &self.pm_names)
                .ok_or_else(|| AllocationError::Internal("no pool managers".to_string()))?;
            let (tx, rx) = unbounded();
            let sender = self.pm_txs.get(&target).ok_or_else(|| {
                AllocationError::Internal(format!("unknown pool manager {target}"))
            })?;
            sender
                .send(PmMsg::Query {
                    request: tag.request,
                    basic,
                    routing: RoutingState::new(self.config.ttl),
                    hour,
                    reply: tx,
                })
                .map_err(|_| AllocationError::Internal("pool manager stage is down".to_string()))?;
            pending.push(rx);
        }

        let results: Vec<Result<Allocation, AllocationError>> = pending
            .into_iter()
            .map(|rx| {
                rx.recv().unwrap_or_else(|_| {
                    Err(AllocationError::Internal(
                        "pipeline stage dropped the reply".to_string(),
                    ))
                })
            })
            .collect();
        for result in &results {
            match result {
                Ok(_) => self.counters.allocations.fetch_add(1, Ordering::Relaxed),
                Err(_) => self.counters.failures.fetch_add(1, Ordering::Relaxed),
            };
        }

        let (keep, surplus) = self
            .manager
            .reintegrate(results, self.config.reintegration)?;
        for extra in surplus {
            // Hand surplus matches back to whichever manager hosts the pool.
            for sender in self.pm_txs.values() {
                let (tx, rx) = unbounded();
                if sender
                    .send(PmMsg::Release {
                        allocation: extra.clone(),
                        reply: tx,
                    })
                    .is_ok()
                    && matches!(rx.recv(), Ok(Ok(())))
                {
                    self.counters.releases.fetch_add(1, Ordering::Relaxed);
                    self.counters.allocations.fetch_sub(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        Ok(keep)
    }
}

/// Stage threads by kind, so teardown can stop the stages in pipeline
/// order (query managers first, then pool managers).
#[derive(Default)]
struct StageWorkers {
    query_managers: Vec<JoinHandle<()>>,
    pool_managers: Vec<JoinHandle<()>>,
}

/// A running, threaded deployment of the pipeline.
pub struct LivePipeline {
    qm_tx: Sender<QmMsg>,
    pm_txs: HashMap<String, Sender<PmMsg>>,
    directory: SharedDirectory,
    workers: Mutex<StageWorkers>,
    query_managers: usize,
    counters: Arc<LiveCounters>,
}

impl LivePipeline {
    /// Starts a single-domain deployment over one resource database.
    pub fn start(config: PipelineConfig, db: SharedDatabase) -> Self {
        let domains: Vec<(String, SharedDatabase)> = (0..config.pool_managers.max(1))
            .map(|i| (format!("pm-{i}"), db.clone()))
            .collect();
        Self::start_federated(config, domains)
    }

    /// Starts a federated deployment: one pool-manager stage per domain.
    pub fn start_federated(config: PipelineConfig, domains: Vec<(String, SharedDatabase)>) -> Self {
        assert!(!domains.is_empty(), "at least one domain is required");
        let directory: SharedDirectory =
            LocalDirectoryService::new().into_shared_with(config.shards);
        let ids = Arc::new(RequestIdGenerator::new());
        let counters = Arc::new(LiveCounters::default());

        // Pool-manager stages and their channels.
        let mut pm_txs: HashMap<String, Sender<PmMsg>> = HashMap::new();
        let mut pm_rxs: Vec<(String, SharedDatabase, Receiver<PmMsg>)> = Vec::new();
        let pm_names: Vec<String> = domains.iter().map(|(name, _)| name.clone()).collect();
        for (name, db) in domains {
            let (tx, rx) = unbounded();
            pm_txs.insert(name.clone(), tx);
            pm_rxs.push((name, db, rx));
        }

        let mut workers = StageWorkers::default();
        for (i, (name, db, rx)) in pm_rxs.into_iter().enumerate() {
            let manager = PoolManager::new(
                name,
                db,
                directory.clone(),
                PoolManagerConfig {
                    selection: config.instance_selection,
                    objective: config.objective,
                    host: format!("actyp-node-{i}"),
                    base_port: 7300,
                },
                config.seed ^ (0x90 + i as u64),
            );
            let worker = PmWorker {
                manager,
                rx,
                peers: pm_txs.clone(),
                peer_order: pm_names.clone(),
                counters: counters.clone(),
            };
            workers
                .pool_managers
                .push(std::thread::spawn(move || worker.run()));
        }

        // Query-manager stages share one submission channel (any idle stage
        // picks up the next client request).
        let (qm_tx, qm_rx) = unbounded::<QmMsg>();
        let query_managers = config.query_managers.max(1);
        for i in 0..query_managers {
            let manager = QueryManager::new(
                format!("qm-{i}"),
                QuerySchema::punch_default().permissive(),
                config.pool_manager_selection.clone(),
                config.decompose_limit,
                ids.clone(),
                config.seed ^ (0x51 + i as u64),
            );
            let worker = QmWorker {
                manager,
                rx: qm_rx.clone(),
                pm_txs: pm_txs.clone(),
                pm_names: pm_names.clone(),
                config: config.clone(),
                counters: counters.clone(),
            };
            workers
                .query_managers
                .push(std::thread::spawn(move || worker.run()));
        }

        LivePipeline {
            qm_tx,
            pm_txs,
            directory,
            workers: Mutex::new(workers),
            query_managers,
            counters,
        }
    }

    /// The shared directory service (inspection).
    pub fn directory(&self) -> &SharedDirectory {
        &self.directory
    }

    /// A snapshot of the per-stage counters, unified with the embedded
    /// engine's [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot()
    }

    /// Launches a query into the pipeline without waiting: the returned
    /// receiver yields the reply when the pipeline finishes.  Several
    /// launched queries overlap across the query-manager, pool-manager and
    /// pool stages — this is the pipelining the paper measures, available to
    /// a single client thread.
    #[allow(clippy::type_complexity)]
    pub fn submit_async(
        &self,
        query: Query,
    ) -> Result<Receiver<Result<Vec<Allocation>, AllocationError>>, AllocationError> {
        let (tx, rx) = unbounded();
        self.qm_tx
            .send(QmMsg::Submit { query, reply: tx })
            .map_err(|_| AllocationError::Internal("query manager stage is down".to_string()))?;
        Ok(rx)
    }

    /// Releases an allocation.
    pub fn release(&self, allocation: &Allocation) -> Result<(), AllocationError> {
        // Find the hosting manager through the directory; fall back to
        // asking every manager.
        let manager = crate::engine::owning_manager(&self.directory, allocation);
        let order: Vec<&Sender<PmMsg>> = match manager.as_ref().and_then(|m| self.pm_txs.get(m)) {
            Some(tx) => vec![tx],
            None => self.pm_txs.values().collect(),
        };
        let mut last = Err(AllocationError::UnknownAllocation);
        for sender in order {
            let (tx, rx) = unbounded();
            if sender
                .send(PmMsg::Release {
                    allocation: allocation.clone(),
                    reply: tx,
                })
                .is_err()
            {
                continue;
            }
            match rx.recv() {
                Ok(Ok(())) => {
                    self.counters.releases.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Ok(Err(e)) => last = Err(e),
                Err(_) => last = Err(AllocationError::Internal("stage is down".to_string())),
            }
        }
        last
    }

    /// Shuts the deployment down, joining every stage thread.  A worker that
    /// panicked during the run is reported here instead of being silently
    /// detached; the error lists every panicking stage.
    ///
    /// Teardown follows the pipeline order: the query-manager stages are
    /// stopped and joined first, so every submission already queued is fully
    /// processed (its fragments forwarded to the pool managers and their
    /// replies awaited) before the pool-manager stages are stopped.
    /// Outstanding [`submit_async`](LivePipeline::submit_async) receivers
    /// therefore still yield their real outcome after shutdown.
    pub fn shutdown(&self) -> Result<(), AllocationError> {
        let mut panics = Vec::new();

        // Phase 1: stop the query managers.  Each worker consumes its
        // shutdown marker only after the submissions queued ahead of it.
        for _ in 0..self.query_managers {
            let _ = self.qm_tx.send(QmMsg::Shutdown);
        }
        let qm_handles: Vec<JoinHandle<()>> =
            self.workers.lock().query_managers.drain(..).collect();
        Self::join_into(qm_handles, &mut panics);

        // Phase 2: no new fragments can arrive now — stop the pool managers.
        for sender in self.pm_txs.values() {
            let _ = sender.send(PmMsg::Shutdown);
        }
        let pm_handles: Vec<JoinHandle<()>> = self.workers.lock().pool_managers.drain(..).collect();
        Self::join_into(pm_handles, &mut panics);

        if panics.is_empty() {
            Ok(())
        } else {
            Err(AllocationError::Internal(format!(
                "stage worker panicked: {}",
                panics.join("; ")
            )))
        }
    }

    fn join_into(handles: Vec<JoinHandle<()>>, panics: &mut Vec<String>) {
        for handle in handles {
            if let Err(payload) = handle.join() {
                panics.push(panic_message(payload.as_ref()));
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl Drop for LivePipeline {
    fn drop(&mut self) {
        // A leaked pipeline must not orphan its stage threads.  Errors are
        // deliberately swallowed here — call `shutdown` to observe them.
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_manager::{PoolManagerSelection, ReintegrationPolicy};
    use actyp_grid::{FleetSpec, SyntheticFleet};

    fn fleet_db(n: usize, seed: u64) -> SharedDatabase {
        SyntheticFleet::new(FleetSpec::with_machines(n), seed)
            .generate()
            .into_shared()
    }

    fn paper_text() -> String {
        Query::paper_example().to_string()
    }

    /// What the removed `LivePipeline::submit_text` shim did: parse, launch
    /// asynchronously, block for the reply.
    fn submit_text(
        pipeline: &LivePipeline,
        text: &str,
    ) -> Result<Vec<Allocation>, AllocationError> {
        let query =
            actyp_query::parse_query(text).map_err(|e| AllocationError::Parse(e.to_string()))?;
        let rx = pipeline.submit_async(query)?;
        rx.recv()
            .map_err(|_| AllocationError::Internal("query manager dropped the reply".to_string()))?
    }

    #[test]
    fn live_pipeline_allocates_and_releases() {
        let pipeline = LivePipeline::start(PipelineConfig::default(), fleet_db(200, 1));
        let allocations = submit_text(&pipeline, &paper_text()).unwrap();
        assert_eq!(allocations.len(), 1);
        assert!(allocations[0].machine_name.contains("sun"));
        pipeline.release(&allocations[0]).unwrap();
        assert!(pipeline.release(&allocations[0]).is_err());
        let stats = pipeline.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.releases, 1);
        pipeline.shutdown().unwrap();
    }

    #[test]
    fn replicated_stages_serve_concurrent_clients() {
        let config = PipelineConfig {
            query_managers: 3,
            pool_managers: 2,
            pool_manager_selection: PoolManagerSelection::RoundRobin,
            ..PipelineConfig::default()
        };
        let pipeline = Arc::new(LivePipeline::start(config, fleet_db(400, 2)));
        let mut joins = Vec::new();
        for _ in 0..6 {
            let p = pipeline.clone();
            joins.push(std::thread::spawn(move || {
                let mut allocations = Vec::new();
                for _ in 0..5 {
                    allocations.extend(submit_text(&p, &paper_text()).unwrap());
                }
                for a in &allocations {
                    p.release(a).unwrap();
                }
                allocations.len()
            }));
        }
        let total: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(total, 30);
        assert_eq!(pipeline.stats().allocations, 30);
    }

    #[test]
    fn composite_queries_reintegrate_across_threads() {
        let config = PipelineConfig {
            reintegration: ReintegrationPolicy::FirstMatch,
            ..PipelineConfig::default()
        };
        let db = fleet_db(400, 3);
        let pipeline = LivePipeline::start(config, db.clone());
        let allocations = submit_text(
            &pipeline,
            "punch.rsrc.arch = sun | hp\npunch.user.accessgroup = ece\n",
        )
        .unwrap();
        assert_eq!(allocations.len(), 1);
        // The surplus fragment allocation was handed back by the pipeline.
        let outstanding: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(outstanding, 1);
        pipeline.release(&allocations[0]).unwrap();
        pipeline.shutdown().unwrap();
    }

    #[test]
    fn federated_live_pipeline_delegates_between_domains() {
        let sun_db = SyntheticFleet::new(FleetSpec::homogeneous(40, "sun", 256), 5)
            .generate()
            .into_shared();
        let hp_db = SyntheticFleet::new(FleetSpec::homogeneous(40, "hp", 512), 6)
            .generate()
            .into_shared();
        let pipeline = LivePipeline::start_federated(
            PipelineConfig::default(),
            vec![("purdue".to_string(), sun_db), ("upc".to_string(), hp_db)],
        );
        // Both queries succeed regardless of which domain they reach first.
        let sun = submit_text(&pipeline, "punch.rsrc.arch = sun\n").unwrap();
        let hp = submit_text(&pipeline, "punch.rsrc.arch = hp\n").unwrap();
        assert!(sun[0].machine_name.contains("sun"));
        assert!(hp[0].machine_name.contains("hp"));
        pipeline.shutdown().unwrap();
    }

    #[test]
    fn parse_errors_are_returned_to_the_caller() {
        let pipeline = LivePipeline::start(PipelineConfig::default(), fleet_db(50, 7));
        assert!(matches!(
            submit_text(&pipeline, "garbage").unwrap_err(),
            AllocationError::Parse(_)
        ));
        pipeline.shutdown().unwrap();
    }

    #[test]
    fn shutdown_via_drop_does_not_hang() {
        let pipeline = LivePipeline::start(PipelineConfig::default(), fleet_db(50, 8));
        let _ = submit_text(&pipeline, &paper_text()).unwrap();
        drop(pipeline);
    }

    #[test]
    fn async_submissions_overlap_in_the_pipeline() {
        let config = PipelineConfig {
            query_managers: 2,
            ..PipelineConfig::default()
        };
        let pipeline = LivePipeline::start(config, fleet_db(300, 9));
        let query = Query::paper_example();
        // Three queries in flight before any reply is awaited.
        let pending: Vec<_> = (0..3)
            .map(|_| pipeline.submit_async(query.clone()).unwrap())
            .collect();
        for rx in pending {
            let allocations = rx.recv().unwrap().unwrap();
            pipeline.release(&allocations[0]).unwrap();
        }
        assert_eq!(pipeline.stats().allocations, 3);
        pipeline.shutdown().unwrap();
    }

    #[test]
    fn queued_submissions_complete_across_shutdown() {
        // Shutdown stops the stages in pipeline order, so a submission that
        // is still queued when shutdown begins is processed end to end and
        // its receiver yields the real outcome.
        let pipeline = LivePipeline::start(PipelineConfig::default(), fleet_db(200, 11));
        let rx = pipeline.submit_async(Query::paper_example()).unwrap();
        pipeline.shutdown().unwrap();
        let allocations = rx.recv().unwrap().unwrap();
        assert_eq!(allocations.len(), 1);
    }

    #[test]
    fn worker_panics_surface_at_shutdown() {
        let pipeline = LivePipeline::start(PipelineConfig::default(), fleet_db(50, 10));
        pipeline.qm_tx.send(QmMsg::Panic).unwrap();
        let err = pipeline.shutdown().unwrap_err();
        match err {
            AllocationError::Internal(message) => {
                assert!(message.contains("panicked"), "got: {message}");
                assert!(message.contains("injected query-manager panic"));
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // A second shutdown (and the eventual drop) is a clean no-op.
        pipeline.shutdown().unwrap();
    }
}
