//! Wide-area federation: delegation of queries *between* `ypd` daemons.
//!
//! The paper's servers cooperate across administrative domains: "when a
//! pool manager cannot satisfy a query, it delegates the query to a peer
//! in another domain", carrying a time-to-live and the list of domains
//! already visited with the query itself (Sections 5.2.2, 6).  Inside one
//! process that control flow already exists ([`RoutingState`] threading
//! through [`crate::engine::Engine`]); this module takes the same
//! delegation over the wire, so a fleet of peered daemons forms the
//! paper's WAN topology:
//!
//! ```text
//!   clients ──► ypd (domain A) ──Delegate──► ypd (domain B)
//!                     │                            │
//!                     └───────Delegate─────────────┴──► ypd (domain C)
//! ```
//!
//! [`FederatedBackend`] wraps any [`ResourceManager`] backend.  When the
//! local backend cannot satisfy a query (no matching pool can be created,
//! or capacity is exhausted — see [`is_delegable`]), the query is
//! forwarded to peer daemons over pooled connections speaking the
//! protocol's [`ClientFrame::Delegate`] frame: the TTL is decremented at
//! every hop, no domain is ever revisited, and the originating ticket
//! settles with the remote allocation or the proper
//! [`AllocationError::TtlExpired`].  Peers learn each other's domain
//! names and pool names through a [`ClientFrame::SyncPools`] /
//! `PoolsSynced` exchange performed once per connection; the
//! advertisements land in a [`LocalDirectoryService`] of peer records,
//! and a peer whose connection dies is pruned from it with
//! [`LocalDirectoryService::unregister_pool_manager`].
//!
//! The chain logic itself — [`run_chain`] over a [`PeerDelegator`] — is
//! deliberately transport-agnostic: the production implementation speaks
//! TCP, while the property tests drive whole in-memory topologies through
//! the same function to check the paper's routing invariants (TTL
//! strictly decreases across hops, no domain is revisited, every chain
//! terminates within TTL hops).

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use actyp_proto::{
    read_server_frame, write_frame, AdvertDelta, AdvertVersion, ClientFrame, RequestId,
    ServerFrame, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};

use crate::allocation::{Allocation, AllocationError};
use crate::api::{QueryOutcome, ResourceManager, StatsSnapshot, Ticket};
use crate::directory::{LocalDirectoryService, PoolInstanceRecord, SharedDirectory};
use crate::gossip::{GossipEvent, GossipPlane};
use crate::message::{RoutingState, StageAddress};
use crate::query_manager::RouteCache;

/// How long to wait for a peer daemon to accept a TCP connection.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// How long to wait for a peer's reply to one frame before declaring the
/// link dead.  Generous because a `Delegate` reply includes the peer's
/// whole downstream chain.
const PEER_REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Reply deadline of one peer health probe.  The probe frame
/// ([`ClientFrame::Stats`]) is answered inline by the peer's I/O thread —
/// never queued behind backend work — so a reply slower than this means
/// the peer or the path to it is dead, not merely loaded.
const PEER_PROBE_TIMEOUT: Duration = Duration::from_secs(2);

/// How long after the *first* failed connect a link waits before dialing
/// the peer again, so a dead peer costs one connect timeout per backoff
/// window instead of one per query.  Consecutive failures double the
/// window (up to [`PEER_REDIAL_BACKOFF_MAX`]): the periodic gossip tick
/// also dials down links, and without the growth a long-dead peer would
/// cost one full connect timeout per tick interval forever.
const PEER_REDIAL_BACKOFF: Duration = Duration::from_secs(5);

/// Ceiling of the per-peer redial backoff.  A revived peer is still
/// noticed within a minute even if it was down for hours — and typically
/// much sooner, because the revived peer's own outbound links gossip its
/// pools back to us.
const PEER_REDIAL_BACKOFF_MAX: Duration = Duration::from_secs(60);

/// Per-peer redial discipline: how long ago the last connect failed and
/// how long the link must now wait before dialing again.  The wait starts
/// at [`PEER_REDIAL_BACKOFF`] and doubles per consecutive failure up to
/// [`PEER_REDIAL_BACKOFF_MAX`]; any successful connect resets it.
#[derive(Debug, Clone, Copy)]
struct RedialBackoff {
    failed_at: Option<std::time::Instant>,
    wait: Duration,
}

impl RedialBackoff {
    fn new() -> Self {
        RedialBackoff {
            failed_at: None,
            wait: PEER_REDIAL_BACKOFF,
        }
    }

    /// Whether a dial attempt is permitted at `now`.
    fn permits(&self, now: std::time::Instant) -> bool {
        match self.failed_at {
            Some(failed_at) => now.saturating_duration_since(failed_at) >= self.wait,
            None => true,
        }
    }

    /// Records a failed connect: the next attempt waits twice as long as
    /// this one did (capped).  The first failure keeps the base wait.
    fn note_failure(&mut self, now: std::time::Instant) {
        if self.failed_at.is_some() {
            self.wait = (self.wait * 2).min(PEER_REDIAL_BACKOFF_MAX);
        }
        self.failed_at = Some(now);
    }

    /// Records a successful connect: the link is healthy, the next
    /// failure starts from the base wait again.
    fn note_success(&mut self) {
        *self = RedialBackoff::new();
    }
}

/// Whether a failure may be cured by another administrative domain: the
/// pool cannot be aggregated here (no matching machine exists in this
/// domain's white pages) or every matching resource is exhausted.  Parse,
/// schema, policy and protocol failures travel with the query — another
/// domain would fail them identically — so they are final.
pub fn is_delegable(error: &AllocationError) -> bool {
    matches!(
        error,
        AllocationError::NoSuchResources
            | AllocationError::NoneAvailable
            | AllocationError::ShadowAccountsExhausted
            | AllocationError::TtlExpired
    )
}

/// Why a delegation attempt yielded no outcome at all (as opposed to an
/// [`AllocationError`], which *is* an outcome).
#[derive(Debug)]
pub struct PeerUnavailable {
    /// `true` when the transport itself failed — the peer should be
    /// disconnected and pruned.  `false` when the peer answered but
    /// refused the delegation (e.g. it is not federated, or overloaded):
    /// the connection is healthy and must be kept, because it may hold
    /// session leases for allocations clients still use.
    pub transport: bool,
    /// Human-readable reason.
    pub reason: String,
}

/// The peer-facing half of a delegation chain, implemented over TCP by
/// [`FederatedBackend`] and over in-memory topologies by the property
/// tests.
pub trait PeerDelegator {
    /// Domains this node could forward to, in preference order (peers
    /// advertising a pool matching the query first).  Implementations may
    /// do work (e.g. connect to a peer for the first time to learn its
    /// domain name); [`run_chain`] calls this once per chain and filters
    /// out visited and failed domains itself.
    fn candidates(&self, query: &str, state: &RoutingState) -> Vec<String>;

    /// Sends one `Delegate` to `domain` and returns the outcome together
    /// with the routing state after the peer's whole chain finished.
    fn delegate(
        &self,
        domain: &str,
        query: &str,
        state: &RoutingState,
    ) -> Result<(QueryOutcome, RoutingState), PeerUnavailable>;

    /// Notification that `domain` proved unreachable at the transport
    /// level, so the implementation can prune directory records and drop
    /// the connection.  Not called for mere refusals.
    fn peer_failed(&self, domain: &str) {
        let _ = domain;
    }
}

/// Folds the routing state a peer returned into the local one,
/// defensively: a (buggy or malicious) peer can only ever *shrink* the
/// TTL — by at least the one hop it consumed — and *grow* the visited
/// list, so no reply can re-arm the chain into a routing loop.
fn merge_states(
    mut state: RoutingState,
    downstream: RoutingState,
    delegatee: &str,
) -> RoutingState {
    state.ttl = downstream.ttl.min(state.ttl.saturating_sub(1));
    for domain in downstream.visited {
        if !state.has_visited(&domain) {
            state.visited.push(domain);
        }
    }
    if !state.has_visited(delegatee) {
        state.visited.push(delegatee.to_string());
    }
    state
}

/// Runs one node's step of a delegation chain: visit this domain (spending
/// one TTL hop), try the local backend, and while the failure is
/// [delegable](is_delegable) forward to unvisited peers — never revisiting
/// a domain, never exceeding the TTL, and always terminating.
///
/// Returns the outcome together with the routing state after the whole
/// (possibly multi-hop) chain, which the caller ships back to *its*
/// delegator so the invariants hold end to end.
pub fn run_chain(
    domain: &str,
    query: &str,
    mut state: RoutingState,
    local: impl FnOnce(&str) -> QueryOutcome,
    peers: &dyn PeerDelegator,
) -> (QueryOutcome, RoutingState) {
    if !state.visit(domain) {
        return (Err(AllocationError::TtlExpired), state);
    }
    let mut last_error = match local(query) {
        Ok(allocations) => return (Ok(allocations), state),
        Err(error) if !is_delegable(&error) => return (Err(error), state),
        Err(error) => error,
    };
    if !state.alive() {
        // Exhausted by the local visit: don't pay for a candidate sweep
        // (which may dial peers) only to discard it.
        return (Err(AllocationError::TtlExpired), state);
    }
    // The candidate set is computed once per chain: the peer topology
    // does not change mid-chain, and re-asking would re-dial every dead
    // peer (a connect timeout each) on every iteration of the loop.
    let available = peers.candidates(query, &state);
    // Domains that failed during *this* chain (transport failures and
    // refusals): excluded so the loop always makes progress through a
    // finite candidate set.
    let mut failed: Vec<String> = Vec::new();
    loop {
        if !state.alive() {
            return (Err(AllocationError::TtlExpired), state);
        }
        let next = available
            .iter()
            .find(|d| *d != domain && !state.has_visited(d) && !failed.iter().any(|u| u == *d));
        let Some(next) = next else {
            // Every reachable domain has been tried: the local failure
            // stands (the paper fails the request when all managers have
            // seen it).
            return (Err(last_error), state);
        };
        let next = next.clone();
        match peers.delegate(&next, query, &state) {
            Err(unavailable) => {
                failed.push(next.clone());
                // Only a transport failure tears the peer down; a refusal
                // came over a healthy connection that may hold leases.
                if unavailable.transport {
                    peers.peer_failed(&next);
                }
            }
            Ok((outcome, downstream)) => {
                state = merge_states(state, downstream, &next);
                match outcome {
                    Ok(allocations) => return (Ok(allocations), state),
                    Err(error) if !is_delegable(&error) => return (Err(error), state),
                    Err(error) => last_error = error,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Peer links (the TCP implementation)
// ---------------------------------------------------------------------------

/// One live, *multiplexed* connection to a peer daemon, after the hello
/// and pool-sync handshakes.
///
/// This is the same correlation machinery [`crate::remote::RemoteBackend`]
/// proves out client-side, applied daemon-to-daemon: a background reader
/// thread routes every reply frame to the request that sent it by
/// [`RequestId`], so any number of delegation chains (and releases) share
/// the one connection *concurrently* — the link mutex of the old design,
/// which serialized concurrent delegations to the same peer for the whole
/// WAN round trip, is gone.  The lease-holding property is preserved: it
/// is still one TCP session per peer, so every allocation a peer granted
/// this daemon stays leased to this same connection.
struct MuxConn {
    /// The peer's domain name, learned from its `PoolsSynced` reply
    /// (empty until that handshake answers; interior-mutable because the
    /// reader thread already shares the connection by then).
    domain: Mutex<String>,
    writer: Mutex<TcpStream>,
    /// Requests awaiting their reply, by correlation id.  Sharded so
    /// concurrent requesters on one peer link don't serialise on a single
    /// map lock; correlation ids are sequential, so shards deal
    /// round-robin.
    pending: crate::shard::ShardedMap<crossbeam::channel::Sender<ServerFrame>>,
    /// Why the connection died, once it has.
    dead: Mutex<Option<String>>,
    corr: AtomicU64,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MuxConn {
    /// The peer's domain name (empty before the pool-sync reply).
    fn domain(&self) -> String {
        self.domain.lock().clone()
    }

    /// Records the death reason and wakes every in-flight request.  The
    /// `dead` lock is held across the `pending` clear so no request can
    /// register between the two and hang forever (same discipline as the
    /// remote backend client).
    fn poison(&self, reason: String) {
        let mut dead = self.dead.lock();
        dead.get_or_insert(reason);
        // Sweeps the shards one at a time; registration happens under the
        // `dead` guard held here, so no request can slip into an
        // already-swept shard and hang.
        self.pending.clear();
    }

    /// One request/response exchange over the shared connection.  Other
    /// threads' requests interleave freely; a reply that takes longer
    /// than [`PEER_REPLY_TIMEOUT`] fails the exchange (and the caller
    /// drops the link).
    fn request(&self, build: impl FnOnce(RequestId) -> ClientFrame) -> Result<ServerFrame, String> {
        self.request_deadline(PEER_REPLY_TIMEOUT, build)
    }

    /// [`MuxConn::request`] with an explicit reply deadline.  Health
    /// probes use a much shorter one than delegations: a probe answer is
    /// computed inline by the peer's I/O thread, so a slow reply means
    /// the peer (or the path to it) is gone, not busy.
    fn request_deadline(
        &self,
        timeout: Duration,
        build: impl FnOnce(RequestId) -> ClientFrame,
    ) -> Result<ServerFrame, String> {
        let corr = RequestId(self.corr.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = crossbeam::channel::unbounded();
        {
            let dead = self.dead.lock();
            if let Some(reason) = &*dead {
                return Err(reason.clone());
            }
            self.pending.insert(corr.0, tx);
        }
        let sent = {
            let mut writer = self.writer.lock();
            // The writer mutex MUST cover the frame write or concurrent
            // requests interleave half-frames; the socket write timeout
            // set at connect bounds how long a stalled peer can hold it.
            // lint-allow(lock-across-blocking): serialised frame write
            write_frame(&mut *writer, &build(corr))
        };
        if let Err(e) = sent {
            self.pending.remove(corr.0);
            let reason = format!("send: {e}");
            self.poison(reason.clone());
            return Err(reason);
        }
        match rx.recv_timeout(timeout) {
            Ok(frame) => Ok(frame),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                self.pending.remove(corr.0);
                Err(format!(
                    "no reply from peer `{}` within {timeout:?}",
                    self.domain()
                ))
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(self
                .dead
                .lock()
                .clone()
                .unwrap_or_else(|| "peer connection closed".to_string())),
        }
    }

    /// Closes the transport and joins the reader thread.  Idempotent.
    fn shutdown(&self) {
        self.poison("link disconnected".to_string());
        {
            let writer = self.writer.lock();
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        let reader = self.reader.lock().take();
        if let Some(reader) = reader {
            let _ = reader.join();
        }
    }
}

/// What a fresh peer handshake yields: the multiplexed connection, the
/// pools the peer advertised, and the gossip deltas it piggybacked on
/// its `PoolsSynced` reply.
type PeerHandshake = (Arc<MuxConn>, Vec<String>, Vec<AdvertDelta>);

/// A pooled connection to one peer daemon: lazily established, reused
/// (concurrently — see [`MuxConn`]) across delegations, re-established
/// after failures.
struct PeerLink {
    addr: StageAddress,
    /// Stable index of this link, used as the instance number for the
    /// peer's advertised pool records (unique per manager in the peer
    /// directory).
    index: u32,
    conn: Mutex<Option<Arc<MuxConn>>>,
    /// Last domain name this link handshook as (kept after the connection
    /// dies).  Read instead of locking `conn` wherever only the identity
    /// is needed — in particular by `candidates()`, which must never wait
    /// on a link that is mid-redial.
    last_domain: Mutex<Option<String>>,
    /// Per-peer redial backoff: when the last connect attempt failed and
    /// how long to wait before the next one (exponential under
    /// consecutive failures, reset by any success).
    redial: Mutex<RedialBackoff>,
}

/// A freshly learned peer advertisement (domain name and pool names),
/// with the identity the link had before — a peer that restarted under a
/// different domain name must have its old records pruned.
struct PeerAdvertisement {
    domain: String,
    pools: Vec<String>,
    previous_domain: Option<String>,
    /// Advertisement-log deltas piggybacked on the `PoolsSynced` reply.
    deltas: Vec<AdvertDelta>,
}

impl PeerLink {
    fn new(addr: StageAddress, index: u32) -> Self {
        PeerLink {
            addr,
            index,
            conn: Mutex::new(None),
            last_domain: Mutex::new(None),
            redial: Mutex::new(RedialBackoff::new()),
        }
    }

    /// Dials the peer, performs the hello and pool-sync handshakes, and
    /// starts the reader thread that routes replies by correlation id.
    fn connect(
        &self,
        my_domain: &str,
        my_pools: Vec<String>,
        my_have: Vec<AdvertVersion>,
    ) -> Result<PeerHandshake, String> {
        let mut addrs = (self.addr.host.as_str(), self.addr.port)
            .to_socket_addrs()
            .map_err(|e| format!("resolve {}: {e}", self.addr))?;
        let sock = addrs
            .next()
            .ok_or_else(|| format!("resolve {}: no addresses", self.addr))?;
        let mut stream = TcpStream::connect_timeout(&sock, PEER_CONNECT_TIMEOUT)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_nodelay(true);
        // The handshake is the one serial exchange on the stream, bounded
        // by a read timeout; afterwards the reader blocks indefinitely
        // (per-request deadlines live in `MuxConn::request`).  Sends stay
        // deadline-bounded for the connection's whole life: a stalled
        // peer with a full receive buffer would otherwise block
        // `write_frame` forever *while holding the writer mutex*, wedging
        // every other request on the link — and the `shutdown` that would
        // tear it down.  A timed-out (possibly partial) send poisons the
        // connection, which is dropped, so no desynchronised stream is
        // ever reused.
        let _ = stream.set_write_timeout(Some(PEER_REPLY_TIMEOUT));
        let _ = stream.set_read_timeout(Some(PEER_REPLY_TIMEOUT));
        // Same version floor as every other client of this build; the
        // federation vocabulary exists since v2, which MIN_SUPPORTED_VERSION
        // already guarantees.
        write_frame(
            &mut stream,
            &ClientFrame::Hello {
                min_version: MIN_SUPPORTED_VERSION,
                max_version: PROTOCOL_VERSION,
            },
        )
        .map_err(|e| format!("hello: {e}"))?;
        match read_server_frame(&mut stream) {
            Ok(Some(ServerFrame::HelloAck { version })) if version >= MIN_SUPPORTED_VERSION => {}
            Ok(Some(ServerFrame::HelloAck { version })) => {
                return Err(format!("peer only speaks protocol v{version}"))
            }
            Ok(Some(ServerFrame::HelloReject { message })) => {
                return Err(format!("peer rejected the connection: {message}"))
            }
            other => return Err(format!("handshake failed: {other:?}")),
        }
        let _ = stream.set_read_timeout(None);
        let read_stream = stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?;
        let conn = Arc::new(MuxConn {
            domain: Mutex::new(String::new()),
            writer: Mutex::new(stream),
            pending: crate::shard::ShardedMap::new(crate::shard::DEFAULT_SHARDS),
            dead: Mutex::new(None),
            corr: AtomicU64::new(0),
            reader: Mutex::new(None),
        });
        let reader_conn = conn.clone();
        let reader = std::thread::spawn(move || run_link_reader(reader_conn, read_stream));
        *conn.reader.lock() = Some(reader);

        // Pool-sync rides the mux like every later request.  The `have`
        // vector tells the peer what this daemon already holds, so its
        // `PoolsSynced` reply piggybacks exactly the missing deltas.
        let reply = conn.request(|corr| ClientFrame::SyncPools {
            corr,
            domain: my_domain.to_string(),
            pools: my_pools,
            have: my_have,
        });
        match reply {
            Ok(ServerFrame::PoolsSynced {
                domain,
                pools,
                deltas,
                ..
            }) => {
                *conn.domain.lock() = domain;
                Ok((conn, pools, deltas))
            }
            Ok(ServerFrame::Error { error, .. }) => {
                conn.shutdown();
                Err(format!("pool sync refused: {error}"))
            }
            Ok(other) => {
                conn.shutdown();
                Err(format!("expected PoolsSynced, got {other:?}"))
            }
            Err(e) => {
                conn.shutdown();
                Err(e)
            }
        }
    }

    /// Returns a live connection, dialing (with redial backoff) when none
    /// exists or the previous one died.  The slot lock is held only for
    /// the establishment itself — requests on the returned connection run
    /// outside it, concurrently.
    fn ensure_conn(
        &self,
        my_domain: &str,
        my_sync: impl FnOnce() -> (Vec<String>, Vec<AdvertVersion>),
    ) -> Result<(Arc<MuxConn>, Option<PeerAdvertisement>), String> {
        let mut slot = self.conn.lock();
        if let Some(conn) = &*slot {
            if conn.dead.lock().is_none() {
                return Ok((conn.clone(), None));
            }
            // The reader declared it dead since last use: retire it
            // before redialing.
            let stale = slot.take().expect("connection just seen");
            stale.shutdown();
        }
        // Redial backoff: a recently failed connect is not repeated, so
        // neither queries nor the periodic gossip tick pay a full connect
        // timeout per attempt against a dead peer — and the window grows
        // per consecutive failure, so a long-dead peer costs ever less.
        if !self.redial.lock().permits(std::time::Instant::now()) {
            return Err(format!(
                "peer {} is in redial backoff after a failed connect",
                self.addr
            ));
        }
        let (pools, have) = my_sync();
        let (conn, pools, deltas) = match self.connect(my_domain, pools, have) {
            Ok(established) => established,
            Err(e) => {
                self.redial.lock().note_failure(std::time::Instant::now());
                return Err(e);
            }
        };
        self.redial.lock().note_success();
        // A redial re-learns the peer's advertisement — a peer that
        // restarted with different pools (or a different domain name)
        // must replace its stale directory records, not be routed to
        // from them.
        let learned = conn.domain();
        let previous_domain = self.last_domain.lock().replace(learned.clone());
        let fresh = Some(PeerAdvertisement {
            domain: learned,
            pools,
            previous_domain,
            deltas,
        });
        *slot = Some(conn.clone());
        Ok((conn, fresh))
    }

    /// Runs `f` over a live connection (establishing one first if
    /// necessary).  Returns the freshly learned advertisement when a new
    /// connection was made, so the caller can refresh its peer directory.
    /// Any failure drops the connection — unless a concurrent request
    /// already replaced it with a newer one, which is left alone.
    fn with_conn<R>(
        &self,
        my_domain: &str,
        my_sync: impl FnOnce() -> (Vec<String>, Vec<AdvertVersion>),
        f: impl FnOnce(&MuxConn) -> Result<R, String>,
    ) -> Result<(R, Option<PeerAdvertisement>), String> {
        let (conn, fresh) = self.ensure_conn(my_domain, my_sync)?;
        match f(&conn) {
            Ok(value) => Ok((value, fresh)),
            Err(e) => {
                self.retire(&conn);
                Err(e)
            }
        }
    }

    /// Drops `failed` if it is still the pooled connection; a newer
    /// connection another thread already dialed is kept.
    fn retire(&self, failed: &Arc<MuxConn>) {
        let taken = {
            let mut slot = self.conn.lock();
            match &*slot {
                Some(current) if Arc::ptr_eq(current, failed) => slot.take(),
                _ => None,
            }
        };
        if let Some(conn) = taken {
            conn.shutdown();
        } else {
            // Still close the failed transport itself.
            failed.shutdown();
        }
    }

    /// Drops the connection (peer declared dead or backend shutting down).
    fn disconnect(&self) {
        let taken = self.conn.lock().take();
        if let Some(conn) = taken {
            conn.shutdown();
        }
    }
}

/// The per-link reader: routes every reply frame to the request whose
/// correlation id it echoes, and poisons the connection on transport
/// death so in-flight and future requests fail fast.
fn run_link_reader(conn: Arc<MuxConn>, mut stream: TcpStream) {
    loop {
        match read_server_frame(&mut stream) {
            Ok(Some(frame)) => match crate::remote::corr_of(&frame) {
                Some(corr) => {
                    let sender = conn.pending.remove(corr.0);
                    if let Some(sender) = sender {
                        let _ = sender.send(frame);
                    } else if corr.0 >= conn.corr.load(Ordering::Relaxed) {
                        // A correlation id this link never issued: the
                        // peer is desynchronised or hostile — fail the
                        // whole link NOW rather than letting every
                        // in-flight request ride out its full reply
                        // timeout (the fast-fail the serial link had).
                        conn.poison(format!(
                            "reply out of correlation (id {} never issued): {frame:?}",
                            corr.0
                        ));
                        break;
                    }
                    // An *issued* id with no waiter lost its race with a
                    // request timeout: dropped silently.
                }
                None => {
                    conn.poison("unexpected handshake frame on an established link".to_string());
                    break;
                }
            },
            Ok(None) => {
                conn.poison("peer closed the connection".to_string());
                break;
            }
            Err(e) => {
                conn.poison(e.to_string());
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The federated backend
// ---------------------------------------------------------------------------

/// Configuration of one federated daemon.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// This daemon's administrative-domain name (must be unique across the
    /// federation; it is what the visited lists carry).
    pub domain: String,
    /// Delegation time-to-live granted to queries originating here.
    pub ttl: u32,
    /// Addresses of the peer daemons queries may be delegated to.
    pub peers: Vec<StageAddress>,
    /// Period of the anti-entropy gossip tick that pushes advertisement
    /// deltas over idle peer links.  [`Duration::ZERO`] disables the
    /// tick — deltas then travel only by piggybacking on request traffic.
    pub gossip_interval: Duration,
    /// Whether the learned one-hop routing cache is consulted (disabling
    /// it is the baseline of the routing benchmark).
    pub route_cache: bool,
    /// Period of the peer-link health probe (driven off the reactor's
    /// timer wheel): each round sends a cheap inline-answered frame over
    /// every *established* link, so a dead peer is noticed and pruned
    /// from the directory before the next delegation fails against it.
    /// Probes never dial down links — healing is the gossip tick's job.
    /// [`Duration::ZERO`] disables probing.
    pub probe_interval: Duration,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            domain: String::new(),
            ttl: 8,
            peers: Vec::new(),
            gossip_interval: Duration::from_secs(1),
            route_cache: true,
            probe_interval: Duration::from_secs(5),
        }
    }
}

/// A ticket issued by the federated wrapper: the inner backend's ticket
/// plus the rendered query text, kept so a local failure can be delegated.
struct PendingTicket {
    inner: Ticket,
    query: String,
}

/// Any [`ResourceManager`] backend extended with wide-area delegation.
///
/// Wraps the domain's local backend; queries are always submitted locally
/// first, and a ticket whose local outcome is a [delegable](is_delegable)
/// failure is settled by forwarding the query to peer daemons with a TTL
/// and visited-domain list — the paper's inter-domain cooperation, over
/// the wire.  Allocations obtained from a peer are tracked so
/// [`ResourceManager::release`] routes them back to the domain that made
/// them (hop by hop, for multi-hop chains).
///
/// Hosted behind [`crate::remote::serve_federated`], the wrapper also
/// answers *incoming* [`ClientFrame::Delegate`] requests from peers via
/// [`FederatedBackend::handle_delegate`], continuing chains that started
/// elsewhere.
pub struct FederatedBackend {
    inner: Box<dyn ResourceManager>,
    config: FederationConfig,
    brand: u64,
    next: AtomicU64,
    tickets: Mutex<HashMap<u64, PendingTicket>>,
    links: Vec<PeerLink>,
    /// Directory of the WAN neighbourhood: every peer domain is registered
    /// as a pool manager, its advertised pools as instance records.  A
    /// peer whose connection dies is pruned with
    /// [`LocalDirectoryService::unregister_pool_manager`].
    peer_directory: SharedDirectory,
    /// The intra-domain directory of the wrapped backend, when it has one
    /// (pipeline backends); the source of this daemon's own pool
    /// advertisements.
    local_directory: Option<SharedDirectory>,
    /// Allocations obtained from peers, keyed by access key, mapped to
    /// the peer domain they must be released through.
    remote_leases: Mutex<HashMap<String, String>>,
    /// Stable instance numbers for *inbound* advertisements (domains that
    /// connected to us), allocated from `u32::MAX` downwards so they can
    /// never collide with outbound link indices — or each other, which
    /// would let one inbound peer's records overwrite another's.
    inbound_instances: Mutex<HashMap<String, u32>>,
    /// The anti-entropy gossip plane: this domain's advertisement log,
    /// every origin learned from peers, and what each peer has acked.
    gossip: GossipPlane,
    /// The local-directory generation the gossip log last absorbed, so
    /// `refresh_gossip` is a counter compare in the common (unchanged)
    /// case.  Starts at a sentinel no real generation takes, forcing the
    /// first refresh.
    gossip_generation: AtomicU64,
    /// The learned one-hop delegation routes (pool → direct peer domain).
    route_cache: RouteCache,
    /// Reconnects of previously established peer links — the count the
    /// gossip smoke test asserts stays zero while deltas keep healthy
    /// links fresh.
    peer_redials: AtomicU64,
    delegations_out: AtomicU64,
    delegations_in: AtomicU64,
    /// Routing state after the most recent delegation chain (tests and
    /// diagnostics).
    last_chain: Mutex<Option<RoutingState>>,
    closed: AtomicBool,
}

impl FederatedBackend {
    /// Wraps `inner` for the given federation topology.  `local_directory`
    /// (the wrapped backend's intra-domain directory, when it has one)
    /// feeds this daemon's pool advertisements to peers.
    pub fn new(
        inner: Box<dyn ResourceManager>,
        config: FederationConfig,
        local_directory: Option<SharedDirectory>,
    ) -> Self {
        let links = config
            .peers
            .iter()
            .enumerate()
            .map(|(i, addr)| PeerLink::new(addr.clone(), i as u32))
            .collect();
        let gossip = GossipPlane::new(&config.domain);
        let route_cache = RouteCache::new(config.route_cache);
        FederatedBackend {
            inner,
            config,
            brand: crate::api::next_backend_brand(),
            next: AtomicU64::new(0),
            tickets: Mutex::new(HashMap::new()),
            links,
            peer_directory: LocalDirectoryService::new().into_shared(),
            local_directory,
            remote_leases: Mutex::new(HashMap::new()),
            inbound_instances: Mutex::new(HashMap::new()),
            gossip,
            gossip_generation: AtomicU64::new(u64::MAX),
            route_cache,
            peer_redials: AtomicU64::new(0),
            delegations_out: AtomicU64::new(0),
            delegations_in: AtomicU64::new(0),
            last_chain: Mutex::new(None),
            closed: AtomicBool::new(false),
        }
    }

    /// This daemon's domain name.
    pub fn domain(&self) -> &str {
        &self.config.domain
    }

    /// The directory of peer domains and their advertised pools.
    pub fn peer_directory(&self) -> &SharedDirectory {
        &self.peer_directory
    }

    /// The wrapped backend (inspection).
    pub fn inner(&self) -> &dyn ResourceManager {
        self.inner.as_ref()
    }

    /// Routing state after the most recent delegation chain this daemon
    /// originated or continued (`None` before the first delegation).
    pub fn last_chain(&self) -> Option<RoutingState> {
        self.last_chain.lock().clone()
    }

    /// Pool names this daemon advertises to peers.
    pub fn local_pools(&self) -> Vec<String> {
        match &self.local_directory {
            Some(dir) => dir.pool_names(),
            None => Vec::new(),
        }
    }

    /// The anti-entropy gossip plane (inspection, and the server's gossip
    /// tick / frame handlers).
    pub fn gossip(&self) -> &GossipPlane {
        &self.gossip
    }

    /// The learned one-hop delegation-route cache.
    pub fn route_cache(&self) -> &RouteCache {
        &self.route_cache
    }

    /// Reconnects of previously established peer links.
    pub fn peer_redials(&self) -> u64 {
        self.peer_redials.load(Ordering::Relaxed)
    }

    /// The configured anti-entropy period ([`Duration::ZERO`] = no tick).
    pub fn gossip_interval(&self) -> Duration {
        self.config.gossip_interval
    }

    /// Brings the own-origin advertisement log up to date with the local
    /// directory.  A generation compare makes the unchanged case (every
    /// call between directory mutations) two atomic loads.
    pub fn refresh_gossip(&self) {
        let generation = match &self.local_directory {
            Some(dir) => dir.generation(),
            None => 0,
        };
        if self.gossip_generation.swap(generation, Ordering::Relaxed) != generation {
            self.gossip.refresh_local(&self.local_pools());
        }
    }

    /// The payload every outbound handshake carries: this daemon's pool
    /// advertisements and its gossip version vector.
    fn sync_payload(&self) -> (Vec<String>, Vec<AdvertVersion>) {
        self.refresh_gossip();
        (self.local_pools(), self.gossip.version_vector())
    }

    /// Applies inbound advertisement deltas (piggybacked or pushed) and
    /// folds the resulting events into the peer directory and the route
    /// cache — the same delta that announces a pool's death retires its
    /// directory record and kills any cached route to it.
    pub fn apply_gossip_deltas(&self, deltas: &[AdvertDelta]) {
        for event in self.gossip.apply(deltas) {
            match event {
                GossipEvent::PoolUp { origin, pool } => {
                    self.register_gossiped_pool(&origin, &pool);
                }
                GossipEvent::PoolDown { origin, pool } => {
                    self.route_cache.invalidate_pool(&pool);
                    let instances: Vec<u32> = self
                        .peer_directory
                        .instances(&pool)
                        .iter()
                        .filter(|r| r.manager == origin)
                        .map(|r| r.instance)
                        .collect();
                    for instance in instances {
                        self.peer_directory.unregister_pool(&pool, instance);
                    }
                }
                GossipEvent::OriginReset { origin } => {
                    self.route_cache.invalidate_next_hop(&origin);
                    self.peer_directory.unregister_pool_manager(&origin);
                }
            }
        }
    }

    /// Registers one gossiped pool under its origin domain.  An origin we
    /// hold a direct link to reuses that link's address and instance
    /// number (the records delegation actually routes by); any other
    /// origin gets an inbound-style record — observability and candidate
    /// preference once a route to it exists.
    fn register_gossiped_pool(&self, origin: &str, pool: &str) {
        let (address, instance) = match self.link_for(origin) {
            Some(link) => (link.addr.clone(), link.index),
            None => {
                let instance = {
                    let mut instances = self.inbound_instances.lock();
                    let next = u32::MAX - instances.len() as u32;
                    *instances.entry(origin.to_string()).or_insert(next)
                };
                (StageAddress::new(origin.to_string(), 0), instance)
            }
        };
        self.peer_directory.register_pool_manager(origin);
        self.peer_directory.register_pool(PoolInstanceRecord {
            pool: pool.to_string(),
            instance,
            manager: origin.to_string(),
            address,
        });
    }

    /// Serves an inbound `AdvertDelta` push from `peer`: applies its
    /// deltas, records its version vector, and returns the reply deltas
    /// (everything this daemon holds beyond `have`) for the `AdvertAck`.
    pub fn handle_advert_delta(
        &self,
        peer: &str,
        deltas: &[AdvertDelta],
        have: &[AdvertVersion],
    ) -> Vec<AdvertDelta> {
        self.apply_gossip_deltas(deltas);
        self.gossip.note_peer_versions(peer, have);
        self.refresh_gossip();
        let reply = self.gossip.deltas_since(have);
        // Optimistic: the peer applies the reply on receipt.  If the ack
        // is lost with its link, the peer's next push carries a fresh
        // `have` that corrects this.
        self.gossip.note_acked(peer, self.gossip.version_vector());
        reply
    }

    /// Deltas to piggyback on a reply to `peer` (its acked vector decides
    /// what is new to it).  Piggybacking never advances the acked state —
    /// the carrier reply may be lost — so a delta can ship twice;
    /// application is idempotent.
    pub fn piggyback_deltas(&self, peer: &str) -> Vec<AdvertDelta> {
        self.refresh_gossip();
        self.gossip.deltas_for_peer(peer)
    }

    /// One anti-entropy exchange with the peer behind `link`: push our
    /// deltas and version vector, apply what the ack carries back.
    /// Dials the link if it is down (subject to the redial backoff), so
    /// the periodic tick also heals the topology.
    fn gossip_exchange(&self, link: &PeerLink) -> Result<(), String> {
        let (conn, fresh) = link.ensure_conn(&self.config.domain, || self.sync_payload())?;
        self.note_fresh_advertisement(link, fresh);
        let peer = conn.domain();
        if peer.is_empty() {
            return Err("peer domain not yet known".to_string());
        }
        self.refresh_gossip();
        let vector = self.gossip.version_vector();
        let deltas = self.gossip.deltas_for_peer(&peer);
        let have = vector.clone();
        let my_domain = self.config.domain.clone();
        let reply = conn.request(move |corr| ClientFrame::AdvertDelta {
            corr,
            domain: my_domain,
            deltas,
            have,
        });
        match reply {
            Ok(ServerFrame::AdvertAck { deltas, .. }) => {
                // The peer applied everything up to `vector` before
                // answering.
                self.gossip.note_acked(&peer, vector);
                self.apply_gossip_deltas(&deltas);
                Ok(())
            }
            Ok(other) => {
                link.retire(&conn);
                Err(format!("expected AdvertAck, got {other:?}"))
            }
            Err(e) => {
                link.retire(&conn);
                Err(e)
            }
        }
    }

    /// One round of the anti-entropy tick: an exchange with every peer
    /// link.  Failures are per-link and non-fatal (a dead peer is in
    /// redial backoff; the next round retries).
    pub fn gossip_tick(&self) {
        if self.closed.load(Ordering::SeqCst) {
            return;
        }
        for link in &self.links {
            let _ = self.gossip_exchange(link);
        }
    }

    /// The configured peer health-probe period ([`Duration::ZERO`] = no
    /// probing).
    pub fn probe_interval(&self) -> Duration {
        self.config.probe_interval
    }

    /// One health-probe round: every peer link with an *established*
    /// connection gets a cheap inline-answered request on a short
    /// deadline; a link that fails it is torn down and its peer pruned
    /// from the directory ([`PeerDelegator::peer_failed`]), so the next
    /// delegation never wastes a hop on a dead candidate.  Links without
    /// a connection are left alone — probes detect death, the gossip
    /// tick (with its redial backoff) heals.  Returns the number of
    /// peers the round declared dead.
    pub fn probe_peers(&self) -> usize {
        if self.closed.load(Ordering::SeqCst) {
            return 0;
        }
        let mut pruned = 0;
        for link in &self.links {
            let Some(conn) = link.conn.lock().clone() else {
                continue;
            };
            let already_dead = conn.dead.lock().is_some();
            let healthy = !already_dead
                && matches!(
                    conn.request_deadline(PEER_PROBE_TIMEOUT, |corr| ClientFrame::Stats { corr }),
                    Ok(ServerFrame::StatsReply { .. })
                );
            if healthy {
                continue;
            }
            link.retire(&conn);
            let domain = {
                let name = conn.domain();
                if name.is_empty() {
                    link.last_domain.lock().clone().unwrap_or_default()
                } else {
                    name
                }
            };
            if !domain.is_empty() {
                self.peer_failed(&domain);
            }
            pruned += 1;
        }
        pruned
    }

    /// Retires everything held under a peer's *old* domain name after it
    /// re-advertised as somebody else: directory records, gossip origin
    /// log, acked state, and every learned route through or to it.
    pub fn retire_domain(&self, old: &str) {
        for pool in self.gossip.live_pools(old) {
            self.route_cache.invalidate_pool(&pool);
        }
        self.route_cache.invalidate_next_hop(old);
        self.peer_directory.unregister_pool_manager(old);
        self.gossip.forget_origin(old);
        self.gossip.retire_peer(old);
    }

    /// Records the advertisement of a peer that connected *to us* (its
    /// listen address is unknown, so the record is observability only,
    /// never a delegation candidate).  Each inbound domain gets a stable
    /// instance number of its own, so two inbound peers advertising the
    /// same pool name never overwrite each other's records.
    pub fn record_inbound_advertisement(&self, domain: &str, pools: &[String]) {
        let instance = {
            let mut instances = self.inbound_instances.lock();
            let next = u32::MAX - instances.len() as u32;
            *instances.entry(domain.to_string()).or_insert(next)
        };
        self.record_peer_advertisement(
            domain,
            pools,
            StageAddress::new(domain.to_string(), 0),
            instance,
        );
    }

    /// Records a peer's advertisement in the peer directory (stale records
    /// for the same domain are replaced).
    pub fn record_peer_advertisement(
        &self,
        domain: &str,
        pools: &[String],
        address: StageAddress,
        instance: u32,
    ) {
        self.peer_directory.unregister_pool_manager(domain);
        self.peer_directory.register_pool_manager(domain);
        for pool in pools {
            self.peer_directory.register_pool(PoolInstanceRecord {
                pool: pool.clone(),
                instance,
                manager: domain.to_string(),
                address: address.clone(),
            });
        }
    }

    /// Serves an incoming `Delegate` request from a peer daemon: spends a
    /// hop visiting this domain, tries the local backend, forwards further
    /// when possible.  Returns the outcome plus the routing state after
    /// the whole chain, for the `Delegated` reply.
    pub fn handle_delegate(
        &self,
        query: &str,
        ttl: u32,
        visited: Vec<String>,
    ) -> (QueryOutcome, RoutingState) {
        self.delegations_in.fetch_add(1, Ordering::Relaxed);
        // The incoming TTL is honoured as-is: it was bounded by the
        // *originator's* policy, and clamping it to this daemon's own
        // (possibly lower) TTL would collapse the originator's remaining
        // budget when the clamped value flows back through the reply.
        // The work a hostile peer can demand stays bounded regardless:
        // every chain visits each domain at most once.
        let state = RoutingState { ttl, visited };
        if state.has_visited(&self.config.domain) {
            // A conforming peer never revisits: refuse instead of looping.
            return (
                Err(AllocationError::Protocol(format!(
                    "domain `{}` already visited by this query",
                    self.config.domain
                ))),
                state,
            );
        }
        let (outcome, state) = run_chain(
            &self.config.domain,
            query,
            state,
            |q| self.inner.submit_text_wait(q),
            self,
        );
        *self.last_chain.lock() = Some(state.clone());
        (outcome, state)
    }

    /// Settles a locally failed outcome by delegating the query to peers.
    fn federate_after_local_failure(
        &self,
        query: &str,
        local_error: AllocationError,
    ) -> QueryOutcome {
        let state = RoutingState::new(self.config.ttl);
        let (outcome, state) = run_chain(
            &self.config.domain,
            query,
            state,
            |_| Err(local_error),
            self,
        );
        *self.last_chain.lock() = Some(state);
        outcome
    }

    /// Resolves an inner outcome: delegable failures go to the federation
    /// (when this daemon has peers at all).
    fn settle(&self, query: &str, outcome: QueryOutcome) -> QueryOutcome {
        match outcome {
            Err(error) if is_delegable(&error) && !self.links.is_empty() => {
                self.federate_after_local_failure(query, error)
            }
            other => other,
        }
    }

    fn link_for(&self, domain: &str) -> Option<&PeerLink> {
        self.links
            .iter()
            .find(|link| link.last_domain.lock().as_deref() == Some(domain))
    }

    /// The pool names the query would map to (preference signal for
    /// candidate ordering; empty if the text does not parse).
    fn wanted_pools(&self, query: &str) -> Vec<String> {
        match actyp_query::parse_query(query) {
            Ok(parsed) => parsed
                .decompose(16)
                .iter()
                .map(|basic| actyp_query::PoolName::from_query(basic).full())
                .collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Bounded redemption that *never delegates*: the local outcome is
    /// returned as-is, delegable failure or not.
    ///
    /// This is the "settle locally only" hint the server's session
    /// teardown plumbs through when it settles tickets a vanished client
    /// abandoned (ROADMAP "teardown delegation churn"): there is nobody
    /// left to use an allocation a peer would make, so shipping the query
    /// across the WAN — and then releasing the result hop by hop — would
    /// be pure churn.  Clients redeeming their own tickets keep the full
    /// federating behaviour of [`ResourceManager::wait_deadline`].
    pub fn wait_deadline_local(&self, ticket: Ticket, timeout: Duration) -> Option<QueryOutcome> {
        if ticket.brand() != self.brand {
            return Some(Err(AllocationError::UnknownTicket));
        }
        let pending = match self.tickets.lock().remove(&ticket.id()) {
            Some(pending) => pending,
            None => return Some(Err(AllocationError::UnknownTicket)),
        };
        match self.inner.wait_deadline(pending.inner, timeout) {
            Some(outcome) => Some(outcome),
            None => {
                // Deadline elapsed: the ticket stays redeemable for a
                // later settling round.
                self.tickets.lock().insert(ticket.id(), pending);
                None
            }
        }
    }

    fn take_ticket(&self, ticket: Ticket) -> Result<PendingTicket, AllocationError> {
        if ticket.brand() != self.brand {
            return Err(AllocationError::UnknownTicket);
        }
        self.tickets
            .lock()
            .remove(&ticket.id())
            .ok_or(AllocationError::UnknownTicket)
    }
}

impl FederatedBackend {
    /// Folds a freshly learned advertisement (new connection on `link`)
    /// into the peer directory.  A redial replaces the peer's stale
    /// records wholesale — including under its *old* domain name, if the
    /// peer came back identifying as somebody else.
    fn note_fresh_advertisement(&self, link: &PeerLink, fresh: Option<PeerAdvertisement>) {
        let Some(adv) = fresh else { return };
        // A link that had a domain before this connect was *re*dialed —
        // the healthy-link regime the gossip plane exists to preserve
        // never pays this.
        if adv.previous_domain.is_some() {
            self.peer_redials.fetch_add(1, Ordering::Relaxed);
        }
        match &adv.previous_domain {
            Some(previous) if previous != &adv.domain => {
                // The peer came back identifying as a different domain:
                // retire the old name wholesale (directory records,
                // gossip origin, learned routes).
                self.retire_domain(previous);
            }
            _ => {}
        }
        self.record_peer_advertisement(&adv.domain, &adv.pools, link.addr.clone(), link.index);
        self.apply_gossip_deltas(&adv.deltas);
    }
}

impl PeerDelegator for FederatedBackend {
    /// Peer domains, peers advertising a pool the query maps to first.
    ///
    /// A link whose domain is already known is offered from its cached
    /// identity WITHOUT touching the connection mutex: the link may be
    /// busy carrying another chain's `Delegate` right now, and blocking
    /// on it here would distributed-deadlock two mutually peered daemons
    /// that delegate to each other at the same time.  Only a
    /// never-yet-contacted link is dialed (that is how its domain name
    /// becomes known at all); whether an offered link is *currently*
    /// reachable is discovered by `delegate` itself.
    fn candidates(&self, query: &str, _state: &RoutingState) -> Vec<String> {
        let wanted = self.wanted_pools(query);
        let mut preferred = Vec::new();
        let mut rest = Vec::new();
        for link in &self.links {
            let known = link.last_domain.lock().clone();
            let domain = match known {
                Some(domain) => domain,
                None => {
                    let ensured = link.with_conn(
                        &self.config.domain,
                        || self.sync_payload(),
                        |conn| Ok(conn.domain()),
                    );
                    match ensured {
                        Ok((domain, fresh)) => {
                            self.note_fresh_advertisement(link, fresh);
                            domain
                        }
                        Err(_) => continue,
                    }
                }
            };
            let advertises_wanted = wanted.iter().any(|pool| {
                self.peer_directory
                    .instances(pool)
                    .iter()
                    .any(|r| r.manager == domain)
            });
            if advertises_wanted {
                preferred.push(domain);
            } else {
                rest.push(domain);
            }
        }
        preferred.extend(rest);
        // The learned route cache is a pure *reordering* on top of the
        // candidate list: a remembered next hop for a pool the query maps
        // to is moved to the front.  Membership never changes, so every
        // TTL/visited invariant of the uncached walk holds as-is, and a
        // stale hit costs at most one wasted first probe.
        if !wanted.is_empty() && self.route_cache.enabled() {
            let learned = wanted
                .iter()
                .find_map(|pool| self.route_cache.next_hop(pool));
            if let Some(hop) = learned {
                if let Some(pos) = preferred.iter().position(|d| *d == hop) {
                    let hop = preferred.remove(pos);
                    preferred.insert(0, hop);
                }
            }
        }
        preferred
    }

    fn delegate(
        &self,
        domain: &str,
        query: &str,
        state: &RoutingState,
    ) -> Result<(QueryOutcome, RoutingState), PeerUnavailable> {
        let link = self.link_for(domain).ok_or_else(|| PeerUnavailable {
            transport: true,
            reason: format!("no link to domain `{domain}`"),
        })?;
        let ttl = state.ttl;
        let visited = state.visited.clone();
        let sent = link.with_conn(
            &self.config.domain,
            || self.sync_payload(),
            |conn| {
                conn.request(|corr| ClientFrame::Delegate {
                    corr,
                    query: query.to_string(),
                    ttl,
                    visited: visited.clone(),
                })
            },
        );
        let (reply, fresh) = sent.map_err(|reason| PeerUnavailable {
            transport: true,
            reason,
        })?;
        // A reconnect mid-delegation re-learns the peer's advertisement.
        self.note_fresh_advertisement(link, fresh);
        match reply {
            ServerFrame::Delegated {
                outcome,
                ttl,
                visited,
                deltas,
                ..
            } => {
                // Counted only for delegations a peer actually served, so
                // the stat measures real WAN traffic, not dial attempts.
                self.delegations_out.fetch_add(1, Ordering::Relaxed);
                // Advertisement news piggybacked on the reply.
                self.apply_gossip_deltas(&deltas);
                if let Ok(allocations) = &outcome {
                    // Remember which domain every remote allocation must be
                    // released through; the next repeat query for the same
                    // pool goes straight to this hop.
                    let mut leases = self.remote_leases.lock();
                    for allocation in allocations {
                        leases.insert(allocation.access_key.0.clone(), domain.to_string());
                        self.route_cache.learn(&allocation.pool, domain);
                    }
                }
                Ok((outcome, RoutingState { ttl, visited }))
            }
            ServerFrame::Error { error, .. } => {
                // The peer answered but refused (not federated, or
                // overloaded): skip it for this chain WITHOUT dropping
                // the connection — tearing a healthy link down would end
                // its session on the peer and release any allocation
                // leases our clients still hold through it.
                Err(PeerUnavailable {
                    transport: false,
                    reason: format!("peer refused delegation: {error}"),
                })
            }
            // A reply that violates the protocol means the stream can no
            // longer be trusted: drop the connection.
            other => Err(PeerUnavailable {
                transport: true,
                reason: format!("expected Delegated, got {other:?}"),
            }),
        }
    }

    /// Drops the link and prunes the dead peer's pools from the peer
    /// directory, so its stale records stop being routable.
    fn peer_failed(&self, domain: &str) {
        if let Some(link) = self.link_for(domain) {
            link.disconnect();
        }
        self.peer_directory.unregister_pool_manager(domain);
        // Routes through the dead hop are unusable, and what it acked is
        // moot — after the redial the handshake resyncs from scratch.
        self.route_cache.invalidate_next_hop(domain);
        self.gossip.retire_peer(domain);
    }
}

impl ResourceManager for FederatedBackend {
    fn submit(&self, query: actyp_query::Query) -> Result<Ticket, AllocationError> {
        let rendered = query.to_string();
        let inner = self.inner.submit(query)?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.tickets.lock().insert(
            id,
            PendingTicket {
                inner,
                query: rendered,
            },
        );
        Ok(Ticket::from_parts(self.brand, id))
    }

    /// Batches forward to the inner backend's own batch submission, so an
    /// over-window batch gets the same deadline-bounded backpressure on a
    /// federated daemon as on a plain one (the default per-query path
    /// would block in the window with no bound).  Every issued ticket
    /// still records its query text for later delegation.
    fn submit_batch(
        &self,
        queries: Vec<actyp_query::Query>,
    ) -> Result<Vec<Ticket>, AllocationError> {
        let rendered: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
        let inner = self.inner.submit_batch(queries)?;
        Ok(inner
            .into_iter()
            .zip(rendered)
            .map(|(inner, query)| {
                let id = self.next.fetch_add(1, Ordering::Relaxed);
                self.tickets
                    .lock()
                    .insert(id, PendingTicket { inner, query });
                Ticket::from_parts(self.brand, id)
            })
            .collect())
    }

    fn wait(&self, ticket: Ticket) -> QueryOutcome {
        let pending = self.take_ticket(ticket)?;
        let outcome = self.inner.wait(pending.inner);
        self.settle(&pending.query, outcome)
    }

    /// Bounded on the *local* wait only: once the local outcome is known,
    /// a delegable failure still triggers the (network-bound) federation
    /// chain, which may run past the deadline — the alternative would be
    /// to fail a query a peer could have satisfied.
    fn wait_deadline(&self, ticket: Ticket, timeout: Duration) -> Option<QueryOutcome> {
        if ticket.brand() != self.brand {
            return Some(Err(AllocationError::UnknownTicket));
        }
        let pending = match self.tickets.lock().remove(&ticket.id()) {
            Some(pending) => pending,
            None => return Some(Err(AllocationError::UnknownTicket)),
        };
        match self.inner.wait_deadline(pending.inner, timeout) {
            Some(outcome) => Some(self.settle(&pending.query, outcome)),
            None => {
                // Local deadline elapsed: the ticket stays redeemable.
                self.tickets.lock().insert(ticket.id(), pending);
                None
            }
        }
    }

    /// Non-blocking on the local backend; a delegable local failure is
    /// settled through the federation inline (see
    /// [`wait_deadline`](Self::wait_deadline) on why).
    fn try_poll(&self, ticket: Ticket) -> Option<QueryOutcome> {
        if ticket.brand() != self.brand {
            return Some(Err(AllocationError::UnknownTicket));
        }
        let mut tickets = self.tickets.lock();
        // A spent or forged ticket id is an *answer*, not a pending query.
        let Some(pending) = tickets.get(&ticket.id()) else {
            return Some(Err(AllocationError::UnknownTicket));
        };
        let outcome = self.inner.try_poll(pending.inner)?;
        let pending = tickets.remove(&ticket.id()).expect("entry just read");
        drop(tickets);
        Some(self.settle(&pending.query, outcome))
    }

    fn release(&self, allocation: &Allocation) -> Result<(), AllocationError> {
        // The lease mapping is only consumed once the release is truly
        // settled: dropping it up front would orphan the allocation's
        // routing if the peer answers with a transient error, leaving the
        // client no way to retry.
        let peer = self
            .remote_leases
            .lock()
            .get(&allocation.access_key.0)
            .cloned();
        let Some(domain) = peer else {
            return self.inner.release(allocation);
        };
        let Some(link) = self.link_for(&domain) else {
            // The link is gone entirely; the peer's session teardown has
            // already reclaimed the allocation on its side.
            self.remote_leases.lock().remove(&allocation.access_key.0);
            return Ok(());
        };
        let sent = link.with_conn(
            &self.config.domain,
            || self.sync_payload(),
            |conn| {
                conn.request(|corr| ClientFrame::Release {
                    corr,
                    allocation: allocation.clone(),
                })
            },
        );
        match sent {
            Ok((ServerFrame::Released { .. }, _)) => {
                self.remote_leases.lock().remove(&allocation.access_key.0);
                Ok(())
            }
            Ok((ServerFrame::Error { error, .. }, _)) => {
                // A double release is settled (drop the mapping); any
                // other failure keeps it so a retry still routes to the
                // owning domain.
                if error == AllocationError::UnknownAllocation {
                    self.remote_leases.lock().remove(&allocation.access_key.0);
                }
                Err(error)
            }
            Ok((other, _)) => Err(AllocationError::Protocol(format!(
                "expected Released, got {other:?}"
            ))),
            // The peer died holding the lease: its session teardown hands
            // the allocation back on that side, so the release is done as
            // far as this daemon can tell.
            Err(_) => {
                self.remote_leases.lock().remove(&allocation.access_key.0);
                self.peer_failed(&domain);
                Ok(())
            }
        }
    }

    fn stats(&self) -> StatsSnapshot {
        let mut stats = self.inner.stats();
        stats.delegations_out = self.delegations_out.load(Ordering::Relaxed);
        stats.delegations_in = self.delegations_in.load(Ordering::Relaxed);
        stats.in_flight = self.tickets.lock().len();
        stats.gossip_deltas_in = self.gossip.deltas_in();
        stats.gossip_deltas_out = self.gossip.deltas_out();
        stats.route_hits = self.route_cache.hits();
        stats.route_misses = self.route_cache.misses();
        stats.peer_redials = self.peer_redials.load(Ordering::Relaxed);
        // The inner backend already reported its own shard contention;
        // fold in the federated layer's peer-directory shards.
        stats.shard_contention = stats
            .shard_contention
            .saturating_add(self.peer_directory.contention());
        stats
    }

    fn shutdown(&self) -> Result<(), AllocationError> {
        if !self.closed.swap(true, Ordering::SeqCst) {
            for link in &self.links {
                link.disconnect();
            }
        }
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoPeers;
    impl PeerDelegator for NoPeers {
        fn candidates(&self, _query: &str, _state: &RoutingState) -> Vec<String> {
            Vec::new()
        }
        fn delegate(
            &self,
            _domain: &str,
            _query: &str,
            _state: &RoutingState,
        ) -> Result<(QueryOutcome, RoutingState), PeerUnavailable> {
            unreachable!("no peers to delegate to")
        }
    }

    #[test]
    fn chain_with_no_peers_returns_the_local_failure() {
        let (outcome, state) = run_chain(
            "a",
            "q",
            RoutingState::new(4),
            |_| Err(AllocationError::NoSuchResources),
            &NoPeers,
        );
        assert_eq!(outcome.unwrap_err(), AllocationError::NoSuchResources);
        assert_eq!(state.ttl, 3);
        assert_eq!(state.visited, vec!["a".to_string()]);
    }

    #[test]
    fn chain_with_zero_ttl_expires_without_local_work() {
        let (outcome, _) = run_chain(
            "a",
            "q",
            RoutingState::new(0),
            |_| panic!("local backend must not run"),
            &NoPeers,
        );
        assert_eq!(outcome.unwrap_err(), AllocationError::TtlExpired);
    }

    #[test]
    fn non_delegable_failures_stop_the_chain() {
        let (outcome, _) = run_chain(
            "a",
            "q",
            RoutingState::new(8),
            |_| Err(AllocationError::Parse("bad".into())),
            &NoPeers,
        );
        assert!(matches!(outcome, Err(AllocationError::Parse(_))));
    }

    #[test]
    fn merge_clamps_a_peer_that_tries_to_raise_the_ttl() {
        let state = RoutingState {
            ttl: 5,
            visited: vec!["a".to_string()],
        };
        let hostile = RoutingState {
            ttl: 99,
            visited: Vec::new(),
        };
        let merged = merge_states(state, hostile, "b");
        assert_eq!(merged.ttl, 4, "TTL can only shrink across a hop");
        assert!(merged.has_visited("a") && merged.has_visited("b"));
    }

    #[test]
    fn delegable_errors_are_exactly_the_curable_ones() {
        assert!(is_delegable(&AllocationError::NoSuchResources));
        assert!(is_delegable(&AllocationError::NoneAvailable));
        assert!(is_delegable(&AllocationError::ShadowAccountsExhausted));
        assert!(is_delegable(&AllocationError::TtlExpired));
        assert!(!is_delegable(&AllocationError::PolicyDenied));
        assert!(!is_delegable(&AllocationError::Parse("x".into())));
        assert!(!is_delegable(&AllocationError::UnknownTicket));
        assert!(!is_delegable(&AllocationError::Network("x".into())));
    }

    #[test]
    fn redial_backoff_doubles_per_consecutive_failure_and_caps() {
        let now = std::time::Instant::now();
        let mut backoff = RedialBackoff::new();
        assert!(backoff.permits(now), "a never-failed link dials freely");
        backoff.note_failure(now);
        assert_eq!(
            backoff.wait, PEER_REDIAL_BACKOFF,
            "first failure keeps the base wait"
        );
        assert!(!backoff.permits(now), "freshly failed: no immediate redial");
        assert!(
            backoff.permits(now + PEER_REDIAL_BACKOFF),
            "base window elapsed"
        );
        backoff.note_failure(now);
        assert_eq!(backoff.wait, PEER_REDIAL_BACKOFF * 2);
        assert!(
            !backoff.permits(now + PEER_REDIAL_BACKOFF),
            "window doubled"
        );
        assert!(backoff.permits(now + PEER_REDIAL_BACKOFF * 2));
        for _ in 0..16 {
            backoff.note_failure(now);
        }
        assert_eq!(backoff.wait, PEER_REDIAL_BACKOFF_MAX, "growth is capped");
        backoff.note_success();
        assert!(backoff.permits(now), "success resets the discipline");
        backoff.note_failure(now);
        assert_eq!(
            backoff.wait, PEER_REDIAL_BACKOFF,
            "and the wait restarts at base"
        );
    }
}
