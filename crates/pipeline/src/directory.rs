//! The local directory service.
//!
//! "Pool managers keep track of resource pools via a local directory
//! service.  Once a query has been mapped to a pool name, the pool manager
//! uses the directory service to retrieve pointers (i.e., machine names and
//! TCP/UDP ports) to all instances of resource pools with the particular
//! name" (Section 5.2.2).  Within an administrative domain, replicated
//! stages share information through this directory, so it is wrapped behind
//! a shared, lock-protected handle.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::message::StageAddress;

/// Directory record for one resource-pool instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolInstanceRecord {
    /// Full pool name (`signature/identifier`).
    pub pool: String,
    /// Instance number (pools can be replicated).
    pub instance: u32,
    /// Name of the pool manager hosting the instance.
    pub manager: String,
    /// Network address of the instance.
    pub address: StageAddress,
}

/// The directory shared by the pool managers of one administrative domain.
#[derive(Debug, Default)]
pub struct LocalDirectoryService {
    pools: BTreeMap<String, Vec<PoolInstanceRecord>>,
    pool_managers: Vec<String>,
    generation: u64,
}

/// Shared handle to a directory.
pub type SharedDirectory = Arc<RwLock<LocalDirectoryService>>;

impl LocalDirectoryService {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps the directory in the shared handle used by pipeline stages.
    pub fn into_shared(self) -> SharedDirectory {
        Arc::new(RwLock::new(self))
    }

    /// Registers a pool manager so peers can delegate queries to it.
    pub fn register_pool_manager(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.pool_managers.contains(&name) {
            self.pool_managers.push(name);
        }
    }

    /// Removes a pool manager *and every pool-instance record it hosted*
    /// (the manager failed, or a federation peer's connection died).
    /// Without this, a dead manager's name and its instance records stayed
    /// routable forever — queries kept being forwarded at a ghost.
    /// Returns `true` when the manager was registered.
    pub fn unregister_pool_manager(&mut self, name: &str) -> bool {
        let before = self.pool_managers.len();
        self.pool_managers.retain(|m| m != name);
        let removed = self.pool_managers.len() != before;
        let instances_before = self.instance_count();
        self.pools.retain(|_, entries| {
            entries.retain(|r| r.manager != name);
            !entries.is_empty()
        });
        if removed || self.instance_count() != instances_before {
            self.generation += 1;
        }
        removed
    }

    /// The pool managers known in this domain.
    pub fn pool_managers(&self) -> &[String] {
        &self.pool_managers
    }

    /// Registers a pool instance.  Registration is idempotent on
    /// `(pool, instance)`; re-registering replaces the record (a restarted
    /// instance may have a new address).
    pub fn register_pool(&mut self, record: PoolInstanceRecord) {
        let entry = self.pools.entry(record.pool.clone()).or_default();
        if let Some(existing) = entry.iter_mut().find(|r| r.instance == record.instance) {
            *existing = record;
        } else {
            entry.push(record);
        }
        self.generation += 1;
    }

    /// Removes a pool instance (pool destroyed or its host failed).
    pub fn unregister_pool(&mut self, pool: &str, instance: u32) -> bool {
        match self.pools.get_mut(pool) {
            Some(entries) => {
                let before = entries.len();
                entries.retain(|r| r.instance != instance);
                let removed = entries.len() != before;
                if entries.is_empty() {
                    self.pools.remove(pool);
                }
                if removed {
                    self.generation += 1;
                }
                removed
            }
            None => false,
        }
    }

    /// All registered instances of a pool name.
    pub fn instances(&self, pool: &str) -> Vec<PoolInstanceRecord> {
        self.pools.get(pool).cloned().unwrap_or_default()
    }

    /// Number of distinct pool names registered.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Total number of pool instances registered.
    pub fn instance_count(&self) -> usize {
        self.pools.values().map(Vec::len).sum()
    }

    /// The next unused instance number for a pool name, or `None` when the
    /// numbering space is exhausted.  The old `m + 1` here panicked in
    /// debug builds (and wrapped to a *colliding* instance 0 in release)
    /// once an instance reached `u32::MAX`.
    pub fn next_instance_number(&self, pool: &str) -> Option<u32> {
        match self
            .pools
            .get(pool)
            .and_then(|entries| entries.iter().map(|r| r.instance).max())
        {
            None => Some(0),
            Some(max) => max.checked_add(1),
        }
    }

    /// Iterates over every registered pool name.
    pub fn pool_names(&self) -> impl Iterator<Item = &String> {
        self.pools.keys()
    }

    /// A counter bumped on every mutation that changes the registered
    /// pool set.  The gossip plane polls it to decide cheaply whether the
    /// local advertisement log needs refreshing before a frame ships —
    /// unchanged generation means no directory diff is needed.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pool: &str, instance: u32, manager: &str) -> PoolInstanceRecord {
        PoolInstanceRecord {
            pool: pool.to_string(),
            instance,
            manager: manager.to_string(),
            address: StageAddress::new(format!("{manager}.purdue.edu"), 7300 + instance as u16),
        }
    }

    #[test]
    fn register_and_lookup_instances() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool(record("arch,==/sun", 0, "pm-a"));
        dir.register_pool(record("arch,==/sun", 1, "pm-b"));
        dir.register_pool(record("arch,==/hp", 0, "pm-a"));

        assert_eq!(dir.pool_count(), 2);
        assert_eq!(dir.instance_count(), 3);
        assert_eq!(dir.instances("arch,==/sun").len(), 2);
        assert_eq!(dir.instances("arch,==/hp").len(), 1);
        assert!(dir.instances("arch,==/linux").is_empty());
    }

    #[test]
    fn re_registration_replaces_the_record() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool(record("arch,==/sun", 0, "pm-a"));
        let mut updated = record("arch,==/sun", 0, "pm-a");
        updated.address = StageAddress::new("new-host.purdue.edu", 9999);
        dir.register_pool(updated.clone());
        let instances = dir.instances("arch,==/sun");
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].address, updated.address);
    }

    #[test]
    fn unregister_removes_instance_and_empty_pools() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool(record("p", 0, "pm-a"));
        dir.register_pool(record("p", 1, "pm-a"));
        assert!(dir.unregister_pool("p", 0));
        assert_eq!(dir.instances("p").len(), 1);
        assert!(dir.unregister_pool("p", 1));
        assert_eq!(dir.pool_count(), 0);
        assert!(!dir.unregister_pool("p", 7));
        assert!(!dir.unregister_pool("missing", 0));
    }

    #[test]
    fn next_instance_number_is_one_past_the_maximum() {
        let mut dir = LocalDirectoryService::new();
        assert_eq!(dir.next_instance_number("p"), Some(0));
        dir.register_pool(record("p", 0, "pm-a"));
        dir.register_pool(record("p", 3, "pm-b"));
        assert_eq!(dir.next_instance_number("p"), Some(4));
    }

    #[test]
    fn instance_number_exhaustion_is_surfaced_not_wrapped() {
        // Regression: `u32::MAX + 1` used to panic in debug builds and
        // wrap to a colliding instance 0 in release builds.
        let mut dir = LocalDirectoryService::new();
        dir.register_pool(PoolInstanceRecord {
            pool: "p".to_string(),
            instance: u32::MAX,
            manager: "pm-a".to_string(),
            address: StageAddress::new("pm-a.purdue.edu", 7300),
        });
        assert_eq!(dir.next_instance_number("p"), None);
        // Other pool names are unaffected.
        assert_eq!(dir.next_instance_number("q"), Some(0));
    }

    #[test]
    fn unregister_pool_manager_drops_its_instance_records() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool_manager("pm-a");
        dir.register_pool_manager("pm-b");
        dir.register_pool(record("p", 0, "pm-a"));
        dir.register_pool(record("p", 1, "pm-b"));
        dir.register_pool(record("q", 0, "pm-a"));

        assert!(dir.unregister_pool_manager("pm-a"));
        assert_eq!(dir.pool_managers(), &["pm-b".to_string()]);
        // pm-a's records are gone; pm-b's survive; the now-empty pool name
        // `q` is removed entirely.
        assert_eq!(dir.instances("p").len(), 1);
        assert_eq!(dir.instances("p")[0].manager, "pm-b");
        assert!(dir.instances("q").is_empty());
        assert_eq!(dir.pool_count(), 1);
        // Unregistering an unknown manager reports false and is harmless.
        assert!(!dir.unregister_pool_manager("pm-zz"));
        assert_eq!(dir.instance_count(), 1);
    }

    #[test]
    fn pool_manager_registration_is_idempotent() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool_manager("pm-a");
        dir.register_pool_manager("pm-b");
        dir.register_pool_manager("pm-a");
        assert_eq!(
            dir.pool_managers(),
            &["pm-a".to_string(), "pm-b".to_string()]
        );
    }

    #[test]
    fn generation_bumps_only_on_pool_set_changes() {
        let mut dir = LocalDirectoryService::new();
        let g0 = dir.generation();
        dir.register_pool(record("p", 0, "pm-a"));
        let g1 = dir.generation();
        assert!(g1 > g0);

        // A lookup does not bump it.
        let _ = dir.instances("p");
        assert_eq!(dir.generation(), g1);

        // A no-op unregister does not bump it.
        assert!(!dir.unregister_pool("p", 9));
        assert_eq!(dir.generation(), g1);

        assert!(dir.unregister_pool("p", 0));
        assert!(dir.generation() > g1);

        // Dropping a manager that hosted records bumps it too.
        dir.register_pool_manager("pm-a");
        dir.register_pool(record("q", 0, "pm-a"));
        let g2 = dir.generation();
        dir.unregister_pool_manager("pm-a");
        assert!(dir.generation() > g2);
    }

    #[test]
    fn shared_handle_supports_concurrent_access() {
        let dir = LocalDirectoryService::new().into_shared();
        dir.write().register_pool(record("p", 0, "pm-a"));
        let d2 = dir.clone();
        let handle = std::thread::spawn(move || d2.read().instance_count());
        assert_eq!(handle.join().unwrap(), 1);
    }
}
