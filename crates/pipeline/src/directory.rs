//! The local directory service.
//!
//! "Pool managers keep track of resource pools via a local directory
//! service.  Once a query has been mapped to a pool name, the pool manager
//! uses the directory service to retrieve pointers (i.e., machine names and
//! TCP/UDP ports) to all instances of resource pools with the particular
//! name" (Section 5.2.2).  Within an administrative domain, replicated
//! stages share information through this directory.
//!
//! The shared handle is a [`ShardedDirectory`]: pool names hash (FNV-1a)
//! onto independently locked shards of the plain [`LocalDirectoryService`],
//! so pool managers touching different pools never serialise on one
//! process-global `RwLock` — the old `Arc<RwLock<LocalDirectoryService>>`
//! was the first lock every session funneled through and capped the
//! daemon's core scaling.  The generation counter the gossip plane polls
//! is a lock-free atomic, so the per-frame "did the directory change?"
//! check costs a load instead of a read lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::message::StageAddress;
use crate::shard::{fnv1a, DEFAULT_SHARDS};

/// Directory record for one resource-pool instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolInstanceRecord {
    /// Full pool name (`signature/identifier`).
    pub pool: String,
    /// Instance number (pools can be replicated).
    pub instance: u32,
    /// Name of the pool manager hosting the instance.
    pub manager: String,
    /// Network address of the instance.
    pub address: StageAddress,
}

/// One administrative domain's directory, unsharded: the reference
/// implementation the sharded handle splits by pool name (and the
/// per-shard payload itself).
#[derive(Debug, Default)]
pub struct LocalDirectoryService {
    pools: BTreeMap<String, Vec<PoolInstanceRecord>>,
    pool_managers: Vec<String>,
    generation: u64,
}

/// Shared handle to a directory.
pub type SharedDirectory = Arc<ShardedDirectory>;

impl LocalDirectoryService {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps the directory in the sharded shared handle used by pipeline
    /// stages, with the default shard count.
    pub fn into_shared(self) -> SharedDirectory {
        self.into_shared_with(DEFAULT_SHARDS)
    }

    /// Wraps the directory in the shared handle with an explicit shard
    /// count (clamped to ≥ 1).
    pub fn into_shared_with(self, shards: usize) -> SharedDirectory {
        Arc::new(ShardedDirectory::from_unsharded(self, shards))
    }

    /// Registers a pool manager so peers can delegate queries to it.
    pub fn register_pool_manager(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.pool_managers.contains(&name) {
            self.pool_managers.push(name);
        }
    }

    /// Removes a pool manager *and every pool-instance record it hosted*
    /// (the manager failed, or a federation peer's connection died).
    /// Without this, a dead manager's name and its instance records stayed
    /// routable forever — queries kept being forwarded at a ghost.
    /// Returns `true` when the manager was registered.
    pub fn unregister_pool_manager(&mut self, name: &str) -> bool {
        let before = self.pool_managers.len();
        self.pool_managers.retain(|m| m != name);
        let removed = self.pool_managers.len() != before;
        let instances_before = self.instance_count();
        self.pools.retain(|_, entries| {
            entries.retain(|r| r.manager != name);
            !entries.is_empty()
        });
        if removed || self.instance_count() != instances_before {
            self.generation += 1;
        }
        removed
    }

    /// The pool managers known in this domain.
    pub fn pool_managers(&self) -> &[String] {
        &self.pool_managers
    }

    /// Registers a pool instance.  Registration is idempotent on
    /// `(pool, instance)`; re-registering replaces the record (a restarted
    /// instance may have a new address).
    pub fn register_pool(&mut self, record: PoolInstanceRecord) {
        let entry = self.pools.entry(record.pool.clone()).or_default();
        if let Some(existing) = entry.iter_mut().find(|r| r.instance == record.instance) {
            *existing = record;
        } else {
            entry.push(record);
        }
        self.generation += 1;
    }

    /// Removes a pool instance (pool destroyed or its host failed).
    pub fn unregister_pool(&mut self, pool: &str, instance: u32) -> bool {
        match self.pools.get_mut(pool) {
            Some(entries) => {
                let before = entries.len();
                entries.retain(|r| r.instance != instance);
                let removed = entries.len() != before;
                if entries.is_empty() {
                    self.pools.remove(pool);
                }
                if removed {
                    self.generation += 1;
                }
                removed
            }
            None => false,
        }
    }

    /// All registered instances of a pool name.
    pub fn instances(&self, pool: &str) -> Vec<PoolInstanceRecord> {
        self.pools.get(pool).cloned().unwrap_or_default()
    }

    /// Number of distinct pool names registered.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }

    /// Total number of pool instances registered.
    pub fn instance_count(&self) -> usize {
        self.pools.values().map(Vec::len).sum()
    }

    /// The next unused instance number for a pool name, or `None` when the
    /// numbering space is exhausted.  The old `m + 1` here panicked in
    /// debug builds (and wrapped to a *colliding* instance 0 in release)
    /// once an instance reached `u32::MAX`.
    pub fn next_instance_number(&self, pool: &str) -> Option<u32> {
        match self
            .pools
            .get(pool)
            .and_then(|entries| entries.iter().map(|r| r.instance).max())
        {
            None => Some(0),
            Some(max) => max.checked_add(1),
        }
    }

    /// Iterates over every registered pool name.
    pub fn pool_names(&self) -> impl Iterator<Item = &String> {
        self.pools.keys()
    }

    /// A counter bumped on every mutation that changes the registered
    /// pool set.  The gossip plane polls it to decide cheaply whether the
    /// local advertisement log needs refreshing before a frame ships —
    /// unchanged generation means no directory diff is needed.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The directory shared by the pool managers of one administrative
/// domain, sharded by pool name.
///
/// Each shard is a [`LocalDirectoryService`] behind its own `RwLock`;
/// a pool name maps to exactly one shard (FNV-1a), so all per-pool
/// operations touch one lock and disjoint pools proceed in parallel.
/// The pool-manager roster is domain-global and lives beside the shards
/// under its own lock.  Cross-shard reads (`instance_count`,
/// `pool_names`) lock shards strictly one at a time — never two guards
/// at once — so they cannot deadlock against writers; they return a
/// point-in-time figure, the same contract the old handle gave callers
/// that dropped the read guard before acting.
///
/// Lock ranks (`docs/CONCURRENCY.md`): `managers` is held across the
/// shard sweep in [`unregister_pool_manager`](Self::unregister_pool_manager)
/// (the `managers → shard` edge); `shard` is otherwise a leaf.
#[derive(Debug)]
pub struct ShardedDirectory {
    shards: Box<[RwLock<LocalDirectoryService>]>,
    managers: RwLock<Vec<String>>,
    /// Bumped on every pool-set mutation; read lock-free by the gossip
    /// refresh on every outbound frame.
    generation: AtomicU64,
    /// Shard acquisitions that found the lock held and had to block —
    /// the saturation sweeps' direct measure of directory contention.
    contention: AtomicU64,
}

impl Default for ShardedDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedDirectory {
    /// An empty directory with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty directory with `shards` lock domains (clamped to ≥ 1;
    /// one shard degenerates to the old single-lock behaviour, which the
    /// saturation benches use as their baseline series).
    pub fn with_shards(shards: usize) -> Self {
        Self::from_unsharded(LocalDirectoryService::new(), shards)
    }

    fn from_unsharded(inner: LocalDirectoryService, shards: usize) -> Self {
        let count = shards.max(1);
        let mut split: Vec<LocalDirectoryService> =
            (0..count).map(|_| LocalDirectoryService::new()).collect();
        for (pool, records) in inner.pools {
            let idx = (fnv1a(pool.as_bytes()) % count as u64) as usize;
            split[idx].pools.insert(pool, records);
        }
        ShardedDirectory {
            shards: split.into_iter().map(RwLock::new).collect(),
            managers: RwLock::new(inner.pool_managers),
            generation: AtomicU64::new(inner.generation),
            contention: AtomicU64::new(0),
        }
    }

    /// Wraps the directory in the shared handle used by pipeline stages.
    pub fn into_shared(self) -> SharedDirectory {
        Arc::new(self)
    }

    /// Number of shard lock domains.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, pool: &str) -> usize {
        (fnv1a(pool.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Read-locks the shard owning `pool`, counting a blocked acquisition
    /// when the fast path loses to a writer.
    fn read_shard(&self, pool: &str) -> RwLockReadGuard<'_, LocalDirectoryService> {
        let shard = &self.shards[self.shard_of(pool)];
        match shard.try_read() {
            Some(guard) => guard,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                shard.read()
            }
        }
    }

    /// Write-locks the shard owning `pool`; same contention accounting.
    fn write_shard(&self, pool: &str) -> RwLockWriteGuard<'_, LocalDirectoryService> {
        let shard = &self.shards[self.shard_of(pool)];
        match shard.try_write() {
            Some(guard) => guard,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                shard.write()
            }
        }
    }

    /// Registers a pool manager so peers can delegate queries to it.
    /// Idempotent; does not bump the generation (the advertised pool set
    /// is unchanged).
    pub fn register_pool_manager(&self, name: impl Into<String>) {
        let name = name.into();
        let mut managers = self.managers.write();
        if !managers.contains(&name) {
            managers.push(name);
        }
    }

    /// Removes a pool manager and every pool-instance record it hosted,
    /// sweeping all shards.  The roster lock is held across the sweep so
    /// a concurrent re-registration of the same manager cannot interleave
    /// halfway through the record purge.  Returns `true` when the manager
    /// was registered.
    pub fn unregister_pool_manager(&self, name: &str) -> bool {
        let mut managers = self.managers.write();
        let before = managers.len();
        managers.retain(|m| m != name);
        let removed = managers.len() != before;
        let mut records_changed = false;
        for shard in self.shards.iter() {
            let mut guard = shard.write();
            let generation_before = guard.generation();
            guard.unregister_pool_manager(name);
            records_changed |= guard.generation() != generation_before;
        }
        if removed || records_changed {
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// The pool managers known in this domain.
    pub fn pool_managers(&self) -> Vec<String> {
        self.managers.read().clone()
    }

    /// Registers a pool instance (idempotent on `(pool, instance)`;
    /// re-registering replaces the record).
    pub fn register_pool(&self, record: PoolInstanceRecord) {
        let mut guard = self.write_shard(&record.pool);
        guard.register_pool(record);
        drop(guard);
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes a pool instance (pool destroyed or its host failed).
    pub fn unregister_pool(&self, pool: &str, instance: u32) -> bool {
        let removed = self.write_shard(pool).unregister_pool(pool, instance);
        if removed {
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// All registered instances of a pool name.
    pub fn instances(&self, pool: &str) -> Vec<PoolInstanceRecord> {
        self.read_shard(pool).instances(pool)
    }

    /// Number of distinct pool names registered (shards partition the
    /// name space, so the per-shard counts sum without double counting).
    pub fn pool_count(&self) -> usize {
        let mut total = 0;
        for shard in self.shards.iter() {
            total += shard.read().pool_count();
        }
        total
    }

    /// Total number of pool instances registered.
    pub fn instance_count(&self) -> usize {
        let mut total = 0;
        for shard in self.shards.iter() {
            total += shard.read().instance_count();
        }
        total
    }

    /// The next unused instance number for a pool name, or `None` when
    /// the numbering space is exhausted.
    pub fn next_instance_number(&self, pool: &str) -> Option<u32> {
        self.read_shard(pool).next_instance_number(pool)
    }

    /// Every registered pool name, in the same sorted order the
    /// unsharded directory's `BTreeMap` iteration gave (gossip
    /// advertisements must stay deterministic across shard counts).
    pub fn pool_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for shard in self.shards.iter() {
            names.extend(shard.read().pool_names().cloned());
        }
        names.sort_unstable();
        names
    }

    /// The generation counter the gossip plane polls — a lock-free load,
    /// so the per-frame freshness check costs nothing under write load.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Shard acquisitions that had to block on a held lock since startup.
    /// Surfaced as `shard_contention` in [`actyp_proto::StatsSnapshot`].
    pub fn contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn record(pool: &str, instance: u32, manager: &str) -> PoolInstanceRecord {
        PoolInstanceRecord {
            pool: pool.to_string(),
            instance,
            manager: manager.to_string(),
            address: StageAddress::new(format!("{manager}.purdue.edu"), 7300 + instance as u16),
        }
    }

    #[test]
    fn register_and_lookup_instances() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool(record("arch,==/sun", 0, "pm-a"));
        dir.register_pool(record("arch,==/sun", 1, "pm-b"));
        dir.register_pool(record("arch,==/hp", 0, "pm-a"));

        assert_eq!(dir.pool_count(), 2);
        assert_eq!(dir.instance_count(), 3);
        assert_eq!(dir.instances("arch,==/sun").len(), 2);
        assert_eq!(dir.instances("arch,==/hp").len(), 1);
        assert!(dir.instances("arch,==/linux").is_empty());
    }

    #[test]
    fn re_registration_replaces_the_record() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool(record("arch,==/sun", 0, "pm-a"));
        let mut updated = record("arch,==/sun", 0, "pm-a");
        updated.address = StageAddress::new("new-host.purdue.edu", 9999);
        dir.register_pool(updated.clone());
        let instances = dir.instances("arch,==/sun");
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].address, updated.address);
    }

    #[test]
    fn unregister_removes_instance_and_empty_pools() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool(record("p", 0, "pm-a"));
        dir.register_pool(record("p", 1, "pm-a"));
        assert!(dir.unregister_pool("p", 0));
        assert_eq!(dir.instances("p").len(), 1);
        assert!(dir.unregister_pool("p", 1));
        assert_eq!(dir.pool_count(), 0);
        assert!(!dir.unregister_pool("p", 7));
        assert!(!dir.unregister_pool("missing", 0));
    }

    #[test]
    fn next_instance_number_is_one_past_the_maximum() {
        let mut dir = LocalDirectoryService::new();
        assert_eq!(dir.next_instance_number("p"), Some(0));
        dir.register_pool(record("p", 0, "pm-a"));
        dir.register_pool(record("p", 3, "pm-b"));
        assert_eq!(dir.next_instance_number("p"), Some(4));
    }

    #[test]
    fn instance_number_exhaustion_is_surfaced_not_wrapped() {
        // Regression: `u32::MAX + 1` used to panic in debug builds and
        // wrap to a colliding instance 0 in release builds.
        let mut dir = LocalDirectoryService::new();
        dir.register_pool(PoolInstanceRecord {
            pool: "p".to_string(),
            instance: u32::MAX,
            manager: "pm-a".to_string(),
            address: StageAddress::new("pm-a.purdue.edu", 7300),
        });
        assert_eq!(dir.next_instance_number("p"), None);
        // Other pool names are unaffected.
        assert_eq!(dir.next_instance_number("q"), Some(0));
    }

    #[test]
    fn unregister_pool_manager_drops_its_instance_records() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool_manager("pm-a");
        dir.register_pool_manager("pm-b");
        dir.register_pool(record("p", 0, "pm-a"));
        dir.register_pool(record("p", 1, "pm-b"));
        dir.register_pool(record("q", 0, "pm-a"));

        assert!(dir.unregister_pool_manager("pm-a"));
        assert_eq!(dir.pool_managers(), &["pm-b".to_string()]);
        // pm-a's records are gone; pm-b's survive; the now-empty pool name
        // `q` is removed entirely.
        assert_eq!(dir.instances("p").len(), 1);
        assert_eq!(dir.instances("p")[0].manager, "pm-b");
        assert!(dir.instances("q").is_empty());
        assert_eq!(dir.pool_count(), 1);
        // Unregistering an unknown manager reports false and is harmless.
        assert!(!dir.unregister_pool_manager("pm-zz"));
        assert_eq!(dir.instance_count(), 1);
    }

    #[test]
    fn pool_manager_registration_is_idempotent() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool_manager("pm-a");
        dir.register_pool_manager("pm-b");
        dir.register_pool_manager("pm-a");
        assert_eq!(
            dir.pool_managers(),
            &["pm-a".to_string(), "pm-b".to_string()]
        );
    }

    #[test]
    fn generation_bumps_only_on_pool_set_changes() {
        let mut dir = LocalDirectoryService::new();
        let g0 = dir.generation();
        dir.register_pool(record("p", 0, "pm-a"));
        let g1 = dir.generation();
        assert!(g1 > g0);

        // A lookup does not bump it.
        let _ = dir.instances("p");
        assert_eq!(dir.generation(), g1);

        // A no-op unregister does not bump it.
        assert!(!dir.unregister_pool("p", 9));
        assert_eq!(dir.generation(), g1);

        assert!(dir.unregister_pool("p", 0));
        assert!(dir.generation() > g1);

        // Dropping a manager that hosted records bumps it too.
        dir.register_pool_manager("pm-a");
        dir.register_pool(record("q", 0, "pm-a"));
        let g2 = dir.generation();
        dir.unregister_pool_manager("pm-a");
        assert!(dir.generation() > g2);
    }

    #[test]
    fn shared_handle_supports_concurrent_access() {
        let dir = LocalDirectoryService::new().into_shared();
        dir.register_pool(record("p", 0, "pm-a"));
        let d2 = dir.clone();
        let handle = std::thread::spawn(move || d2.instance_count());
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn into_shared_distributes_existing_state() {
        let mut dir = LocalDirectoryService::new();
        dir.register_pool_manager("pm-a");
        for i in 0..16 {
            dir.register_pool(record(&format!("pool/{i}"), 0, "pm-a"));
        }
        let generation = dir.generation();
        let shared = dir.into_shared_with(4);
        assert_eq!(shared.shard_count(), 4);
        assert_eq!(shared.pool_count(), 16);
        assert_eq!(shared.instance_count(), 16);
        assert_eq!(shared.generation(), generation);
        assert_eq!(shared.pool_managers(), vec!["pm-a".to_string()]);
        for i in 0..16 {
            assert_eq!(shared.instances(&format!("pool/{i}")).len(), 1, "{i}");
        }
        // Sorted exactly as the unsharded BTreeMap iterated.
        let names = shared.pool_names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn shard_count_is_clamped_to_at_least_one() {
        let dir = ShardedDirectory::with_shards(0);
        assert_eq!(dir.shard_count(), 1);
        dir.register_pool(record("p", 0, "pm-a"));
        assert_eq!(dir.instances("p").len(), 1);
    }

    /// Replays every directory operation against a sharded handle and the
    /// unsharded reference, asserting identical answers *and* identical
    /// "did the generation move?" observations — the signal the gossip
    /// plane keys its refreshes off.
    fn check_equivalence(shards: usize, ops: &[(u8, usize, u32, usize)]) {
        let pools = ["arch,==/sun", "arch,==/hp", "mem,>=/128", "disk,>=/4"];
        let managers = ["pm-a", "pm-b", "pm-c"];
        let sharded = ShardedDirectory::with_shards(shards);
        let mut reference = LocalDirectoryService::new();
        for &(op, pool_idx, instance, manager_idx) in ops {
            let pool = pools[pool_idx % pools.len()];
            let manager = managers[manager_idx % managers.len()];
            let gen_sharded = sharded.generation();
            let gen_reference = reference.generation();
            match op % 8 {
                0 => {
                    sharded.register_pool(record(pool, instance, manager));
                    reference.register_pool(record(pool, instance, manager));
                }
                1 => {
                    let a = sharded.unregister_pool(pool, instance);
                    let b = reference.unregister_pool(pool, instance);
                    prop_assert_eq!(a, b);
                }
                2 => {
                    sharded.register_pool_manager(manager);
                    reference.register_pool_manager(manager);
                }
                3 => {
                    let a = sharded.unregister_pool_manager(manager);
                    let b = reference.unregister_pool_manager(manager);
                    prop_assert_eq!(a, b);
                }
                4 => {
                    prop_assert_eq!(sharded.instances(pool), reference.instances(pool));
                }
                5 => {
                    prop_assert_eq!(
                        sharded.next_instance_number(pool),
                        reference.next_instance_number(pool)
                    );
                }
                6 => {
                    prop_assert_eq!(sharded.pool_count(), reference.pool_count());
                    prop_assert_eq!(sharded.instance_count(), reference.instance_count());
                }
                _ => {
                    let names: Vec<String> = reference.pool_names().cloned().collect();
                    prop_assert_eq!(sharded.pool_names(), names);
                    prop_assert_eq!(sharded.pool_managers(), reference.pool_managers().to_vec());
                }
            }
            prop_assert_eq!(
                sharded.generation() != gen_sharded,
                reference.generation() != gen_reference,
                "generation-moved signal diverged on op {}",
                op % 8
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any operation sequence answers identically sharded or not, at
        /// several shard counts (including the degenerate single shard).
        #[test]
        fn sharded_directory_matches_unsharded(
            shards in 1usize..9,
            ops in prop::collection::vec((0u8..8, 0usize..4, 0u32..3, 0usize..3), 1..32),
        ) {
            check_equivalence(shards, &ops);
        }
    }

    /// The contention counter is the regression guard: threads hammering
    /// pools that hash to *different* shards must never block on each
    /// other's locks, which the old single `RwLock` forced them to.
    #[test]
    fn disjoint_pools_do_not_contend_across_shards() {
        let dir = Arc::new(ShardedDirectory::with_shards(4));
        // Probe for pool names owned by pairwise-distinct shards.
        let mut pools: Vec<String> = Vec::new();
        let mut shards_used = std::collections::HashSet::new();
        let mut i = 0;
        while pools.len() < 4 {
            let name = format!("pool/{i}");
            if shards_used.insert(dir.shard_of(&name)) {
                pools.push(name);
            }
            i += 1;
        }
        let handles: Vec<_> = pools
            .into_iter()
            .enumerate()
            .map(|(worker, pool)| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    for round in 0..2000u32 {
                        dir.register_pool(record(&pool, round % 7, &format!("pm-{worker}")));
                        assert!(!dir.instances(&pool).is_empty());
                        let _ = dir.next_instance_number(&pool);
                        dir.unregister_pool(&pool, round % 7);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(
            dir.contention(),
            0,
            "threads on disjoint pools blocked on each other's shard locks"
        );
    }

    /// A writer forced onto a held shard: the counter must actually
    /// move, proving the regression test above measures what it claims.
    /// The collision is staged, not raced — on a one-core box a handful
    /// of free-running writers can serialize perfectly and never lose a
    /// `try_write`.
    #[test]
    fn single_shard_workload_registers_contention() {
        let dir = Arc::new(ShardedDirectory::with_shards(1));
        let held = dir.shards[0].write();
        let writer = {
            let dir = dir.clone();
            std::thread::spawn(move || {
                dir.register_pool(record("pool/contended", 0, "pm-a"));
            })
        };
        // The writer's try_write fast path must lose to `held`; it then
        // records the blocked acquisition before parking on the lock.
        while dir.contention() == 0 {
            std::thread::yield_now();
        }
        drop(held);
        writer.join().unwrap();
        assert!(
            dir.contention() > 0,
            "a writer blocked on a held shard must register contention"
        );
        assert_eq!(dir.instance_count(), 1, "the blocked write still landed");
    }
}
