//! The reactor core: readiness polling for the event-driven `ypd` server.
//!
//! The build environment has no access to crates.io, so there is no `mio`
//! or `tokio` here: this module binds the kernel's readiness interfaces
//! directly with `extern "C"` declarations against the libc the standard
//! library already links.  Two implementations sit behind one [`Poller`]
//! trait:
//!
//! * [`PollerKind::Epoll`] — Linux `epoll(7)` (`epoll_create1` /
//!   `epoll_ctl` / `epoll_wait`), O(ready) wakeups, the production path.
//! * [`PollerKind::Poll`] — portable POSIX `poll(2)`, O(registered) per
//!   wakeup; the fallback for non-Linux unix hosts, and a second
//!   implementation the test suite can run on Linux to keep the trait
//!   honest.
//!
//! [`PollerKind::Auto`] picks epoll on Linux and `poll(2)` elsewhere.  On
//! non-unix hosts [`PollerKind::create`] reports
//! [`std::io::ErrorKind::Unsupported`] and the server falls back to the
//! legacy thread-per-session mode.
//!
//! Two more pieces the session engine needs live here because they share
//! the same raw-binding style and have no other natural home:
//!
//! * [`Waker`] — a non-blocking self-pipe.  Worker threads finish blocking
//!   backend calls off the I/O threads; posting the completion into a
//!   session's write queue must interrupt that session's [`Poller::poll`],
//!   which is exactly what writing one byte into the registered pipe does.
//! * [`WorkerPool`] — a fixed, capped pool of job threads.  The reactor
//!   server runs every blocking backend call (submit, wait, delegate …) on
//!   one of these instead of spawning a thread per request, which is what
//!   keeps the daemon's thread count independent of its session count.
//!
//! * [`TimerWheel`] — a tiny deadline list the I/O threads consult to cap
//!   their poll timeout.  The reactor server uses it for the periodic
//!   closing-session sweep and for the anti-entropy gossip tick, so
//!   neither needs a dedicated thread.
//!
//! Everything here is deliberately minimal: level-triggered readiness
//! only, one registration per fd — the session engine in [`crate::remote`]
//! supplies the rest.

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::fd::RawFd;

// ---------------------------------------------------------------------------
// Interest and events
// ---------------------------------------------------------------------------

/// Which readiness a registration asks to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer hangs up).
    pub read: bool,
    /// Wake when the fd becomes writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both read and write readiness.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// No readiness at all (registration kept, nothing delivered except
    /// errors/hangups).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness notification out of [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a hangup to observe via `read() == 0`).
    pub readable: bool,
    /// The fd can accept more outgoing bytes.
    pub writable: bool,
    /// The kernel reports an error or hangup condition; the owner should
    /// read it out (a final `read` still drains buffered bytes) and close.
    pub closed: bool,
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// A readiness poller: epoll on Linux, `poll(2)` as the portable fallback
/// — both behind this one trait so the session engine cannot tell them
/// apart.
///
/// Registrations are level-triggered: an fd that stays readable is
/// reported on every call until it is drained or its interest is changed.
pub trait Poller: Send {
    /// Starts watching `fd` under `token` for `interest`.
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Changes the interest (and token) of an already-registered fd.
    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Blocks up to `timeout` (forever if `None`) for readiness, filling
    /// `events` with what became ready.  `events` is cleared first.
    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

/// Which [`Poller`] implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollerKind {
    /// Epoll on Linux, `poll(2)` elsewhere.
    #[default]
    Auto,
    /// Linux `epoll(7)`; creation fails on other platforms.
    Epoll,
    /// Portable POSIX `poll(2)`.
    Poll,
}

impl std::fmt::Display for PollerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PollerKind::Auto => "auto",
            PollerKind::Epoll => "epoll",
            PollerKind::Poll => "poll",
        })
    }
}

impl std::str::FromStr for PollerKind {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "auto" => Ok(PollerKind::Auto),
            "epoll" => Ok(PollerKind::Epoll),
            "poll" => Ok(PollerKind::Poll),
            other => Err(format!(
                "unknown poller `{other}` (expected auto, epoll or poll)"
            )),
        }
    }
}

impl PollerKind {
    /// Builds the chosen poller.  Fails with
    /// [`std::io::ErrorKind::Unsupported`] where the kind (or readiness
    /// polling at all) is unavailable, letting the caller fall back to
    /// thread-per-session I/O.
    pub fn create(self) -> io::Result<Box<dyn Poller>> {
        #[cfg(target_os = "linux")]
        {
            match self {
                PollerKind::Auto | PollerKind::Epoll => Ok(Box::new(EpollPoller::new()?)),
                PollerKind::Poll => Ok(Box::new(PollPoller::new())),
            }
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            match self {
                PollerKind::Auto | PollerKind::Poll => Ok(Box::new(PollPoller::new())),
                PollerKind::Epoll => Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "epoll is Linux-only; use the poll fallback",
                )),
            }
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no readiness poller on this platform; use thread-per-session mode",
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Raw bindings
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    //! The handful of libc symbols the reactor needs, declared by hand:
    //! the toolchain links libc through std already, so `extern "C"` is
    //! all it takes — no crates.io dependency.
    use std::os::raw::{c_int, c_short};

    extern "C" {
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        // fcntl(2) is variadic; declaring it with a fixed third argument
        // would be UB and concretely mis-passes the argument on ABIs that
        // place variadic arguments differently (e.g. aarch64 Darwin).
        pub fn fcntl(fd: c_int, cmd: c_int, ...) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    pub const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: c_int = 0x0004;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    #[cfg(target_os = "linux")]
    pub type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type NfdsT = std::os::raw::c_uint;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use std::os::raw::c_int;

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        /// `struct epoll_event`; packed on x86-64, exactly as the kernel
        /// ABI declares it (`__EPOLL_PACKED`).
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }
    }
}

#[cfg(unix)]
fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on an owned fd; no memory is involved.
    let rc = unsafe { sys::fcntl(fd, sys::F_SETFL, sys::O_NONBLOCK) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Milliseconds for the kernel timeout argument: `None` blocks forever
/// (-1), and anything else is clamped into `c_int` range, rounding up so a
/// sub-millisecond timeout does not spin.
#[cfg(unix)]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if ms == 0 && t.as_nanos() > 0 { 1 } else { ms };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

// ---------------------------------------------------------------------------
// Epoll implementation (Linux)
// ---------------------------------------------------------------------------

/// The Linux `epoll(7)` poller: one epoll instance, O(ready) wakeups.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    /// Scratch buffer reused across `poll` calls.
    buf: Vec<sys::epoll::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// Creates a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 allocates a new fd; no pointers passed.
        let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![sys::epoll::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        let mut mask = sys::epoll::EPOLLRDHUP;
        if interest.read {
            mask |= sys::epoll::EPOLLIN;
        }
        if interest.write {
            mask |= sys::epoll::EPOLLOUT;
        }
        let mut event = sys::epoll::EpollEvent {
            events: mask,
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll::epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::epoll::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::epoll::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::epoll::EPOLL_CTL_DEL, fd, 0, Interest::NONE)
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        // SAFETY: `buf` is a live, correctly-sized epoll_event array.
        let n = unsafe {
            sys::epoll::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as std::os::raw::c_int,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for raw in &self.buf[..n as usize] {
            // Copy out of the (possibly packed) struct before inspecting.
            let mask = raw.events;
            let token = raw.data;
            events.push(Event {
                token,
                readable: mask & (sys::epoll::EPOLLIN | sys::epoll::EPOLLRDHUP) != 0,
                writable: mask & sys::epoll::EPOLLOUT != 0,
                closed: mask & (sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: closing the fd this struct owns.
        unsafe { sys::close(self.epfd) };
    }
}

// ---------------------------------------------------------------------------
// poll(2) implementation (portable unix)
// ---------------------------------------------------------------------------

/// The portable `poll(2)` poller: keeps the registered set in user space
/// and hands the whole array to the kernel each call — O(registered) per
/// wakeup, which is fine for the fallback role.
#[cfg(unix)]
pub struct PollPoller {
    entries: Vec<(RawFd, u64, Interest)>,
    buf: Vec<sys::PollFd>,
}

#[cfg(unix)]
impl Default for PollPoller {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(unix)]
impl PollPoller {
    /// An empty registration set.
    pub fn new() -> Self {
        PollPoller {
            entries: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|(f, _, _)| *f == fd)
    }
}

#[cfg(unix)]
impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.entries[i] = (fd, token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.position(fd) {
            Some(i) => {
                self.entries.swap_remove(i);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.buf.clear();
        for (fd, _, interest) in &self.entries {
            let mut mask: std::os::raw::c_short = 0;
            if interest.read {
                mask |= sys::POLLIN;
            }
            if interest.write {
                mask |= sys::POLLOUT;
            }
            self.buf.push(sys::PollFd {
                fd: *fd,
                events: mask,
                revents: 0,
            });
        }
        // SAFETY: `buf` is a live pollfd array of exactly `len` entries.
        let n = unsafe {
            sys::poll(
                self.buf.as_mut_ptr(),
                self.buf.len() as sys::NfdsT,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (slot, (_, token, _)) in self.buf.iter().zip(&self.entries) {
            let got = slot.revents;
            if got == 0 {
                continue;
            }
            events.push(Event {
                token: *token,
                readable: got & (sys::POLLIN | sys::POLLHUP) != 0,
                writable: got & sys::POLLOUT != 0,
                closed: got & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// A self-pipe that interrupts a blocked [`Poller::poll`] from another
/// thread.
///
/// Register [`Waker::read_fd`] (read interest) under a reserved token;
/// [`Waker::wake`] then makes the poller report that token readable.  The
/// owning loop calls [`Waker::drain`] once per wakeup — coalesced wakes
/// cost one byte each but a single drain.
///
/// Both ends are non-blocking: waking a loop that is already behind never
/// blocks the waker (a full pipe already guarantees a pending wakeup).
#[cfg(unix)]
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

#[cfg(unix)]
impl Waker {
    /// Creates the pipe pair, both ends non-blocking.
    pub fn new() -> io::Result<Self> {
        let mut fds = [0 as std::os::raw::c_int; 2];
        // SAFETY: `fds` is a live 2-element array, exactly what pipe wants.
        let rc = unsafe { sys::pipe(fds.as_mut_ptr()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking(waker.read_fd)?;
        set_nonblocking(waker.write_fd)?;
        Ok(waker)
    }

    /// The end to register with the poller (read interest).
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Interrupts the poller.  Never blocks: a full pipe means a wakeup is
    /// already pending, which is all this call promises.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: writing one byte from a live buffer to an owned fd.
        unsafe { sys::write(self.write_fd, byte.as_ptr(), 1) };
    }

    /// Consumes every pending wake byte.  Call once per poller wakeup.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a live buffer from an owned fd.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

#[cfg(unix)]
impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing the two fds this struct owns.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

// SAFETY: the waker is two raw fds; writing/reading them from any thread
// is exactly what pipes are for.
#[cfg(unix)]
unsafe impl Send for Waker {}
#[cfg(unix)]
unsafe impl Sync for Waker {}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// A fixed pool of job threads for the blocking backend calls the reactor
/// must not run on its I/O threads.
///
/// The pool is the *cap*: jobs beyond the thread count queue (unbounded —
/// per-session request caps in the server bound the queue) and run as
/// workers free up.  A panicking job takes neither the worker nor the pool
/// down; panics are counted and surfaced by [`WorkerPool::shutdown`], the
/// same contract the thread-per-session server keeps for its sessions.
pub struct WorkerPool {
    tx: crossbeam::channel::Sender<Job>,
    handles: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
    panics: std::sync::Arc<std::sync::atomic::AtomicU64>,
    size: usize,
}

enum Job {
    Run(Box<dyn FnOnce() + Send>),
    /// Several jobs riding one queue send — one channel operation and one
    /// worker wakeup for a whole batch of decoded frames.
    Batch(Vec<Box<dyn FnOnce() + Send>>),
    Stop,
}

impl WorkerPool {
    /// Spawns `size` worker threads (at least one), named `name-N`.
    pub fn new(name: &str, size: usize) -> Self {
        let size = size.max(1);
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let panics = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            let rx = rx.clone();
            let panics = panics.clone();
            let builder = std::thread::Builder::new().name(format!("{name}-{i}"));
            let handle = builder
                .spawn(move || {
                    // Ends on the first Stop marker or a disconnected queue.
                    loop {
                        let jobs = match rx.recv() {
                            Ok(Job::Run(job)) => vec![job],
                            Ok(Job::Batch(jobs)) => jobs,
                            Ok(Job::Stop) | Err(_) => break,
                        };
                        for job in jobs {
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            if outcome.is_err() {
                                panics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    }
                })
                .expect("spawn worker thread");
            handles.push(handle);
        }
        WorkerPool {
            tx,
            handles: parking_lot::Mutex::new(handles),
            panics,
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Queues one job.  Jobs run in submission order as workers free up;
    /// after [`WorkerPool::shutdown`] the job is silently dropped (the
    /// sessions that could queue work are gone by then).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let _ = self.tx.send(Job::Run(Box::new(job)));
    }

    /// Queues a batch of jobs with a single channel send (one queue lock,
    /// one worker wakeup).  The batch runs in order on *one* worker —
    /// exactly the ordering a batch of frames from one session needs —
    /// while other workers stay free for other sessions' batches.
    pub fn execute_batch(&self, jobs: Vec<Box<dyn FnOnce() + Send>>) {
        match jobs.len() {
            0 => {}
            1 => {
                let mut jobs = jobs;
                let _ = self.tx.send(Job::Run(jobs.pop().expect("one job")));
            }
            _ => {
                let _ = self.tx.send(Job::Batch(jobs));
            }
        }
    }

    /// Stops the pool after the queued jobs finish: every worker gets a
    /// stop marker *behind* the existing queue, is joined, and the number
    /// of jobs that panicked over the pool's lifetime is returned.
    pub fn shutdown(&self) -> u64 {
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock());
        for _ in 0..handles.len() {
            let _ = self.tx.send(Job::Stop);
        }
        for handle in handles {
            let _ = handle.join();
        }
        self.panics.load(std::sync::atomic::Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// One armed timer: an opaque id, its next deadline, and — for periodic
/// timers — the interval at which it re-arms itself.
#[derive(Debug, Clone)]
struct Timer {
    id: u64,
    deadline: std::time::Instant,
    period: Option<Duration>,
}

/// A deliberately small deadline list ("wheel" by role, not by data
/// structure — a handful of timers per I/O thread never justifies
/// hierarchical buckets).  The I/O loop calls [`TimerWheel::poll_timeout`]
/// to cap its poll interval, then [`TimerWheel::expired`] after each
/// wakeup; periodic timers re-arm themselves, skipping intervals the
/// thread slept through so a stalled loop does not replay a burst of
/// stale ticks.
#[derive(Debug, Default)]
pub struct TimerWheel {
    timers: Vec<Timer>,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a one-shot timer `after` from now.  Re-arming an id replaces
    /// its previous registration.
    pub fn add(&mut self, id: u64, after: Duration) {
        self.timers.retain(|t| t.id != id);
        self.timers.push(Timer {
            id,
            deadline: std::time::Instant::now() + after,
            period: None,
        });
    }

    /// Arms a periodic timer firing every `period`, first in one `period`
    /// from now.  Re-arming an id replaces its previous registration.
    pub fn add_periodic(&mut self, id: u64, period: Duration) {
        self.timers.retain(|t| t.id != id);
        self.timers.push(Timer {
            id,
            deadline: std::time::Instant::now() + period,
            period: Some(period),
        });
    }

    /// Disarms a timer; unknown ids are ignored.
    pub fn remove(&mut self, id: u64) {
        self.timers.retain(|t| t.id != id);
    }

    /// How long a poll may block without overshooting the next deadline:
    /// the time to the earliest deadline, clamped to at most `cap`.
    pub fn poll_timeout(&self, cap: Duration) -> Duration {
        let now = std::time::Instant::now();
        self.timers
            .iter()
            .map(|t| t.deadline.saturating_duration_since(now))
            .min()
            .map_or(cap, |next| next.min(cap))
    }

    /// Pops every timer due at `now`, returning their ids.  Periodic
    /// timers are rescheduled relative to their own deadline (not `now`),
    /// advancing past any intervals that elapsed while the thread was
    /// busy; one-shot timers are removed.
    pub fn expired(&mut self, now: std::time::Instant) -> Vec<u64> {
        let mut due = Vec::new();
        self.timers.retain_mut(|timer| {
            if timer.deadline > now {
                return true;
            }
            due.push(timer.id);
            match timer.period {
                Some(period) => {
                    timer.deadline += period;
                    while timer.deadline <= now {
                        timer.deadline += period;
                    }
                    true
                }
                None => false,
            }
        });
        due
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn pollers() -> Vec<(&'static str, Box<dyn Poller>)> {
        let mut all: Vec<(&'static str, Box<dyn Poller>)> =
            vec![("poll", Box::new(PollPoller::new()))];
        #[cfg(target_os = "linux")]
        all.push(("epoll", Box::new(EpollPoller::new().unwrap())));
        all
    }

    /// A connected loopback socket pair.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_events_fire_when_bytes_arrive() {
        for (name, mut poller) in pollers() {
            let (mut tx, rx) = socket_pair();
            rx.set_nonblocking(true).unwrap();
            poller.register(rx.as_raw_fd(), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            // Nothing yet: a short poll comes back empty.
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{name}: spurious event");

            tx.write_all(b"x").unwrap();
            poller
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{name}");
            assert_eq!(events[0].token, 7, "{name}");
            assert!(events[0].readable, "{name}");
        }
    }

    #[test]
    fn write_interest_and_reregistration_work() {
        for (name, mut poller) in pollers() {
            let (tx, _rx) = socket_pair();
            tx.set_nonblocking(true).unwrap();
            // A fresh socket is writable immediately.
            poller.register(tx.as_raw_fd(), 1, Interest::WRITE).unwrap();
            let mut events = Vec::new();
            poller
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "{name}: no writable event"
            );
            // Dropping write interest silences it.
            poller
                .reregister(tx.as_raw_fd(), 1, Interest::NONE)
                .unwrap();
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                !events.iter().any(|e| e.writable),
                "{name}: writable after reregister"
            );
            poller.deregister(tx.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn hangups_are_reported_to_the_reader() {
        for (name, mut poller) in pollers() {
            let (tx, mut rx) = socket_pair();
            poller.register(rx.as_raw_fd(), 3, Interest::READ).unwrap();
            drop(tx);
            let mut events = Vec::new();
            poller
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let ev = events.iter().find(|e| e.token == 3).expect(name);
            // A hangup must be observable: either flagged directly or via
            // a readable event whose read returns 0.
            assert!(ev.readable || ev.closed, "{name}");
            let mut buf = [0u8; 8];
            assert_eq!(rx.read(&mut buf).unwrap(), 0, "{name}: clean EOF");
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        for (name, mut poller) in pollers() {
            let waker = Arc::new(Waker::new().unwrap());
            poller
                .register(waker.read_fd(), u64::MAX, Interest::READ)
                .unwrap();
            let remote = waker.clone();
            let hand = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                remote.wake();
            });
            let mut events = Vec::new();
            let started = std::time::Instant::now();
            poller
                .poll(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "{name}: poll did not wake"
            );
            assert!(
                events.iter().any(|e| e.token == u64::MAX && e.readable),
                "{name}: no waker event"
            );
            waker.drain();
            // Drained: the next short poll is quiet again.
            poller
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{name}: waker still readable");
            hand.join().unwrap();
        }
    }

    #[test]
    fn auto_poller_creates_on_unix() {
        assert!(PollerKind::Auto.create().is_ok());
        assert!(PollerKind::Poll.create().is_ok());
        #[cfg(target_os = "linux")]
        assert!(PollerKind::Epoll.create().is_ok());
    }

    #[test]
    fn poller_kind_parses_and_displays() {
        for kind in [PollerKind::Auto, PollerKind::Epoll, PollerKind::Poll] {
            assert_eq!(kind.to_string().parse::<PollerKind>().unwrap(), kind);
        }
        assert!("kqueue".parse::<PollerKind>().is_err());
    }

    #[test]
    fn worker_pool_runs_jobs_and_survives_panics() {
        let pool = WorkerPool::new("test-worker", 3);
        assert_eq!(pool.size(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = counter.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.execute(|| panic!("job panics, pool survives"));
        let counter2 = counter.clone();
        pool.execute(move || {
            counter2.fetch_add(1, Ordering::Relaxed);
        });
        let panics = pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 21, "all jobs ran");
        assert_eq!(panics, 1, "the panic was counted, not lost");
    }

    #[test]
    fn timer_wheel_caps_poll_timeout_at_next_deadline() {
        let mut wheel = TimerWheel::new();
        let cap = Duration::from_millis(500);
        assert_eq!(wheel.poll_timeout(cap), cap, "empty wheel polls full cap");

        wheel.add(1, Duration::from_millis(50));
        assert!(wheel.poll_timeout(cap) <= Duration::from_millis(50));

        // An already-due timer clamps the timeout to zero, never negative.
        wheel.add(2, Duration::ZERO);
        assert_eq!(wheel.poll_timeout(cap), Duration::ZERO);
    }

    #[test]
    fn timer_wheel_one_shot_fires_once() {
        let mut wheel = TimerWheel::new();
        wheel.add(7, Duration::ZERO);
        let now = std::time::Instant::now();
        assert_eq!(wheel.expired(now), vec![7]);
        assert!(wheel.expired(now + Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn timer_wheel_periodic_reschedules_and_skips_missed_intervals() {
        let mut wheel = TimerWheel::new();
        let period = Duration::from_millis(10);
        wheel.add_periodic(3, period);
        let armed = std::time::Instant::now();

        // Fires at its first deadline.
        assert_eq!(wheel.expired(armed + period), vec![3]);
        // Not due again immediately after.
        assert!(wheel.expired(armed + period).is_empty());
        // A long stall yields ONE firing, with the deadline advanced past
        // every missed interval rather than replaying them.
        assert_eq!(wheel.expired(armed + period * 10), vec![3]);
        assert!(wheel
            .expired(armed + period * 10 + Duration::from_millis(1))
            .is_empty());
    }

    #[test]
    fn timer_wheel_rearm_replaces_and_remove_disarms() {
        let mut wheel = TimerWheel::new();
        wheel.add(5, Duration::ZERO);
        wheel.add(5, Duration::from_secs(60));
        assert!(
            wheel.expired(std::time::Instant::now()).is_empty(),
            "re-arming replaced the due registration"
        );
        wheel.add(6, Duration::ZERO);
        wheel.remove(6);
        assert!(wheel.expired(std::time::Instant::now()).is_empty());
    }
}
