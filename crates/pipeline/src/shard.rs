//! Shard plumbing for the daemon's hot tables.
//!
//! A single `ypd` used to funnel every session through a handful of
//! process-global locks — the directory `RwLock`, whole-map `Mutex`es on
//! the in-flight request tables — so adding cores added contention instead
//! of throughput.  This module holds the two pieces every sharded
//! structure shares: the deterministic pool-name hash that assigns a key
//! to a shard, and a sharded `u64 → V` map for the correlation-id and
//! ticket tables whose keys are already uniformly distributed sequence
//! numbers.
//!
//! Locking discipline: every shard lock is taken through a local binding
//! named `shard`, the rank registered in `docs/CONCURRENCY.md`'s
//! lock-hierarchy fence.  A shard guard is a leaf in practice — held for
//! a few statements, never across another acquisition — and cross-shard
//! sweeps (`len`, `clear`) lock shards strictly one at a time, so
//! disjoint-key callers never serialise on each other.

use std::collections::HashMap;

use parking_lot::{Mutex, MutexGuard};

/// Default shard count for the daemon's hot tables.  Eight shards cover
/// the core counts the saturation sweeps target while keeping the
/// cross-shard sweep (stats snapshots, teardown drains) cheap.
pub const DEFAULT_SHARDS: usize = 8;

/// FNV-1a over `key` — the deterministic hash assigning pool names to
/// directory shards.  Deterministic so a pool name maps to the same shard
/// in every process of a federation and in every test run.
pub(crate) fn fnv1a(key: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in key {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A `u64 → V` hash map split over independently locked shards.
///
/// Used for the in-flight request tables (`MuxConn::pending`, the live
/// backend's ticket table) whose keys are sequence numbers: `key % shards`
/// deals consecutive ids round-robin, so concurrent requests land on
/// different locks instead of one global rendezvous point.
#[derive(Debug)]
pub(crate) struct ShardedMap<V> {
    shards: Box<[Mutex<HashMap<u64, V>>]>,
}

impl<V> ShardedMap<V> {
    /// A map with `shards` independent lock domains (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedMap {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The shard holding `key`.  Exposed so a caller can do a
    /// read-modify-write (poll a receiver, then remove it) under one
    /// shard guard without a whole-map lock.
    pub fn shard_for(&self, key: u64) -> &Mutex<HashMap<u64, V>> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    pub fn insert(&self, key: u64, value: V) -> Option<V> {
        let shard = self.shard_for(key);
        shard.lock().insert(key, value)
    }

    pub fn remove(&self, key: u64) -> Option<V> {
        let shard = self.shard_for(key);
        shard.lock().remove(&key)
    }

    /// Total entries, summed one shard lock at a time (a point-in-time
    /// figure, exact only when writers are quiet — the same contract the
    /// old whole-map `len()` gave callers that dropped the guard after).
    pub fn len(&self) -> usize {
        let mut total = 0;
        for shard in self.shards.iter() {
            total += shard.lock().len();
        }
        total
    }

    /// Empties every shard, one lock at a time.  Entries inserted into an
    /// already-swept shard during the sweep survive; callers needing the
    /// no-stragglers guarantee serialise inserts against `clear` with
    /// their own outer lock (the `dead → shard` edge in the federation's
    /// poison path).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }
}

/// Locks the shard of `key` and returns the guard — a named helper so
/// call sites that need the guard across several statements keep the
/// `shard` receiver name the lock-order lint ranks.
pub(crate) fn lock_shard<V>(map: &ShardedMap<V>, key: u64) -> MutexGuard<'_, HashMap<u64, V>> {
    let shard = map.shard_for(key);
    shard.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_spreads() {
        // Pinned values: the shard assignment is part of cross-process
        // determinism, so the hash must never silently change.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        // Distinct pool names spread over 8 shards rather than piling up.
        let shards: std::collections::HashSet<u64> = (0..64)
            .map(|i| fnv1a(format!("arch,==/sun/{i}").as_bytes()) % 8)
            .collect();
        assert!(
            shards.len() >= 4,
            "hash collapsed to {} shards",
            shards.len()
        );
    }

    #[test]
    fn sharded_map_round_trip() {
        let map: ShardedMap<String> = ShardedMap::new(4);
        assert_eq!(map.len(), 0);
        for i in 0..32u64 {
            assert!(map.insert(i, format!("v{i}")).is_none());
        }
        assert_eq!(map.len(), 32);
        assert_eq!(map.remove(7).as_deref(), Some("v7"));
        assert!(map.remove(7).is_none());
        assert_eq!(map.insert(3, "replaced".into()).as_deref(), Some("v3"));
        assert_eq!(map.len(), 31);
        map.clear();
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn sequential_keys_deal_round_robin_over_shards() {
        let map: ShardedMap<u64> = ShardedMap::new(4);
        // Consecutive correlation ids must not share a shard lock.
        assert!(!std::ptr::eq(map.shard_for(0), map.shard_for(1)));
        assert!(std::ptr::eq(map.shard_for(1), map.shard_for(5)));
    }

    #[test]
    fn clear_survives_concurrent_inserts() {
        let map = std::sync::Arc::new(ShardedMap::<u64>::new(4));
        let writer = {
            let map = map.clone();
            std::thread::spawn(move || {
                for i in 0..1000 {
                    map.insert(i, i);
                }
            })
        };
        map.clear();
        writer.join().unwrap();
        map.clear();
        assert_eq!(map.len(), 0);
    }
}
