//! Pipeline message plumbing: request identifiers, stage addresses, fragment
//! tags and the routing state that travels with every query.
//!
//! A key property the paper emphasises is that "all state information is
//! carried with the query itself", which is what lets every stage be
//! replicated and distributed freely.  [`RoutingState`] is that carried
//! state: the time-to-live counter and the list of pool managers already
//! visited (both analogous to the TTL field and fragment bookkeeping of IP).
//!
//! [`RequestId`] and [`StageAddress`] now live in [`actyp_proto`] (and are
//! re-exported here): they travel on the wire — a request id doubles as the
//! protocol's correlation id, and a stage address is what the `ypd` CLI and
//! [`crate::api::PipelineBuilder::remote`] parse from `host:port` strings.

pub use actyp_proto::types::{AddressParseError, RequestId, RequestIdGenerator, StageAddress};

/// Identifies one fragment of a decomposed composite query so that results
/// can be re-integrated at the end of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragmentTag {
    /// The request this fragment belongs to.
    pub request: RequestId,
    /// Index of this fragment within the decomposition.
    pub index: u32,
    /// Total number of fragments produced by the decomposition.
    pub total: u32,
}

impl FragmentTag {
    /// Tag for an undecomposed (basic) query.
    pub fn whole(request: RequestId) -> Self {
        FragmentTag {
            request,
            index: 0,
            total: 1,
        }
    }
}

/// State carried along with a query as it moves through the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingState {
    /// Remaining pool-manager delegations before the request is failed.
    pub ttl: u32,
    /// Names of pool managers that have already seen the query; prevents a
    /// query from being delegated to the same manager twice.
    pub visited: Vec<String>,
}

impl RoutingState {
    /// Fresh routing state with the given time-to-live.
    pub fn new(ttl: u32) -> Self {
        RoutingState {
            ttl,
            visited: Vec::new(),
        }
    }

    /// Records a visit to a pool manager and decrements the TTL.  Returns
    /// `false` if the TTL was already exhausted (the request has failed).
    pub fn visit(&mut self, pool_manager: &str) -> bool {
        if self.ttl == 0 {
            return false;
        }
        self.ttl -= 1;
        if !self.visited.iter().any(|v| v == pool_manager) {
            self.visited.push(pool_manager.to_string());
        }
        true
    }

    /// Whether the named pool manager has already handled this query.
    pub fn has_visited(&self, pool_manager: &str) -> bool {
        self.visited.iter().any(|v| v == pool_manager)
    }

    /// Whether the request may still be delegated.
    pub fn alive(&self) -> bool {
        self.ttl > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_monotone() {
        let gen = RequestIdGenerator::new();
        let a = gen.next();
        let b = gen.next();
        let c = gen.next();
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "req-0");
    }

    #[test]
    fn id_generator_is_thread_safe() {
        let gen = std::sync::Arc::new(RequestIdGenerator::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = gen.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next().0).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn stage_address_display() {
        let a = StageAddress::new("actyp.ecn.purdue.edu", 7200);
        assert_eq!(a.to_string(), "actyp.ecn.purdue.edu:7200");
    }

    #[test]
    fn stage_address_parses_from_args_and_env_strings() {
        let a: StageAddress = "actyp.ecn.purdue.edu:7200".parse().unwrap();
        assert_eq!(a, StageAddress::new("actyp.ecn.purdue.edu", 7200));
        assert!("noport".parse::<StageAddress>().is_err());
    }

    #[test]
    fn whole_fragment_tag() {
        let t = FragmentTag::whole(RequestId(7));
        assert_eq!(t.index, 0);
        assert_eq!(t.total, 1);
    }

    #[test]
    fn routing_state_ttl_and_visited_list() {
        let mut r = RoutingState::new(2);
        assert!(r.alive());
        assert!(r.visit("pm-a"));
        assert!(r.has_visited("pm-a"));
        assert!(!r.has_visited("pm-b"));
        assert!(r.visit("pm-b"));
        assert!(!r.alive());
        assert!(!r.visit("pm-c"), "TTL exhausted");
        assert_eq!(r.visited, vec!["pm-a".to_string(), "pm-b".to_string()]);
    }

    #[test]
    fn revisiting_does_not_duplicate_names() {
        let mut r = RoutingState::new(10);
        r.visit("pm-a");
        r.visit("pm-a");
        assert_eq!(r.visited.len(), 1);
        assert_eq!(r.ttl, 8);
    }
}
