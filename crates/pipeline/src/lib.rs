//! # actyp-pipeline — the active yellow pages resource-management pipeline
//!
//! This crate is the paper's primary contribution: a pipelined,
//! decentralised resource-management architecture in which resources are
//! aggregated *dynamically* — the "active yellow pages" — according to the
//! queries the system actually observes.
//!
//! The pipeline has three stages:
//!
//! 1. **Query managers** ([`query_manager`]) translate queries from native
//!    formats (the key/value language, ClassAds) into the internal form,
//!    validate them against administrator-defined schemas, decompose
//!    composite ("or") queries into basic components, select pool managers,
//!    and re-integrate the per-fragment results at the end of the pipeline.
//! 2. **Pool managers** ([`pool_manager`]) map each basic query to a pool
//!    name (signature + identifier), locate instances through a local
//!    directory service ([`directory`]), create pools on demand, forward to
//!    instances hosted elsewhere, and delegate to peer managers — carrying a
//!    TTL and visited list with the query ([`message::RoutingState`]).
//! 3. **Resource pools** ([`resource_pool`]) aggregate matching machines
//!    from the white pages, mark them taken, and run scheduling processes
//!    ([`scheduler`]) that order the cache by an objective and answer
//!    allocation queries.  Pools can be split for concurrent search and
//!    replicated with an instance-specific bias.
//!
//! Four deployments of the same stages are provided:
//!
//! * [`engine::Engine`] — the embedded, synchronous pipeline (single address
//!   space); the form used by the examples and baselines.
//! * [`live::LivePipeline`] — every stage on its own thread, connected by
//!   channels, demonstrating stage replication and pipelining.
//! * [`remote`] — the wire deployment: a `ypd` daemon hosts any backend
//!   behind the versioned [`actyp_proto`] protocol, and
//!   [`remote::RemoteBackend`] serves the same client surface across a TCP
//!   hop, with tickets pipelined on one connection.  Session I/O is event
//!   driven by default: a fixed pool of I/O threads runs every session as
//!   a nonblocking state machine over the [`reactor`] (raw epoll/poll
//!   bindings), with blocking backend calls on shared worker lanes, so
//!   one daemon holds thousands of mostly-idle sessions cheaply.
//!   [`federation`] peers daemons across administrative domains: a query
//!   the local backend cannot satisfy is delegated over the wire with a
//!   TTL and visited-domain list — multiplexed per peer link by
//!   correlation id — the paper's WAN topology.
//! * [`sim`] — the discrete-event simulated deployment used to reproduce the
//!   paper's controlled experiments (Figures 4–8), where stage service times
//!   and LAN/WAN link latencies are modelled explicitly.
//!
//! Clients should not pick a deployment-specific entry point: the [`api`]
//! module provides the unified [`api::ResourceManager`] surface — ticket
//! based, pipelined, identical across the embedded engine, the threaded
//! pipeline and the centralized baseline architectures — constructed
//! through one [`api::PipelineBuilder`].

pub mod allocation;
pub mod api;
pub mod directory;
pub mod engine;
pub mod federation;
pub mod gossip;
pub mod live;
pub mod message;
pub mod pool_manager;
pub mod query_manager;
pub mod reactor;
pub mod remote;
pub mod resource_pool;
pub mod scheduler;
mod shard;
pub mod sim;

pub use allocation::{Allocation, AllocationError, SessionKey};
pub use api::{BackendKind, PipelineBuilder, ResourceManager, StatsSnapshot, Ticket};
pub use directory::{LocalDirectoryService, PoolInstanceRecord, ShardedDirectory, SharedDirectory};
pub use engine::{Engine, EngineStats, PipelineConfig};
pub use federation::{
    is_delegable, run_chain, FederatedBackend, FederationConfig, PeerDelegator, PeerUnavailable,
};
pub use gossip::{AdvertLog, GossipEvent, GossipPlane};
pub use live::LivePipeline;
pub use message::{
    AddressParseError, FragmentTag, RequestId, RequestIdGenerator, RoutingState, StageAddress,
};
pub use pool_manager::{HandleOutcome, InstanceSelection, PoolManager, PoolManagerConfig};
pub use query_manager::{PoolManagerSelection, QueryManager, ReintegrationPolicy, RouteCache};
pub use reactor::PollerKind;
pub use remote::{
    serve, serve_federated, serve_federated_with, serve_with, RemoteBackend, ServerConfig,
    ServerHandle, SessionMode,
};
pub use resource_pool::ResourcePool;
pub use scheduler::{ReplicaBias, ScheduleOutcome, Scheduler, SchedulingObjective};
