//! The anti-entropy gossip plane: versioned advertisement logs whose
//! deltas keep every peer's directory fresh *without* redialing links.
//!
//! Before this plane existed, pool advertisements crossed the federation
//! only in the `SyncPools` handshake performed when a peer link came up —
//! pools created or destroyed over a *healthy* link went stale until the
//! link died and was redialed.  The gossip plane closes that gap:
//!
//! * Every daemon keeps a **versioned advertisement log per origin
//!   domain** ([`OriginLog`]): a monotone epoch (bumped when the origin
//!   restarts) and a strictly increasing sequence number per entry, each
//!   entry recording one pool coming up or going away.  The daemon is
//!   authoritative for its own domain's log and relays the logs of every
//!   origin it has learned — news crosses multi-hop topologies without
//!   any origin dialing every domain.
//! * Deltas ([`actyp_proto::AdvertDelta`]) ship two ways: **piggybacked**
//!   on the `Delegated` and `PoolsSynced` replies already flowing, and
//!   **pushed** by a periodic anti-entropy exchange
//!   (`AdvertDelta`/`AdvertAck`) on idle peer links.  The exchange
//!   carries version vectors ([`actyp_proto::AdvertVersion`]) both ways,
//!   so one round syncs both directions and ships only the missing tail.
//! * Logs are **compacted**: once an origin's retained tail grows past a
//!   bound, the oldest entries are folded into the live pool set and a
//!   floor is recorded.  A peer whose version is behind the floor
//!   receives a full snapshot (`full: true`) instead of an incremental
//!   tail.
//!
//! Application is idempotent and monotone: entries at or below the known
//! sequence are skipped, a delta from a stale epoch is ignored, and a
//! newer epoch resets everything known about the origin.  The events the
//! plane emits ([`GossipEvent`]) drive the peer directory and invalidate
//! the learned route cache — the same delta that announces a pool's death
//! kills the cached one-hop route to it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use actyp_proto::{AdvertDelta, AdvertEntry, AdvertVersion};

/// Retained-tail bound per origin log: once more than this many entries
/// are kept beyond the compaction floor, the oldest are folded into the
/// live set.  Small enough to bound relay memory, large enough that a
/// peer syncing every few seconds never falls behind the floor in
/// practice.
const COMPACT_TAIL: usize = 128;

/// One origin domain's versioned advertisement log.
///
/// Holds the retained tail of entries (everything after the compaction
/// `floor`) plus the live pool set, which together can answer any peer:
/// an incremental tail for peers past the floor, a full snapshot for
/// peers behind it (or on a different epoch).
#[derive(Debug, Clone)]
pub struct OriginLog {
    /// The origin's log epoch; a restarted origin starts a higher one.
    epoch: u64,
    /// Highest sequence number assigned (0 = empty log).
    head: u64,
    /// Entries at or below this sequence have been compacted away.
    floor: u64,
    /// Entries with `floor < seq <= head`, in increasing order.
    tail: Vec<AdvertEntry>,
    /// pool → sequence of the entry that (last) brought it alive.
    live: BTreeMap<String, u64>,
}

impl OriginLog {
    fn new(epoch: u64) -> Self {
        OriginLog {
            epoch,
            head: 0,
            floor: 0,
            tail: Vec::new(),
            live: BTreeMap::new(),
        }
    }

    /// Appends one event to an *authoritative* (own-domain) log.
    fn append(&mut self, pool: &str, alive: bool) {
        self.head += 1;
        self.tail.push(AdvertEntry {
            seq: self.head,
            pool: pool.to_string(),
            alive,
        });
        if alive {
            self.live.insert(pool.to_string(), self.head);
        } else {
            self.live.remove(pool);
        }
        self.compact();
    }

    /// Folds the oldest retained entries into the live set once the tail
    /// outgrows [`COMPACT_TAIL`]; peers behind the new floor get full
    /// snapshots instead of tails.
    fn compact(&mut self) {
        if self.tail.len() > COMPACT_TAIL {
            let drop = self.tail.len() - COMPACT_TAIL;
            self.floor = self.tail[drop - 1].seq;
            self.tail.drain(..drop);
        }
    }

    /// The complete live set as a snapshot delta (`full: true`).
    fn snapshot(&self, origin: &str) -> AdvertDelta {
        let mut entries: Vec<AdvertEntry> = self
            .live
            .iter()
            .map(|(pool, seq)| AdvertEntry {
                seq: *seq,
                pool: pool.clone(),
                alive: true,
            })
            .collect();
        entries.sort_by_key(|e| e.seq);
        AdvertDelta {
            origin: origin.to_string(),
            epoch: self.epoch,
            head: self.head,
            entries,
            full: true,
        }
    }

    /// What a peer holding `(epoch, seq)` of this origin still lacks;
    /// `None` when it is up to date.
    fn delta_since(&self, origin: &str, epoch: u64, seq: u64) -> Option<AdvertDelta> {
        if epoch != self.epoch {
            // Different epoch: everything the peer has for this origin is
            // invalid (or from a past life of ours); resend the world.
            // An empty log must still ship once the peer claims entries,
            // or the peer would hold the stale epoch's live set forever.
            return (self.head > 0 || !self.live.is_empty() || seq > 0)
                .then(|| self.snapshot(origin));
        }
        if seq >= self.head {
            return None;
        }
        if seq < self.floor {
            // Behind the compaction floor: the tail alone cannot catch
            // the peer up.
            return Some(self.snapshot(origin));
        }
        let entries: Vec<AdvertEntry> = self.tail.iter().filter(|e| e.seq > seq).cloned().collect();
        Some(AdvertDelta {
            origin: origin.to_string(),
            epoch: self.epoch,
            head: self.head,
            entries,
            full: false,
        })
    }
}

/// A directory-relevant change surfaced by applying gossip deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GossipEvent {
    /// `origin` now hosts `pool`.
    PoolUp {
        /// The domain the pool lives in.
        origin: String,
        /// Full pool name.
        pool: String,
    },
    /// `origin` no longer hosts `pool` — any cached route to it is dead.
    PoolDown {
        /// The domain the pool lived in.
        origin: String,
        /// Full pool name.
        pool: String,
    },
    /// Everything previously known about `origin` is invalid (it
    /// restarted with a new epoch, or a full snapshot replaced the known
    /// set).  `PoolUp` events for the fresh set follow.
    OriginReset {
        /// The domain that restarted.
        origin: String,
    },
}

/// Every origin log one daemon holds: its own (authoritative) plus one
/// per origin learned from peers (relayed transitively).
#[derive(Debug, Default)]
pub struct AdvertLog {
    origins: BTreeMap<String, OriginLog>,
}

impl AdvertLog {
    /// The version vector: what this holder has of every origin.
    pub fn version_vector(&self) -> Vec<AdvertVersion> {
        self.origins
            .iter()
            .map(|(origin, log)| AdvertVersion {
                origin: origin.clone(),
                epoch: log.epoch,
                seq: log.head,
            })
            .collect()
    }

    /// Deltas carrying everything a holder of `have` lacks.
    pub fn deltas_since(&self, have: &[AdvertVersion]) -> Vec<AdvertDelta> {
        self.origins
            .iter()
            .filter_map(|(origin, log)| {
                let (epoch, seq) = have
                    .iter()
                    .find(|v| v.origin == *origin)
                    .map(|v| (v.epoch, v.seq))
                    .unwrap_or((log.epoch, 0));
                log.delta_since(origin, epoch, seq)
            })
            .collect()
    }

    /// Applies one delta to the log of `delta.origin`, returning the
    /// directory-relevant events.  Idempotent: entries already applied
    /// (or from a stale epoch) are skipped without events.
    pub fn apply(&mut self, delta: &AdvertDelta) -> Vec<GossipEvent> {
        let mut events = Vec::new();
        let log = self
            .origins
            .entry(delta.origin.clone())
            .or_insert_with(|| OriginLog::new(delta.epoch));
        if delta.epoch < log.epoch {
            return events;
        }
        if delta.epoch > log.epoch {
            // The origin restarted.  An incremental tail from the new
            // epoch whose base we never saw cannot be interpreted —
            // ignore it and let the next version-vector exchange deliver
            // the full snapshot.
            let interpretable = delta.full || delta.entries.first().is_none_or(|e| e.seq <= 1);
            if !interpretable {
                return events;
            }
            events.push(GossipEvent::OriginReset {
                origin: delta.origin.clone(),
            });
            for pool in log.live.keys() {
                events.push(GossipEvent::PoolDown {
                    origin: delta.origin.clone(),
                    pool: pool.clone(),
                });
            }
            *log = OriginLog::new(delta.epoch);
        } else if delta.full {
            // Same epoch, snapshot: one whose horizon is behind what we
            // already hold is old news relayed late — applying it would
            // resurrect pools that died after its horizon.  Skip it.
            if delta.head < log.head {
                return events;
            }
        } else {
            // Same epoch, incremental: a tail starting above head+1 has
            // a gap we cannot bridge — skip it, our version vector stays
            // behind and the authoritative exchange resends from there.
            if delta.entries.first().is_some_and(|e| e.seq > log.head + 1) {
                return events;
            }
        }
        for entry in &delta.entries {
            if entry.seq <= log.head && !delta.full {
                continue;
            }
            let known = log.live.contains_key(&entry.pool);
            if entry.alive && !known {
                events.push(GossipEvent::PoolUp {
                    origin: delta.origin.clone(),
                    pool: entry.pool.clone(),
                });
            }
            if !entry.alive && known {
                events.push(GossipEvent::PoolDown {
                    origin: delta.origin.clone(),
                    pool: entry.pool.clone(),
                });
            }
            if entry.seq > log.head {
                log.tail.push(entry.clone());
                log.head = entry.seq;
            }
            if entry.alive {
                log.live.insert(entry.pool.clone(), entry.seq);
            } else {
                log.live.remove(&entry.pool);
            }
        }
        if delta.full {
            // The snapshot is the origin's complete live set up to its
            // head: any pool we hold from at or below that horizon that
            // the snapshot omits is dead (its death was compacted away).
            let stale: Vec<String> = log
                .live
                .iter()
                .filter(|(pool, seq)| {
                    **seq <= delta.head && !delta.entries.iter().any(|e| e.pool == **pool)
                })
                .map(|(pool, _)| pool.clone())
                .collect();
            for pool in stale {
                log.live.remove(&pool);
                events.push(GossipEvent::PoolDown {
                    origin: delta.origin.clone(),
                    pool,
                });
            }
            // A snapshot carries no tail history: relaying it to others
            // also produces snapshots.
            log.head = log.head.max(delta.head);
            log.floor = log.head;
            log.tail.clear();
        }
        log.compact();
        events
    }

    /// Drops everything known about `origin` (a peer renamed its domain;
    /// the old name's pools are retired wholesale).
    pub fn forget(&mut self, origin: &str) {
        self.origins.remove(origin);
    }

    /// The live pool set held for `origin` (empty when unknown).
    pub fn live_pools(&self, origin: &str) -> Vec<String> {
        self.origins
            .get(origin)
            .map(|log| log.live.keys().cloned().collect())
            .unwrap_or_default()
    }
}

/// Interior state of [`GossipPlane`] under one lock: the logs plus the
/// per-peer acked version vectors.
#[derive(Debug, Default)]
struct PlaneState {
    log: AdvertLog,
    /// peer domain → the version vector the peer is known to hold, from
    /// its explicit `have` vectors and from acked anti-entropy rounds.
    /// Piggybacked deltas do NOT advance this — they may be lost with
    /// their carrier reply, so only acknowledged state counts, and
    /// resending an already-applied delta is harmless (application is
    /// idempotent).
    acked: BTreeMap<String, Vec<AdvertVersion>>,
}

/// One daemon's gossip state: its advertisement logs, what each peer has
/// acked, and the delta traffic counters.
#[derive(Debug)]
pub struct GossipPlane {
    domain: String,
    state: Mutex<PlaneState>,
    deltas_in: AtomicU64,
    deltas_out: AtomicU64,
}

/// Highest own-log epoch any plane in this process has opened.  Epochs
/// are drawn from wall-clock seconds, so two daemons created within the
/// same second — an in-process restart, or every test that rebuilds a
/// fleet — would otherwise share an epoch, and a stale relay of the old
/// life's log (same epoch, higher sequence) could resurrect retired
/// pools at every peer.  The new epoch is forced strictly above the
/// last one issued here.
static LAST_EPOCH: AtomicU64 = AtomicU64::new(0);

impl GossipPlane {
    /// A plane for `domain`, opening the own-origin log at an epoch drawn
    /// from the wall clock — a restarted daemon starts a strictly higher
    /// epoch, which is what invalidates its previous life's entries at
    /// every peer.  Strict monotonicity against every epoch previously
    /// issued in this process is enforced even when the clock has not
    /// advanced (or stepped backwards).
    pub fn new(domain: &str) -> Self {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(1)
            .max(1);
        let last = LAST_EPOCH
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |last| {
                Some(now.max(last + 1))
            })
            .unwrap_or(0);
        Self::with_epoch(domain, now.max(last + 1))
    }

    /// A plane with an explicit own-log epoch (tests pin epochs to drive
    /// restart handling deterministically).
    pub fn with_epoch(domain: &str, epoch: u64) -> Self {
        let mut state = PlaneState::default();
        state
            .log
            .origins
            .insert(domain.to_string(), OriginLog::new(epoch));
        GossipPlane {
            domain: domain.to_string(),
            state: Mutex::new(state),
            deltas_in: AtomicU64::new(0),
            deltas_out: AtomicU64::new(0),
        }
    }

    /// The domain this plane is authoritative for.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Diffs the current local pool set against the own-origin log and
    /// appends entries for anything that came up or went away.  Called
    /// before building any outbound delta, so news is never older than
    /// the frame carrying it.
    pub fn refresh_local(&self, pools: &[String]) {
        let mut state = self.state.lock();
        let log = state
            .log
            .origins
            .get_mut(&self.domain)
            .expect("own origin log exists");
        let dead: Vec<String> = log
            .live
            .keys()
            .filter(|p| !pools.contains(p))
            .cloned()
            .collect();
        for pool in dead {
            log.append(&pool, false);
        }
        for pool in pools {
            if !log.live.contains_key(pool) {
                log.append(pool, true);
            }
        }
    }

    /// This daemon's version vector (the `have` field of outbound
    /// frames).
    pub fn version_vector(&self) -> Vec<AdvertVersion> {
        self.state.lock().log.version_vector()
    }

    /// Deltas for a peer that declared `have`, counted as shipped.
    pub fn deltas_since(&self, have: &[AdvertVersion]) -> Vec<AdvertDelta> {
        let deltas = self.state.lock().log.deltas_since(have);
        self.deltas_out
            .fetch_add(deltas.len() as u64, Ordering::Relaxed);
        deltas
    }

    /// Deltas for `peer` judged against its acked vector — what the
    /// anti-entropy round and the piggyback paths ship when the peer has
    /// not just declared a fresh `have`.
    pub fn deltas_for_peer(&self, peer: &str) -> Vec<AdvertDelta> {
        let state = self.state.lock();
        let have = state.acked.get(peer).cloned().unwrap_or_default();
        let deltas = state.log.deltas_since(&have);
        drop(state);
        self.deltas_out
            .fetch_add(deltas.len() as u64, Ordering::Relaxed);
        deltas
    }

    /// Records the version vector `peer` declared (its `have` field):
    /// ground truth of what it holds, so subsequent deltas to it carry
    /// only the missing tail.
    pub fn note_peer_versions(&self, peer: &str, have: &[AdvertVersion]) {
        self.state
            .lock()
            .acked
            .insert(peer.to_string(), have.to_vec());
    }

    /// Marks `peer` as holding everything in `vector` — called when an
    /// anti-entropy round it participated in completes.
    pub fn note_acked(&self, peer: &str, vector: Vec<AdvertVersion>) {
        self.state.lock().acked.insert(peer.to_string(), vector);
    }

    /// Forgets what `peer` holds (its link died; after the redial the
    /// handshake resyncs from scratch).
    pub fn retire_peer(&self, peer: &str) {
        self.state.lock().acked.remove(peer);
    }

    /// Applies inbound deltas, skipping the own origin (this daemon is
    /// authoritative for it — a relayed echo of our own log must never
    /// loop back in).  Returns the directory-relevant events.
    ///
    /// An own-origin echo from a *previous life* of this daemon — one
    /// carrying an epoch above ours, or our epoch with a head beyond
    /// anything this life has produced (possible when a restart reused a
    /// wall-clock second, or the clock stepped back across a real
    /// restart) — would dominate this life's entries at every peer,
    /// resurrecting retired pools.  The defense is to re-epoch the own
    /// log strictly above the echo, which resets everything peers hold
    /// for this origin in our favour.  Echoes of *this* life (same
    /// epoch, head at or below ours — the normal anti-entropy case) are
    /// simply skipped: we are authoritative for them.
    pub fn apply(&self, deltas: &[AdvertDelta]) -> Vec<GossipEvent> {
        let mut events = Vec::new();
        let mut state = self.state.lock();
        for delta in deltas {
            if delta.origin == self.domain {
                let log = state
                    .log
                    .origins
                    .get_mut(&self.domain)
                    .expect("own-origin log always present");
                let previous_life =
                    delta.epoch > log.epoch || (delta.epoch == log.epoch && delta.head > log.head);
                if previous_life {
                    let bumped = delta.epoch + 1;
                    let live: Vec<String> = log.live.keys().cloned().collect();
                    *log = OriginLog::new(bumped);
                    for pool in &live {
                        log.append(pool, true);
                    }
                    let _ = LAST_EPOCH.fetch_max(bumped, Ordering::SeqCst);
                }
                continue;
            }
            self.deltas_in.fetch_add(1, Ordering::Relaxed);
            events.extend(state.log.apply(delta));
        }
        events
    }

    /// Drops everything known about `origin` and any acked state for it
    /// as a peer (domain rename retirement).
    pub fn forget_origin(&self, origin: &str) {
        let mut state = self.state.lock();
        state.log.forget(origin);
        state.acked.remove(origin);
    }

    /// The live pool set held for `origin`.
    pub fn live_pools(&self, origin: &str) -> Vec<String> {
        self.state.lock().log.live_pools(origin)
    }

    /// Lifetime deltas applied from peers.
    pub fn deltas_in(&self) -> u64 {
        self.deltas_in.load(Ordering::Relaxed)
    }

    /// Lifetime deltas shipped to peers.
    pub fn deltas_out(&self) -> u64 {
        self.deltas_out.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(plane: &GossipPlane) -> Vec<AdvertVersion> {
        plane.version_vector()
    }

    /// One exchange: `from` ships what `to` lacks (judged by `to`'s real
    /// vector), `to` applies.  Returns the events at `to`.
    fn exchange(from: &GossipPlane, to: &GossipPlane) -> Vec<GossipEvent> {
        let deltas = from.deltas_since(&vv(to));
        to.apply(&deltas)
    }

    #[test]
    fn a_pool_travels_one_exchange_and_application_is_idempotent() {
        let a = GossipPlane::with_epoch("a", 10);
        let b = GossipPlane::with_epoch("b", 20);
        a.refresh_local(&["arch,==/sun".to_string()]);

        let events = exchange(&a, &b);
        assert_eq!(
            events,
            vec![GossipEvent::PoolUp {
                origin: "a".to_string(),
                pool: "arch,==/sun".to_string(),
            }]
        );
        assert_eq!(b.live_pools("a"), vec!["arch,==/sun".to_string()]);

        // Replaying the same delta produces no events and no change.
        let replay = a.deltas_since(&[]);
        assert!(b.apply(&replay).is_empty());
        assert_eq!(b.live_pools("a"), vec!["arch,==/sun".to_string()]);

        // Up to date: nothing left to ship.
        assert!(a.deltas_since(&vv(&b)).is_empty());
    }

    #[test]
    fn pool_death_travels_and_retires_the_record() {
        let a = GossipPlane::with_epoch("a", 10);
        let b = GossipPlane::with_epoch("b", 20);
        a.refresh_local(&["arch,==/sun".to_string(), "arch,==/sgi".to_string()]);
        exchange(&a, &b);
        assert_eq!(b.live_pools("a").len(), 2);

        a.refresh_local(&["arch,==/sun".to_string()]);
        let events = exchange(&a, &b);
        assert_eq!(
            events,
            vec![GossipEvent::PoolDown {
                origin: "a".to_string(),
                pool: "arch,==/sgi".to_string(),
            }]
        );
        assert_eq!(b.live_pools("a"), vec!["arch,==/sun".to_string()]);
    }

    #[test]
    fn news_relays_transitively_through_a_middle_domain() {
        let a = GossipPlane::with_epoch("a", 1);
        let b = GossipPlane::with_epoch("b", 2);
        let c = GossipPlane::with_epoch("c", 3);
        c.refresh_local(&["arch,==/hp".to_string()]);

        // C → B, then B → A: A learns C's pool without a C link.
        exchange(&c, &b);
        let events = exchange(&b, &a);
        assert!(events.contains(&GossipEvent::PoolUp {
            origin: "c".to_string(),
            pool: "arch,==/hp".to_string(),
        }));
        assert_eq!(a.live_pools("c"), vec!["arch,==/hp".to_string()]);
    }

    #[test]
    fn a_restarted_origin_resets_what_peers_hold() {
        let a1 = GossipPlane::with_epoch("a", 100);
        let b = GossipPlane::with_epoch("b", 5);
        a1.refresh_local(&["arch,==/sun".to_string()]);
        exchange(&a1, &b);

        // A restarts with different pools and a higher epoch.
        let a2 = GossipPlane::with_epoch("a", 200);
        a2.refresh_local(&["arch,==/sgi".to_string()]);
        let events = exchange(&a2, &b);
        assert!(events.contains(&GossipEvent::OriginReset {
            origin: "a".to_string(),
        }));
        assert!(events.contains(&GossipEvent::PoolDown {
            origin: "a".to_string(),
            pool: "arch,==/sun".to_string(),
        }));
        assert_eq!(b.live_pools("a"), vec!["arch,==/sgi".to_string()]);

        // A stale delta from the old life is ignored outright.
        let stale = a1.deltas_since(&[]);
        assert!(b.apply(&stale).is_empty());
        assert_eq!(b.live_pools("a"), vec!["arch,==/sgi".to_string()]);
    }

    #[test]
    fn own_origin_echoes_never_loop_back() {
        let a = GossipPlane::with_epoch("a", 1);
        let b = GossipPlane::with_epoch("b", 2);
        a.refresh_local(&["arch,==/sun".to_string()]);
        exchange(&a, &b);
        // B relays A's log back at A: no events, no double counting.
        let echo = b.deltas_since(&[]);
        assert!(echo.iter().any(|d| d.origin == "a"));
        assert!(a.apply(&echo).is_empty());
    }

    #[test]
    fn compaction_forces_full_snapshots_for_peers_behind_the_floor() {
        let a = GossipPlane::with_epoch("a", 1);
        let b = GossipPlane::with_epoch("b", 2);
        // Hold B's view of A at seq 0, then churn A's log far past the
        // compaction bound.
        let b_view_before = vv(&b);
        for round in 0..((COMPACT_TAIL as u64) * 2) {
            let pool = format!("arch,==/gen{}", round % 7);
            a.refresh_local(&[pool]);
        }
        a.refresh_local(&["arch,==/final".to_string()]);

        let deltas = a.deltas_since(&b_view_before);
        let own: Vec<_> = deltas.iter().filter(|d| d.origin == "a").collect();
        assert_eq!(own.len(), 1);
        assert!(own[0].full, "a peer behind the floor gets a snapshot");
        b.apply(&deltas);
        assert_eq!(b.live_pools("a"), vec!["arch,==/final".to_string()]);
        // And B is now fully caught up.
        assert!(a.deltas_since(&vv(&b)).is_empty());
    }

    #[test]
    fn full_snapshots_retire_pools_the_receiver_holds_but_the_origin_lost() {
        let a = GossipPlane::with_epoch("a", 1);
        let b = GossipPlane::with_epoch("b", 2);
        a.refresh_local(&["arch,==/sun".to_string(), "arch,==/sgi".to_string()]);
        exchange(&a, &b);

        // A retires sgi, then compacts the death away entirely.
        a.refresh_local(&["arch,==/sun".to_string()]);
        for round in 0..((COMPACT_TAIL as u64) * 2) {
            a.refresh_local(&[
                "arch,==/sun".to_string(),
                format!("arch,==/churn{}", round % 5),
            ]);
        }
        a.refresh_local(&["arch,==/sun".to_string()]);

        let events = exchange(&a, &b);
        assert!(events.contains(&GossipEvent::PoolDown {
            origin: "a".to_string(),
            pool: "arch,==/sgi".to_string(),
        }));
        assert_eq!(b.live_pools("a"), vec!["arch,==/sun".to_string()]);
    }

    #[test]
    fn forgetting_an_origin_drops_its_pools_and_acked_state() {
        let a = GossipPlane::with_epoch("a", 1);
        let b = GossipPlane::with_epoch("b", 2);
        a.refresh_local(&["arch,==/sun".to_string()]);
        exchange(&a, &b);
        b.note_peer_versions("a", &vv(&a));

        b.forget_origin("a");
        assert!(b.live_pools("a").is_empty());
        // A full resync flows on the next exchange.
        let events = exchange(&a, &b);
        assert!(events.contains(&GossipEvent::PoolUp {
            origin: "a".to_string(),
            pool: "arch,==/sun".to_string(),
        }));
    }

    #[test]
    fn acked_vectors_suppress_resends_until_retired() {
        let a = GossipPlane::with_epoch("a", 1);
        a.refresh_local(&["arch,==/sun".to_string()]);
        assert!(!a.deltas_for_peer("b").is_empty());

        a.note_acked("b", a.version_vector());
        assert!(a.deltas_for_peer("b").is_empty(), "peer is caught up");

        a.refresh_local(&["arch,==/sun".to_string(), "arch,==/sgi".to_string()]);
        let fresh = a.deltas_for_peer("b");
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].entries.len(), 1, "only the missing tail ships");

        a.retire_peer("b");
        let resync = a.deltas_for_peer("b");
        assert_eq!(
            resync[0].entries.len(),
            2,
            "after link death everything reships"
        );
    }

    #[test]
    fn counters_track_delta_traffic() {
        let a = GossipPlane::with_epoch("a", 1);
        let b = GossipPlane::with_epoch("b", 2);
        a.refresh_local(&["arch,==/sun".to_string()]);
        exchange(&a, &b);
        assert!(a.deltas_out() >= 1);
        assert!(b.deltas_in() >= 1);
        assert_eq!(b.deltas_out(), 0);
    }
}
