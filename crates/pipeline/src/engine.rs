//! The embedded resource-management pipeline.
//!
//! [`Engine`] wires the stages together in a single address space: one or
//! more query managers, one or more pool managers (one per administrative
//! domain in federated deployments), a shared local directory service, and
//! the resource pools created on demand.  It implements the full control
//! flow of Sections 5.2.1–5.2.3 — translation, decomposition, pool-manager
//! selection, pool mapping and creation, forwarding to instances hosted by
//! other managers, delegation with TTL and visited-list, allocation, and
//! re-integration — as ordinary synchronous calls.
//!
//! All mutable stage state lives behind one internal lock, so every client
//! method takes `&self` — exactly the same receiver as
//! [`crate::live::LivePipeline`].  That symmetry is what lets the unified
//! [`crate::api::ResourceManager`] surface treat the embedded and threaded
//! deployments interchangeably.  Submission goes through that trait (via
//! [`crate::api::PipelineBuilder`]) exclusively — the legacy inherent
//! `submit*` shims are gone; the engine keeps only translation helpers and
//! inspection surface as public API.
//!
//! The embedded engine is what the examples, the baselines comparison and
//! the simulated experiments drive; [`crate::live`] puts the same stages on
//! threads connected by channels to demonstrate the pipelined deployment.

use std::sync::Arc;

use parking_lot::Mutex;

use actyp_grid::SharedDatabase;
use actyp_query::{BasicQuery, Query, QuerySchema};

use crate::allocation::{Allocation, AllocationError};
use crate::directory::{LocalDirectoryService, SharedDirectory};
use crate::message::{RequestId, RequestIdGenerator, RoutingState};
use crate::pool_manager::{HandleOutcome, InstanceSelection, PoolManager, PoolManagerConfig};
use crate::query_manager::{PoolManagerSelection, QueryManager, ReintegrationPolicy};
use crate::scheduler::SchedulingObjective;

/// Configuration of an embedded pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of query-manager stages.
    pub query_managers: usize,
    /// Number of pool-manager stages (single-domain deployments; federated
    /// deployments pass one database per manager to [`Engine::federated`]).
    pub pool_managers: usize,
    /// Scheduling objective used by created pools.
    pub objective: SchedulingObjective,
    /// Pool-instance selection policy inside pool managers.
    pub instance_selection: InstanceSelection,
    /// Pool-manager selection policy inside query managers.
    pub pool_manager_selection: PoolManagerSelection,
    /// Re-integration policy for composite queries.
    pub reintegration: ReintegrationPolicy,
    /// Maximum number of basic queries a composite query may expand into.
    pub decompose_limit: usize,
    /// Delegation time-to-live.
    pub ttl: u32,
    /// Hour of virtual day used for time-of-day usage policies.
    pub hour_of_day: u8,
    /// RNG seed for all stage-local randomness.
    pub seed: u64,
    /// Lock shards in the shared directory (and the other hot tables the
    /// daemon keys off it).  `1` degenerates to the old single-lock
    /// behaviour; the saturation benches sweep this.
    pub shards: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            query_managers: 1,
            pool_managers: 1,
            objective: SchedulingObjective::LeastLoaded,
            instance_selection: InstanceSelection::Random,
            pool_manager_selection: PoolManagerSelection::RoundRobin,
            reintegration: ReintegrationPolicy::All,
            decompose_limit: 16,
            ttl: 8,
            hour_of_day: 12,
            seed: 0xAC7C_9A9E,
            shards: crate::shard::DEFAULT_SHARDS,
        }
    }
}

/// Statistics the engine accumulates over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Client requests submitted.
    pub requests: u64,
    /// Basic queries produced by decomposition.
    pub fragments: u64,
    /// Successful allocations handed to clients.
    pub allocations: u64,
    /// Failed fragments.
    pub failures: u64,
    /// Delegations between pool managers.
    pub delegations: u64,
    /// Forwards to pool instances hosted by a different manager.
    pub forwards: u64,
    /// Allocations released by clients.
    pub releases: u64,
}

/// The mutable interior of the embedded pipeline: every stage object plus
/// the bookkeeping the control flow updates while routing a query.
struct EngineCore {
    query_managers: Vec<QueryManager>,
    pool_managers: Vec<PoolManager>,
    qm_cursor: usize,
    stats: EngineStats,
}

/// The embedded pipeline.
pub struct Engine {
    config: PipelineConfig,
    directory: SharedDirectory,
    core: Mutex<EngineCore>,
}

impl Engine {
    /// Builds a single-domain pipeline over one resource database.
    pub fn new(config: PipelineConfig, db: SharedDatabase) -> Self {
        let domains: Vec<(String, SharedDatabase)> = (0..config.pool_managers.max(1))
            .map(|i| (format!("pm-{i}"), db.clone()))
            .collect();
        Self::federated(config, domains)
    }

    /// Builds a federated pipeline: one pool manager per administrative
    /// domain, each with its own resource database, all sharing one
    /// directory service.
    pub fn federated(config: PipelineConfig, domains: Vec<(String, SharedDatabase)>) -> Self {
        assert!(!domains.is_empty(), "at least one domain is required");
        let directory: SharedDirectory =
            LocalDirectoryService::new().into_shared_with(config.shards);
        let ids = Arc::new(RequestIdGenerator::new());

        let query_managers = (0..config.query_managers.max(1))
            .map(|i| {
                QueryManager::new(
                    format!("qm-{i}"),
                    QuerySchema::punch_default().permissive(),
                    config.pool_manager_selection.clone(),
                    config.decompose_limit,
                    ids.clone(),
                    config.seed ^ (0x51 + i as u64),
                )
            })
            .collect();

        let pool_managers = domains
            .into_iter()
            .enumerate()
            .map(|(i, (name, db))| {
                PoolManager::new(
                    name,
                    db,
                    directory.clone(),
                    PoolManagerConfig {
                        selection: config.instance_selection,
                        objective: config.objective,
                        host: format!("actyp-node-{i}"),
                        base_port: 7300,
                    },
                    config.seed ^ (0x90 + i as u64),
                )
            })
            .collect();

        Engine {
            config,
            directory,
            core: Mutex::new(EngineCore {
                query_managers,
                pool_managers,
                qm_cursor: 0,
                stats: EngineStats::default(),
            }),
        }
    }

    /// The shared directory service (inspection / tests).
    pub fn directory(&self) -> &SharedDirectory {
        &self.directory
    }

    /// A snapshot of the lifetime statistics.
    pub fn stats(&self) -> EngineStats {
        self.core.lock().stats.clone()
    }

    /// Names of the pool managers in the pipeline.
    pub fn pool_manager_names(&self) -> Vec<String> {
        self.core.lock().pool_manager_names()
    }

    /// Runs a closure with mutable access to a pool manager by name (used by
    /// experiments that pre-install or destroy pools).
    ///
    /// The engine's internal lock is held while the closure runs: the
    /// closure must not call back into this engine (`submit`, `release`,
    /// `stats`, …), or it will deadlock.
    pub fn with_pool_manager<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut PoolManager) -> R,
    ) -> Option<R> {
        let mut core = self.core.lock();
        let index = core.pm_index(name)?;
        Some(f(&mut core.pool_managers[index]))
    }

    /// Total number of pool instances across all managers.
    pub fn pool_instances(&self) -> usize {
        self.directory.instance_count()
    }

    /// Translates a query written in the native key/value text format
    /// (validation included), without submitting it.
    pub fn translate_text(&self, text: &str) -> Result<Query, AllocationError> {
        let mut core = self.core.lock();
        let qm = core.qm_cursor % core.query_managers.len();
        core.query_managers[qm].translate_text(text)
    }

    /// Translates a ClassAds requirements expression into a native query
    /// (interoperability path), without submitting it.
    pub fn translate_classad(
        &self,
        expression: &str,
        login: Option<&str>,
        group: Option<&str>,
    ) -> Result<Query, AllocationError> {
        let mut core = self.core.lock();
        let qm = core.qm_cursor % core.query_managers.len();
        core.query_managers[qm].translate_classad(expression, login, group)
    }

    /// Runs one query through the embedded pipeline.  Returns the
    /// allocations the re-integration policy keeps (surplus matches are
    /// released internally).
    ///
    /// Crate-internal: clients reach this through
    /// [`crate::api::ResourceManager`] on the embedded backend — the former
    /// public `submit*` shims are gone.
    pub(crate) fn submit(&self, query: &Query) -> Result<Vec<Allocation>, AllocationError> {
        self.core
            .lock()
            .submit(&self.config, &self.directory, query)
    }

    /// Releases an allocation: the owning pool manager is found through the
    /// directory and the machine's state is restored.
    pub fn release(&self, allocation: &Allocation) -> Result<(), AllocationError> {
        let manager = owning_manager(&self.directory, allocation);
        self.core.lock().release(manager, allocation)
    }
}

/// Looks up, through the directory, the pool manager hosting the instance an
/// allocation came from (`None` when the instance is no longer registered —
/// the release paths then fall back to scanning the managers).
pub(crate) fn owning_manager(
    directory: &SharedDirectory,
    allocation: &Allocation,
) -> Option<String> {
    directory
        .instances(&allocation.pool)
        .into_iter()
        .find(|r| r.instance == allocation.pool_instance)
        .map(|r| r.manager)
}

impl EngineCore {
    fn pool_manager_names(&self) -> Vec<String> {
        self.pool_managers
            .iter()
            .map(|pm| pm.name().to_string())
            .collect()
    }

    fn pm_index(&self, name: &str) -> Option<usize> {
        self.pool_managers.iter().position(|pm| pm.name() == name)
    }

    fn submit(
        &mut self,
        config: &PipelineConfig,
        directory: &SharedDirectory,
        query: &Query,
    ) -> Result<Vec<Allocation>, AllocationError> {
        self.stats.requests += 1;
        let qm_index = self.qm_cursor % self.query_managers.len();
        self.qm_cursor += 1;

        let prepared = self.query_managers[qm_index].prepare(query)?;
        let pm_names = self.pool_manager_names();
        let hour = config.hour_of_day;

        let mut results = Vec::with_capacity(prepared.fragments.len());
        for (tag, basic) in &prepared.fragments {
            self.stats.fragments += 1;
            let start = self.query_managers[qm_index]
                .select_pool_manager(basic, &pm_names)
                .ok_or_else(|| AllocationError::Internal("no pool managers".to_string()))?;
            let result = self.route_fragment(config, tag.request, basic, &start, hour);
            match &result {
                Ok(_) => self.stats.allocations += 1,
                Err(_) => self.stats.failures += 1,
            }
            results.push(result);
        }

        let (keep, surplus) =
            self.query_managers[qm_index].reintegrate(results, config.reintegration)?;
        for extra in surplus {
            // Surplus matches from composite queries are handed back to the
            // hosting manager, found through the directory like any release.
            let manager = owning_manager(directory, &extra);
            let _ = self.release(manager, &extra);
            self.stats.allocations = self.stats.allocations.saturating_sub(1);
        }
        Ok(keep)
    }

    /// Routes one basic query through pool managers, following forwards and
    /// delegations until it is allocated or fails.
    fn route_fragment(
        &mut self,
        config: &PipelineConfig,
        request: RequestId,
        basic: &BasicQuery,
        start: &str,
        hour: u8,
    ) -> Result<Allocation, AllocationError> {
        let mut routing = RoutingState::new(config.ttl);
        let mut current = start.to_string();
        loop {
            if !routing.visit(&current) {
                return Err(AllocationError::TtlExpired);
            }
            let index = self.pm_index(&current).ok_or_else(|| {
                AllocationError::Internal(format!("unknown pool manager {current}"))
            })?;
            match self.pool_managers[index].handle(request, basic, hour) {
                HandleOutcome::Allocated(a) => return Ok(a),
                HandleOutcome::Failed(err) => return Err(err),
                HandleOutcome::Forward {
                    manager,
                    pool,
                    instance,
                } => {
                    self.stats.forwards += 1;
                    let target = self.pm_index(&manager).ok_or_else(|| {
                        AllocationError::Internal(format!("unknown pool manager {manager}"))
                    })?;
                    return self.pool_managers[target]
                        .allocate_from(&pool, instance, request, basic, hour);
                }
                HandleOutcome::CannotCreate => {
                    // Delegate to a pool manager that has not yet seen the
                    // query; fail when every manager has been visited or the
                    // TTL runs out.
                    self.stats.delegations += 1;
                    let next = self
                        .pool_manager_names()
                        .into_iter()
                        .find(|name| !routing.has_visited(name));
                    match next {
                        Some(name) if routing.alive() => current = name,
                        _ => return Err(AllocationError::NoSuchResources),
                    }
                }
            }
        }
    }

    fn release(
        &mut self,
        manager: Option<String>,
        allocation: &Allocation,
    ) -> Result<(), AllocationError> {
        // Fall back to scanning managers when the instance is no longer
        // registered (pool destroyed while allocations were outstanding).
        let index = manager
            .and_then(|m| self.pm_index(&m))
            .or_else(|| {
                self.pool_managers
                    .iter()
                    .position(|pm| pm.hosts(&allocation.pool, allocation.pool_instance))
            })
            .ok_or(AllocationError::UnknownAllocation)?;
        self.pool_managers[index].release(allocation)?;
        self.stats.releases += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use actyp_grid::{FleetSpec, ResourceDatabase, SyntheticFleet};
    use actyp_query::{Constraint, QueryKey};

    fn fleet_db(n: usize, seed: u64) -> SharedDatabase {
        SyntheticFleet::new(FleetSpec::with_machines(n), seed)
            .generate()
            .into_shared()
    }

    fn paper_text() -> String {
        Query::paper_example().to_string()
    }

    /// What the removed `Engine::submit_text` shim did: translate (with
    /// schema validation) on a query manager, then run the pipeline.
    fn submit_text(engine: &Engine, text: &str) -> Result<Vec<Allocation>, AllocationError> {
        let query = engine.translate_text(text)?;
        engine.submit(&query)
    }

    #[test]
    fn end_to_end_allocation_from_text_query() {
        let engine = Engine::new(PipelineConfig::default(), fleet_db(300, 1));
        let allocations = submit_text(&engine, &paper_text()).unwrap();
        assert_eq!(allocations.len(), 1);
        let a = &allocations[0];
        assert!(a.machine_name.contains("sun"));
        assert!(a.machine_name.contains("purdue"));
        assert!(a.execution_port > 0);
        assert_eq!(engine.stats().allocations, 1);
        assert_eq!(engine.pool_instances(), 1);
        engine.release(a).unwrap();
        assert_eq!(engine.stats().releases, 1);
    }

    #[test]
    fn repeated_queries_reuse_the_dynamically_created_pool() {
        let engine = Engine::new(PipelineConfig::default(), fleet_db(300, 2));
        for _ in 0..10 {
            submit_text(&engine, &paper_text()).unwrap();
        }
        assert_eq!(engine.pool_instances(), 1, "temporal locality: one pool");
        assert_eq!(engine.stats().allocations, 10);
    }

    #[test]
    fn composite_query_returns_first_match_and_releases_surplus() {
        let config = PipelineConfig {
            reintegration: ReintegrationPolicy::FirstMatch,
            ..PipelineConfig::default()
        };
        let db = fleet_db(400, 3);
        let engine = Engine::new(config, db.clone());
        let text = "punch.rsrc.arch = sun | hp\npunch.user.accessgroup = ece\n";
        let allocations = submit_text(&engine, text).unwrap();
        assert_eq!(allocations.len(), 1);
        // Both fragment pools exist, but only one allocation is outstanding.
        assert_eq!(engine.pool_instances(), 2);
        let active: u32 = db.read().iter().map(|m| m.dynamic.active_jobs).sum();
        assert_eq!(active, 1);
    }

    #[test]
    fn composite_query_with_all_policy_returns_every_match() {
        let engine = Engine::new(PipelineConfig::default(), fleet_db(400, 4));
        let text = "punch.rsrc.arch = sun | hp\n";
        let allocations = submit_text(&engine, text).unwrap();
        assert_eq!(allocations.len(), 2);
        let archs: std::collections::HashSet<String> = allocations
            .iter()
            .map(|a| a.machine_name.split('-').next().unwrap().to_string())
            .collect();
        assert_eq!(archs.len(), 2);
    }

    #[test]
    fn impossible_queries_fail_cleanly() {
        let engine = Engine::new(PipelineConfig::default(), fleet_db(100, 5));
        let err = submit_text(&engine, "punch.rsrc.arch = cray\n").unwrap_err();
        assert_eq!(err, AllocationError::NoSuchResources);
        assert_eq!(engine.stats().failures, 1);
    }

    #[test]
    fn parse_and_schema_errors_do_not_reach_pool_managers() {
        let engine = Engine::new(PipelineConfig::default(), fleet_db(50, 6));
        assert!(matches!(
            submit_text(&engine, "nonsense").unwrap_err(),
            AllocationError::Parse(_)
        ));
        assert_eq!(engine.pool_instances(), 0);
    }

    #[test]
    fn classad_queries_are_interoperable() {
        let engine = Engine::new(PipelineConfig::default(), fleet_db(300, 7));
        let query = engine
            .translate_classad(
                "Arch == \"SUN\" && Memory >= 128",
                Some("royo"),
                Some("ece"),
            )
            .unwrap();
        let allocations = engine.submit(&query).unwrap();
        assert_eq!(allocations.len(), 1);
        assert!(allocations[0].machine_name.contains("sun"));
    }

    #[test]
    fn federated_domains_delegate_until_resources_are_found() {
        // Domain A has only sun machines; domain B has only hp machines.
        let sun_db = SyntheticFleet::new(FleetSpec::homogeneous(50, "sun", 256), 8)
            .generate()
            .into_shared();
        let hp_db = SyntheticFleet::new(FleetSpec::homogeneous(50, "hp", 512), 9)
            .generate()
            .into_shared();
        let config = PipelineConfig {
            // Force the first hop to a fixed manager so the hp query starts
            // at the sun-only domain and must be delegated.
            pool_manager_selection: PoolManagerSelection::RoundRobin,
            ..PipelineConfig::default()
        };
        let engine = Engine::federated(
            config,
            vec![("purdue".to_string(), sun_db), ("upc".to_string(), hp_db)],
        );
        let allocations = submit_text(&engine, "punch.rsrc.arch = hp\n").unwrap();
        assert_eq!(allocations.len(), 1);
        assert!(allocations[0].machine_name.contains("hp"));
        assert!(engine.stats().delegations >= 1);
    }

    #[test]
    fn ttl_zero_expires_immediately() {
        let config = PipelineConfig {
            ttl: 0,
            ..PipelineConfig::default()
        };
        let engine = Engine::new(config, fleet_db(100, 10));
        let err = submit_text(&engine, &paper_text()).unwrap_err();
        assert_eq!(err, AllocationError::TtlExpired);
    }

    #[test]
    fn forwards_reach_pools_hosted_by_other_managers() {
        // Two pool managers over the same database: the second manager to
        // see the query forwards it to the instance created by the first.
        let config = PipelineConfig {
            pool_managers: 2,
            pool_manager_selection: PoolManagerSelection::RoundRobin,
            ..PipelineConfig::default()
        };
        let engine = Engine::new(config, fleet_db(300, 11));
        submit_text(&engine, &paper_text()).unwrap();
        submit_text(&engine, &paper_text()).unwrap();
        assert_eq!(engine.pool_instances(), 1);
        assert!(engine.stats().forwards >= 1);
        assert_eq!(engine.stats().allocations, 2);
    }

    #[test]
    fn release_of_unknown_allocation_is_rejected() {
        let engine = Engine::new(PipelineConfig::default(), fleet_db(100, 12));
        let mut allocations = submit_text(&engine, &paper_text()).unwrap();
        let mut fake = allocations.remove(0);
        engine.release(&fake).unwrap();
        // Releasing again (or a forged key) fails.
        fake.access_key = crate::allocation::SessionKey("forged".to_string());
        assert!(engine.release(&fake).is_err());
    }

    #[test]
    fn empty_database_yields_no_such_resources() {
        let db = ResourceDatabase::new().into_shared();
        let engine = Engine::new(PipelineConfig::default(), db);
        let err = submit_text(&engine, &paper_text()).unwrap_err();
        assert_eq!(err, AllocationError::NoSuchResources);
    }

    #[test]
    fn many_concurrent_allocations_spread_over_machines() {
        let engine = Engine::new(PipelineConfig::default(), fleet_db(200, 13));
        let mut machines = std::collections::HashSet::new();
        let mut allocations = Vec::new();
        for _ in 0..50 {
            let mut a = submit_text(&engine, &paper_text()).unwrap();
            machines.insert(a[0].machine);
            allocations.append(&mut a);
        }
        assert!(
            machines.len() > 10,
            "load must spread ({} machines)",
            machines.len()
        );
        for a in &allocations {
            engine.release(a).unwrap();
        }
        assert_eq!(engine.stats().releases, 50);
    }

    #[test]
    fn by_key_value_routing_selects_consistent_managers() {
        let config = PipelineConfig {
            pool_managers: 3,
            pool_manager_selection: PoolManagerSelection::ByKeyValue("arch".to_string()),
            ..PipelineConfig::default()
        };
        let engine = Engine::new(config, fleet_db(300, 14));
        for _ in 0..6 {
            engine
                .submit(&Query::new().with(QueryKey::rsrc("arch"), Constraint::eq("sun")))
                .unwrap();
        }
        // All six queries go to the same manager, so exactly one pool
        // instance exists and no forwards were needed.
        assert_eq!(engine.pool_instances(), 1);
        assert_eq!(engine.stats().forwards, 0);
    }

    #[test]
    fn shared_references_submit_concurrently() {
        // The whole client surface works on `&self`, so an engine can be
        // shared across threads without an external lock.
        let engine = std::sync::Arc::new(Engine::new(PipelineConfig::default(), fleet_db(300, 15)));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let engine = engine.clone();
            joins.push(std::thread::spawn(move || {
                let allocations = submit_text(&engine, &paper_text()).unwrap();
                engine.release(&allocations[0]).unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(engine.stats().allocations, 4);
        assert_eq!(engine.stats().releases, 4);
    }
}
