//! Query managers.
//!
//! "Queries enter the resource management pipeline via a query manager
//! stage.  Query managers translate queries into a standard internal format,
//! decompose composite queries into basic components, select appropriate
//! pool managers, and forward queries to the selected pool managers"
//! (Section 5.2.1).  The results of decomposed queries are re-integrated
//! within another query-manager stage at the end of the pipeline.

use std::sync::Arc;

use actyp_query::{classad::translate_requirements, parse_query, BasicQuery, Query, QuerySchema};
use actyp_simnet::Rng;

use crate::allocation::{Allocation, AllocationError};
use crate::message::{FragmentTag, RequestId, RequestIdGenerator};

/// How a query manager picks the pool manager for a basic query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PoolManagerSelection {
    /// Rotate across pool managers.
    #[default]
    RoundRobin,
    /// Pick a pool manager uniformly at random.
    Random,
    /// Route by the value of a `rsrc` key (e.g. all `sun` queries to one set
    /// of pool managers, all `hp` queries to another — the paper's example).
    ByKeyValue(String),
}

/// How the results of a decomposed composite query are re-integrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReintegrationPolicy {
    /// Wait for every fragment and return all successful allocations
    /// (the client picks; unused ones should be released).
    #[default]
    All,
    /// Return the first successful allocation and release the rest — the
    /// latency-oriented QoS option described in Section 6.
    FirstMatch,
}

/// A request after query-manager processing: translated, validated,
/// decomposed and tagged.
#[derive(Debug, Clone)]
pub struct PreparedRequest {
    /// The request identifier assigned by the query manager.
    pub id: RequestId,
    /// The decomposed fragments, each with its reassembly tag.
    pub fragments: Vec<(FragmentTag, BasicQuery)>,
}

/// A query manager stage.
#[derive(Debug)]
pub struct QueryManager {
    name: String,
    schema: QuerySchema,
    selection: PoolManagerSelection,
    decompose_limit: usize,
    ids: Arc<RequestIdGenerator>,
    round_robin: usize,
    rng: Rng,
    translated: u64,
}

impl QueryManager {
    /// Creates a query manager.
    pub fn new(
        name: impl Into<String>,
        schema: QuerySchema,
        selection: PoolManagerSelection,
        decompose_limit: usize,
        ids: Arc<RequestIdGenerator>,
        seed: u64,
    ) -> Self {
        QueryManager {
            name: name.into(),
            schema,
            selection,
            decompose_limit: decompose_limit.max(1),
            ids,
            round_robin: 0,
            rng: Rng::new(seed),
            translated: 0,
        }
    }

    /// This stage's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of queries translated so far.
    pub fn translated(&self) -> u64 {
        self.translated
    }

    /// Translates a query in the native key/value text format.
    pub fn translate_text(&mut self, text: &str) -> Result<Query, AllocationError> {
        self.translated += 1;
        parse_query(text).map_err(|e| AllocationError::Parse(e.to_string()))
    }

    /// Translates a Condor ClassAds-style requirements expression
    /// (interoperability path).
    pub fn translate_classad(
        &mut self,
        expression: &str,
        login: Option<&str>,
        group: Option<&str>,
    ) -> Result<Query, AllocationError> {
        self.translated += 1;
        translate_requirements(expression, login, group)
            .map_err(|e| AllocationError::Parse(e.to_string()))
    }

    /// Validates a query against the administrator-defined schema and
    /// decomposes it into tagged basic queries.
    pub fn prepare(&mut self, query: &Query) -> Result<PreparedRequest, AllocationError> {
        let violations = self.schema.validate(query);
        if !violations.is_empty() {
            let text = violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            return Err(AllocationError::Schema(text));
        }
        let id = self.ids.next();
        let basics = query.decompose(self.decompose_limit);
        let total = basics.len() as u32;
        let fragments = basics
            .into_iter()
            .enumerate()
            .map(|(index, basic)| {
                (
                    FragmentTag {
                        request: id,
                        index: index as u32,
                        total,
                    },
                    basic,
                )
            })
            .collect();
        Ok(PreparedRequest { id, fragments })
    }

    /// Selects the pool manager a basic query should be forwarded to.
    pub fn select_pool_manager(
        &mut self,
        query: &BasicQuery,
        pool_managers: &[String],
    ) -> Option<String> {
        if pool_managers.is_empty() {
            return None;
        }
        let index = match &self.selection {
            PoolManagerSelection::RoundRobin => {
                let i = self.round_robin % pool_managers.len();
                self.round_robin += 1;
                i
            }
            PoolManagerSelection::Random => self.rng.index(pool_managers.len()),
            PoolManagerSelection::ByKeyValue(key) => {
                let value = query
                    .value(actyp_query::Section::Rsrc, key)
                    .map(|v| v.canonical())
                    .unwrap_or_default();
                // Stable FNV-1a hash of the routing value.
                let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
                for byte in value.as_bytes() {
                    hash ^= *byte as u64;
                    hash = hash.wrapping_mul(0x1000_0000_01b3);
                }
                (hash % pool_managers.len() as u64) as usize
            }
        };
        Some(pool_managers[index].clone())
    }

    /// Re-integrates the per-fragment results of a decomposed query.
    ///
    /// Returns the allocations to keep and the allocations that must be
    /// released (surplus matches under [`ReintegrationPolicy::FirstMatch`]).
    /// If no fragment succeeded, the first error is returned.
    pub fn reintegrate(
        &self,
        results: Vec<Result<Allocation, AllocationError>>,
        policy: ReintegrationPolicy,
    ) -> Result<(Vec<Allocation>, Vec<Allocation>), AllocationError> {
        let mut successes = Vec::new();
        let mut first_error: Option<AllocationError> = None;
        for result in results {
            match result {
                Ok(a) => successes.push(a),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if successes.is_empty() {
            return Err(first_error.unwrap_or(AllocationError::NoSuchResources));
        }
        match policy {
            ReintegrationPolicy::All => Ok((successes, Vec::new())),
            ReintegrationPolicy::FirstMatch => {
                let keep = vec![successes.remove(0)];
                Ok((keep, successes))
            }
        }
    }
}

/// A learned delegation-routing cache.
///
/// The query-manager stage decides *where* a query goes; in the federated
/// deployment the options are the local backend or a TTL-bounded
/// delegation walk across peer domains.  The cache remembers, per pool
/// name (the pool name embeds the query signature, so equal-signature
/// repeat queries share an entry), which *directly linked* peer domain
/// satisfied the query last time — repeat WAN queries then go straight to
/// the satisfying domain in one hop instead of re-walking the chain.
///
/// The cache is advisory only: a hit *reorders* the delegation candidate
/// list, it never bypasses the TTL or the visited-domain check, so every
/// invariant of the uncached walk holds by construction.  Entries are
/// invalidated by the same gossip deltas that announce pool death
/// ([`crate::gossip::GossipEvent::PoolDown`]) and by peer-link failure.
#[derive(Debug)]
pub struct RouteCache {
    enabled: bool,
    routes: parking_lot::Mutex<std::collections::HashMap<String, String>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl RouteCache {
    /// A cache; when `enabled` is false every lookup misses silently and
    /// nothing is learned (the baseline for the routing benchmark).
    pub fn new(enabled: bool) -> Self {
        RouteCache {
            enabled,
            routes: parking_lot::Mutex::new(std::collections::HashMap::new()),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Whether learning/lookup are active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records that `pool` was satisfied by way of direct peer
    /// `next_hop`.
    pub fn learn(&self, pool: &str, next_hop: &str) {
        if !self.enabled {
            return;
        }
        self.routes
            .lock()
            .insert(pool.to_string(), next_hop.to_string());
    }

    /// The learned next hop for `pool`, counting a hit or miss.
    pub fn next_hop(&self, pool: &str) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let learned = self.routes.lock().get(pool).cloned();
        match learned {
            Some(hop) => {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Some(hop)
            }
            None => {
                self.misses
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                None
            }
        }
    }

    /// Drops the route for `pool` (the gossip plane announced its
    /// death).
    pub fn invalidate_pool(&self, pool: &str) {
        self.routes.lock().remove(pool);
    }

    /// Drops every route through `next_hop` (its peer link failed or its
    /// domain was retired).
    pub fn invalidate_next_hop(&self, next_hop: &str) {
        self.routes.lock().retain(|_, hop| hop != next_hop);
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::SessionKey;
    use actyp_grid::MachineId;
    use actyp_query::{Constraint, QueryKey, QuerySchema};

    fn qm(selection: PoolManagerSelection) -> QueryManager {
        QueryManager::new(
            "qm-0",
            QuerySchema::punch_default(),
            selection,
            16,
            Arc::new(RequestIdGenerator::new()),
            7,
        )
    }

    fn fake_allocation(id: u64) -> Allocation {
        Allocation {
            request: RequestId(id),
            machine: MachineId(id),
            machine_name: format!("m{id}"),
            execution_port: 7070,
            mount_port: 7071,
            shadow_uid: None,
            access_key: SessionKey::derive(RequestId(id), 0, id),
            pool: "arch,==/sun".to_string(),
            pool_instance: 0,
            examined: 1,
        }
    }

    #[test]
    fn translate_and_prepare_the_paper_query() {
        let mut qm = qm(PoolManagerSelection::RoundRobin);
        let query = qm
            .translate_text(&Query::paper_example().to_string())
            .unwrap();
        let prepared = qm.prepare(&query).unwrap();
        assert_eq!(prepared.fragments.len(), 1);
        assert_eq!(prepared.fragments[0].0.total, 1);
        assert_eq!(qm.translated(), 1);
    }

    #[test]
    fn parse_errors_are_surfaced() {
        let mut qm = qm(PoolManagerSelection::RoundRobin);
        let err = qm.translate_text("this is not a query").unwrap_err();
        assert!(matches!(err, AllocationError::Parse(_)));
    }

    #[test]
    fn schema_violations_are_surfaced() {
        let mut qm = qm(PoolManagerSelection::RoundRobin);
        let query = Query::new().with(QueryKey::rsrc("flux_capacitor"), Constraint::eq("yes"));
        let err = qm.prepare(&query).unwrap_err();
        assert!(matches!(err, AllocationError::Schema(_)));
    }

    #[test]
    fn composite_queries_fragment_with_tags() {
        let mut qm = qm(PoolManagerSelection::RoundRobin);
        let query = Query::new().with_alternatives(
            QueryKey::rsrc("arch"),
            vec![Constraint::eq("sun"), Constraint::eq("hp")],
        );
        let prepared = qm.prepare(&query).unwrap();
        assert_eq!(prepared.fragments.len(), 2);
        assert!(prepared
            .fragments
            .iter()
            .enumerate()
            .all(|(i, (tag, _))| tag.index == i as u32 && tag.total == 2));
    }

    #[test]
    fn request_ids_are_distinct_across_prepares() {
        let mut qm = qm(PoolManagerSelection::RoundRobin);
        let a = qm.prepare(&Query::paper_example()).unwrap();
        let b = qm.prepare(&Query::paper_example()).unwrap();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn classad_translation_feeds_the_same_pipeline() {
        let mut qm = qm(PoolManagerSelection::RoundRobin);
        let query = qm
            .translate_classad("Arch == \"SUN\" && Memory >= 64", Some("royo"), Some("upc"))
            .unwrap();
        let prepared = qm.prepare(&query).unwrap();
        assert_eq!(prepared.fragments.len(), 1);
        assert_eq!(prepared.fragments[0].1.user_login(), Some("royo"));
    }

    #[test]
    fn round_robin_pool_manager_selection() {
        let mut qm = qm(PoolManagerSelection::RoundRobin);
        let pms = vec!["pm-a".to_string(), "pm-b".to_string()];
        let basic = Query::paper_example().decompose(1).remove(0);
        let picks: Vec<String> = (0..4)
            .map(|_| qm.select_pool_manager(&basic, &pms).unwrap())
            .collect();
        assert_eq!(picks, vec!["pm-a", "pm-b", "pm-a", "pm-b"]);
        assert!(qm.select_pool_manager(&basic, &[]).is_none());
    }

    #[test]
    fn by_key_selection_routes_same_value_to_same_manager() {
        let mut qm = qm(PoolManagerSelection::ByKeyValue("arch".to_string()));
        let pms = vec!["pm-a".to_string(), "pm-b".to_string(), "pm-c".to_string()];
        let sun = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("sun"))
            .decompose(1)
            .remove(0);
        let hp = Query::new()
            .with(QueryKey::rsrc("arch"), Constraint::eq("hp"))
            .decompose(1)
            .remove(0);
        let sun_pm: Vec<String> = (0..3)
            .map(|_| qm.select_pool_manager(&sun, &pms).unwrap())
            .collect();
        assert!(sun_pm.windows(2).all(|w| w[0] == w[1]), "stable routing");
        // Different key values are allowed to land elsewhere (not required,
        // but the routing must still be valid).
        let hp_pm = qm.select_pool_manager(&hp, &pms).unwrap();
        assert!(pms.contains(&hp_pm));
    }

    #[test]
    fn reintegration_all_keeps_every_success() {
        let qm = qm(PoolManagerSelection::RoundRobin);
        let results = vec![
            Ok(fake_allocation(1)),
            Err(AllocationError::NoneAvailable),
            Ok(fake_allocation(2)),
        ];
        let (keep, release) = qm.reintegrate(results, ReintegrationPolicy::All).unwrap();
        assert_eq!(keep.len(), 2);
        assert!(release.is_empty());
    }

    #[test]
    fn reintegration_first_match_releases_surplus() {
        let qm = qm(PoolManagerSelection::RoundRobin);
        let results = vec![Ok(fake_allocation(1)), Ok(fake_allocation(2))];
        let (keep, release) = qm
            .reintegrate(results, ReintegrationPolicy::FirstMatch)
            .unwrap();
        assert_eq!(keep.len(), 1);
        assert_eq!(release.len(), 1);
        assert_ne!(keep[0].machine, release[0].machine);
    }

    #[test]
    fn reintegration_with_no_success_returns_first_error() {
        let qm = qm(PoolManagerSelection::RoundRobin);
        let results = vec![
            Err(AllocationError::TtlExpired),
            Err(AllocationError::NoneAvailable),
        ];
        let err = qm
            .reintegrate(results, ReintegrationPolicy::All)
            .unwrap_err();
        assert_eq!(err, AllocationError::TtlExpired);
    }

    #[test]
    fn route_cache_learns_hits_and_invalidates() {
        let cache = RouteCache::new(true);
        assert_eq!(cache.next_hop("arch,==/sun"), None);
        assert_eq!(cache.misses(), 1);

        cache.learn("arch,==/sun", "cern");
        assert_eq!(cache.next_hop("arch,==/sun"), Some("cern".to_string()));
        assert_eq!(cache.hits(), 1);

        cache.invalidate_pool("arch,==/sun");
        assert_eq!(cache.next_hop("arch,==/sun"), None);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn route_cache_invalidation_by_next_hop_sweeps_every_route_through_it() {
        let cache = RouteCache::new(true);
        cache.learn("arch,==/sun", "cern");
        cache.learn("arch,==/hp", "cern");
        cache.learn("arch,==/sgi", "upc");
        cache.invalidate_next_hop("cern");
        assert_eq!(cache.next_hop("arch,==/sun"), None);
        assert_eq!(cache.next_hop("arch,==/hp"), None);
        assert_eq!(cache.next_hop("arch,==/sgi"), Some("upc".to_string()));
    }

    #[test]
    fn disabled_route_cache_neither_learns_nor_counts() {
        let cache = RouteCache::new(false);
        cache.learn("arch,==/sun", "cern");
        assert_eq!(cache.next_hop("arch,==/sun"), None);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }
}
